//! The Hoare/Mesa ablation (EXPERIMENTS.md E11): the §9 Readers/Writers
//! monitor uses `IF … THEN WAIT`, which is only sound under the Hoare
//! signal-urgent discipline its proof assumes. Re-running the *same*
//! program text under Mesa (signal-and-continue) semantics breaks mutual
//! exclusion — and the verifier produces the counterexample schedule.
//! The `WHILE`-based repair is verified correct under both disciplines.
//!
//! Run with `cargo run --release --example mesa_ablation`.

use gem_lang::monitor::{readers_writers_monitor, MonitorDef, SignalSemantics};
use gem_problems::readers_writers::{
    mesa_safe_readers_writers_monitor, rw_correspondence, rw_program_with_semantics, rw_spec,
    RwVariant,
};
use gem_verify::{verify_system, VerifyOptions};

fn check(monitor: MonitorDef, semantics: SignalSemantics) -> (bool, usize, String) {
    let sys = rw_program_with_semantics(monitor, 1, 2, false, semantics);
    let problem = rw_spec(3, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, false);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        &VerifyOptions::default(),
    )
    .expect("correspondence consistent");
    let detail = outcome
        .failures
        .first()
        .map(|f| f.violated.join(", "))
        .unwrap_or_default();
    (outcome.ok(), outcome.runs, detail)
}

fn main() {
    println!("Mutual exclusion of the Readers/Writers monitor, 1 reader + 2 writers:\n");
    for (name, monitor) in [
        (
            "paper §9 monitor (IF … THEN WAIT)",
            readers_writers_monitor as fn() -> MonitorDef,
        ),
        (
            "repaired monitor (WHILE … DO WAIT)",
            mesa_safe_readers_writers_monitor,
        ),
    ] {
        for semantics in [SignalSemantics::Hoare, SignalSemantics::Mesa] {
            let (ok, runs, detail) = check(monitor(), semantics);
            println!(
                "  {name} under {semantics:?}: {} ({runs} schedules{})",
                if ok { "mutex HOLDS" } else { "mutex FAILS" },
                if detail.is_empty() {
                    String::new()
                } else {
                    format!("; violated: {detail}")
                }
            );
        }
        println!();
    }
    println!(
        "The §9 proof explicitly leans on Hoare's discipline (\"all waiting readers\n\
         will be signalled before any other process executes in the monitor\");\n\
         the ablation confirms that dependency mechanically."
    );
}
