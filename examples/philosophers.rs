//! Dining philosophers (extension): the naive left-first discipline
//! deadlocks — and the explorer produces the circular-wait witness —
//! while the asymmetric repair is verified deadlock-free and satisfies
//! neighbour exclusion.
//!
//! Run with `cargo run --release --example philosophers`.

use gem_lang::{find_deadlock, Explorer};
use gem_problems::philosophers::{
    philosophers_correspondence, philosophers_program, philosophers_spec, ForkOrder,
};
use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3;
    // Deadlock is a state property — pruned search is sound and fast.
    let pruned = Explorer {
        prune: true,
        ..Explorer::default()
    };

    println!("{n} philosophers, naive left-first forks:");
    match find_deadlock(&philosophers_program(n, 1, ForkOrder::Naive), &pruned) {
        Some(path) => {
            println!("  DEADLOCK after {} actions:", path.len());
            for a in &path {
                println!("    {a:?}");
            }
        }
        None => println!("  unexpectedly deadlock-free?!"),
    }

    println!("\n{n} philosophers, asymmetric forks (last picks right first):");
    match assert_no_deadlock(&philosophers_program(n, 1, ForkOrder::Asymmetric), &pruned) {
        Ok(runs) => println!("  deadlock-free ({runs} pruned runs)"),
        Err(w) => println!("  DEADLOCK: {w}"),
    }

    let sys = philosophers_program(n, 1, ForkOrder::Asymmetric);
    let problem = philosophers_spec(n);
    let corr = philosophers_correspondence(&sys, &problem, n);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        &VerifyOptions {
            explorer: Explorer::with_max_runs(500),
            ..VerifyOptions::default()
        },
    )?;
    println!("  neighbour-exclusion: {outcome}");
    println!(
        "  verdict: PROG sat P {}",
        if outcome.ok() { "HOLDS" } else { "FAILS" }
    );
    Ok(())
}
