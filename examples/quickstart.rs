//! Quickstart: the GEM model end to end on the paper's own toy examples.
//!
//! 1. Declare a structure (the integer variable of §4).
//! 2. Build a computation and query its three orders.
//! 3. Enumerate histories of the §7 diamond.
//! 4. State a restriction and check it over all interleavings.
//!
//! Run with `cargo run --example quickstart`.

use gem_core::{
    check_legality, history_count, linearization_count, ComputationBuilder, Structure, Value,
};
use gem_logic::{check, EventSel, Formula, Strategy, ValueTerm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The Var element of §4: Assign and Getval events, totally
    //        ordered at the element. -----------------------------------
    let mut s = Structure::new();
    let assign = s.add_class("Assign", &["newval"])?;
    let getval = s.add_class("Getval", &["oldval"])?;
    let var = s.add_element("Var", &[assign, getval])?;

    let mut b = ComputationBuilder::new(s);
    let a1 = b.add_event(var, assign, vec![Value::Int(42)])?;
    let g1 = b.add_event(var, getval, vec![Value::Int(42)])?;
    let a2 = b.add_event(var, assign, vec![Value::Int(7)])?;
    b.enable(a1, g1)?; // the retrieval was caused by the assignment
    let c = b.seal()?;

    println!("== the three orders of GEM");
    println!("a1 |> g1 (enable):          {}", c.enables(a1, g1));
    println!(
        "g1 =el=> a2 (element order): {}",
        c.element_precedes(g1, a2)
    );
    println!(
        "a1 ==> a2 (temporal order):  {}",
        c.temporally_precedes(a1, a2)
    );
    println!("legal: {}", check_legality(&c).is_empty());

    // The Variable restriction of §8.2: Getval yields the value last
    // assigned — here stated via the enable relation.
    let restriction = Formula::forall(
        "a",
        EventSel::of_class(assign),
        Formula::forall(
            "g",
            EventSel::of_class(getval),
            Formula::enables("a", "g").implies(Formula::value_eq(
                ValueTerm::param("a", "newval"),
                ValueTerm::param("g", "oldval"),
            )),
        ),
    );
    let report = check(&restriction, &c, Strategy::Complete)?;
    println!("getval-yields-last-assign holds: {}\n", report.holds);

    // --- 2. The §7 diamond: e1 |> e2, e1 |> e3, {e2,e3} |> e4. --------
    let mut s = Structure::new();
    let act = s.add_class("Act", &[])?;
    let els: Vec<_> = (1..=4)
        .map(|i| s.add_element(format!("E{i}"), &[act]))
        .collect::<Result<_, _>>()?;
    let mut b = ComputationBuilder::new(s);
    let e: Vec<_> = els
        .iter()
        .map(|&el| b.add_event(el, act, vec![]))
        .collect::<Result<_, _>>()?;
    b.enable(e[0], e[1])?;
    b.enable(e[0], e[2])?;
    b.enable(e[1], e[3])?;
    b.enable(e[2], e[3])?;
    let diamond = b.seal()?;

    println!("== the §7 diamond");
    println!(
        "e2, e3 potentially concurrent: {}",
        diamond.concurrent(e[1], e[2])
    );
    println!(
        "histories: {} (the paper lists 6, incl. the empty one)",
        history_count(&diamond, usize::MAX)
    );
    println!(
        "linearizations: {}",
        linearization_count(&diamond, usize::MAX)
    );

    // A temporal restriction checked over every interleaving: henceforth,
    // e4 never occurs before both e2 and e3.
    let join = Formula::occurred(e[3])
        .implies(Formula::occurred(e[1]).and(Formula::occurred(e[2])))
        .henceforth();
    let report = check(&join, &diamond, Strategy::default())?;
    println!(
        "join-safety holds on all {} interleavings: {}",
        report.sequences_checked, report.holds
    );
    println!("\ndot output:\n{}", gem_core::to_dot(&diamond));
    Ok(())
}
