//! The distributed database update application (§11): clients submit
//! updates, a coordinator serializes and propagates them, replicas apply
//! them in order. Verified deadlock-free and convergent over every
//! arrival order.
//!
//! Run with `cargo run --release --example db_update`.

use gem_lang::Explorer;
use gem_problems::db_update::{db_update_correspondence, db_update_program, db_update_spec};
use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};
use std::ops::ControlFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (clients, sites) = (3, 2);
    let sys = db_update_program(clients, sites);
    let problem = db_update_spec(sites, clients);
    let corr = db_update_correspondence(&sys, &problem, sites);

    println!("distributed update: {clients} clients, 1 coordinator, {sites} replicas\n");

    match assert_no_deadlock(&sys, &Explorer::default()) {
        Ok(runs) => println!("deadlock-free across all {runs} schedules"),
        Err(trace) => println!("DEADLOCK after {trace}"),
    }

    // Show the distinct serialization orders replicas converge to.
    let replicas: Vec<usize> = (0..sites)
        .map(|r| {
            sys.program()
                .process_index(&format!("replica{r}"))
                .expect("replica")
        })
        .collect();
    let mut orders = std::collections::BTreeSet::new();
    Explorer::default().for_each_run(&sys, |state, _| {
        let logs: Vec<i64> = replicas
            .iter()
            .map(|&r| state.local(r, "log").unwrap().as_int().unwrap())
            .collect();
        assert!(logs.windows(2).all(|w| w[0] == w[1]), "replicas agree");
        orders.insert(logs[0]);
        ControlFlow::Continue(())
    });
    println!(
        "replicas agree on every schedule; {} distinct serialization orders observed",
        orders.len()
    );

    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        &VerifyOptions::default(),
    )?;
    println!("\nGEM verification: {outcome}");
    println!(
        "verdict: PROG sat P {}",
        if outcome.ok() { "HOLDS" } else { "FAILS" }
    );
    Ok(())
}
