//! ADA tasking in GEM: a server task with a guarded select serving two
//! clients by rendezvous, with the GEM description of the primitive
//! checked on every schedule.
//!
//! Run with `cargo run --release --example ada_rendezvous`.

use gem_lang::ada::{
    ada_restrictions, rendezvous_sequential, AcceptArm, AdaProgram, AdaStmt, AdaSystem, AdaTask,
    SelectBranch,
};
use gem_lang::{Explorer, Expr, System};
use gem_logic::holds_on_computation;
use std::ops::ControlFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server accumulating deposits from two clients, in any order.
    let server = AdaTask::new(
        "server",
        vec![AdaStmt::While(
            Expr::var("served").lt(Expr::int(2)),
            vec![AdaStmt::Select(vec![SelectBranch {
                guard: None,
                accept: AcceptArm {
                    entry: "Deposit".into(),
                    params: vec!["amount".into()],
                    body: vec![
                        AdaStmt::assign("total", Expr::var("total").add(Expr::var("amount"))),
                        AdaStmt::assign("served", Expr::var("served").add(Expr::int(1))),
                    ],
                },
            }])],
        )],
    )
    .entry("Deposit")
    .local("total", 0i64)
    .local("served", 0i64);
    let alice = AdaTask::new(
        "alice",
        vec![AdaStmt::call("server", "Deposit", vec![Expr::int(30)])],
    );
    let bob = AdaTask::new(
        "bob",
        vec![AdaStmt::call("server", "Deposit", vec![Expr::int(12)])],
    );
    let sys = AdaSystem::new(AdaProgram::new().task(server).task(alice).task(bob));

    let restrictions = ada_restrictions(&sys);
    println!("GEM description of the rendezvous primitive:");
    for (name, f) in &restrictions {
        println!("  {name}: {}", f.render(sys.structure()));
    }
    println!();

    let mut runs = 0;
    Explorer::default().for_each_run(&sys, |state, path| {
        runs += 1;
        assert!(sys.is_complete(state));
        let c = sys.computation(state).expect("acyclic");
        assert!(gem_core::is_legal(&c));
        for (name, f) in &restrictions {
            assert!(
                holds_on_computation(f, &c).expect("evaluable"),
                "restriction {name} violated"
            );
        }
        assert!(rendezvous_sequential(&sys, &c));
        let total = state.local(0, "total").unwrap();
        println!(
            "schedule {runs}: {} actions, {} events, total = {total}",
            path.len(),
            c.event_count()
        );
        ControlFlow::Continue(())
    });
    println!("\nall {runs} schedules satisfy the ADA tasking description.");
    Ok(())
}
