//! Prints the generated Readers/Writers specification (§8.3, full
//! structure with users, database group, data element, thread type, and
//! all restrictions) in the paper's surface notation.
//!
//! Run with `cargo run --example render_spec`.

use gem_problems::readers_writers::{rw_spec, RwVariant};
use gem_spec::render_specification;

fn main() {
    let spec = rw_spec(2, true, RwVariant::ReadersPriority);
    println!("{}", render_specification(&spec));
}
