//! The paper's flagship example (§8.3/§9), machine-checked: the
//! Readers-Priority monitor satisfies the Readers/Writers specification —
//! mutual exclusion and readers priority — over *every* schedule, while
//! the writers-priority spec is refuted with a counterexample schedule.
//!
//! Run with `cargo run --release --example readers_writers`.

use gem_lang::monitor::readers_writers_monitor;
use gem_problems::readers_writers::{
    rw_correspondence, rw_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem_verify::{verify_system, VerifyOptions};

fn run(
    title: &str,
    monitor: gem_lang::monitor::MonitorDef,
    readers: usize,
    writers: usize,
    variant: RwVariant,
) -> Result<(), Box<dyn std::error::Error>> {
    let sys = rw_program(monitor, readers, writers, false);
    let problem = rw_spec(readers + writers, false, variant);
    let corr = rw_correspondence(&sys, &problem, false);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        &VerifyOptions::default(),
    )?;
    println!("== {title}");
    println!("   {outcome}");
    if let Some(f) = outcome.failures.first() {
        println!(
            "   first counterexample run violated: {}",
            f.violated.join(", ")
        );
    }
    println!(
        "   verdict: PROG sat P {}",
        if outcome.ok() { "HOLDS" } else { "FAILS" }
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GEM §9: verifying the Readers/Writers monitor\n");
    run(
        "mutual exclusion (1 reader, 2 writers, all schedules)",
        readers_writers_monitor(),
        1,
        2,
        RwVariant::MutexOnly,
    )?;
    run(
        "readers priority on the §9 monitor (the paper's proof, mechanized)",
        readers_writers_monitor(),
        1,
        2,
        RwVariant::ReadersPriority,
    )?;
    run(
        "writers priority on the §9 monitor (negative control)",
        readers_writers_monitor(),
        1,
        2,
        RwVariant::WritersPriority,
    )?;
    run(
        "writers priority on the writers-priority monitor",
        writers_priority_monitor(),
        2,
        1,
        RwVariant::WritersPriority,
    )?;
    run(
        "readers priority on the writers-priority monitor (negative control)",
        writers_priority_monitor(),
        1,
        2,
        RwVariant::ReadersPriority,
    )?;
    Ok(())
}
