//! The classic CSP bounded buffer — a chain of one-slot cells — verified
//! against the Bounded Buffer specification (FIFO values, deposit-before-
//! remove, capacity) over every communication schedule.
//!
//! Run with `cargo run --release --example csp_bounded_buffer`.

use gem_lang::Explorer;
use gem_problems::bounded::{bounded_spec, csp_correspondence, csp_solution};
use gem_verify::{project, verify_system, VerifyOptions};
use std::ops::ControlFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let items = [11i64, 22, 33, 44];
    let cap = 2;
    let sys = csp_solution(&items, cap);
    let problem = bounded_spec(items.len(), cap);
    let corr = csp_correspondence(&sys, &problem, cap);

    println!(
        "CSP bounded buffer: {} items through {cap} chained cells\n",
        items.len()
    );

    // Show one projected computation: the buffer behaviour a downstream
    // observer sees.
    let mut shown = false;
    Explorer::with_max_runs(1).for_each_run(&sys, |state, _| {
        let c = sys.computation(state).expect("acyclic");
        let p = project(&c, problem.structure_arc(), &corr).expect("consistent");
        println!("one schedule, projected onto significant objects:");
        for e in p.events() {
            let s = p.structure();
            println!(
                "  {}.{}^{} {:?}",
                s.element_info(e.element()).name(),
                s.class_info(e.class()).name(),
                e.seq(),
                e.params()
            );
        }
        shown = true;
        ControlFlow::Continue(())
    });
    assert!(shown);

    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        &VerifyOptions::default(),
    )?;
    println!("\nverification over all schedules: {outcome}");
    println!(
        "verdict: PROG sat P {}",
        if outcome.ok() { "HOLDS" } else { "FAILS" }
    );
    Ok(())
}
