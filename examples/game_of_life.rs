//! The asynchronous, distributed Game of Life (§11): each cell a CSP
//! process, neighbour states flowing through one-slot edge buffers. Any
//! schedule reproduces the synchronous evolution (confluence).
//!
//! Run with `cargo run --release --example game_of_life`.

use gem_lang::{Explorer, System};
use gem_problems::life::{blinker, life_program, sync_life, Grid};
use rand::SeedableRng;

fn render(g: &Grid) -> String {
    let mut out = String::new();
    for y in 0..g.height {
        for x in 0..g.width {
            out.push(if g.get(x, y) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let grid = blinker();
    let gens = 2;
    println!("initial blinker:\n{}", render(&grid));

    let reference = sync_life(&grid, gens);
    for (i, g) in reference.iter().enumerate() {
        println!("synchronous generation {}:\n{}", i + 1, render(g));
    }

    let sys = life_program(&grid, gens);
    println!(
        "asynchronous network: {} CSP processes ({} cells + edge buffers)",
        sys.program().processes.len(),
        grid.width * grid.height
    );

    for seed in 0..3u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (state, path) = Explorer::default().random_run(&sys, &mut rng);
        assert!(sys.is_complete(&state), "no deadlock");
        let mut cells = Vec::new();
        for y in 0..grid.height {
            for x in 0..grid.width {
                let pid = sys
                    .program()
                    .process_index(&format!("cell_{x}_{y}"))
                    .expect("cell");
                cells.push(state.local(pid, "alive").unwrap().as_int().unwrap() == 1);
            }
        }
        let final_async = Grid::new(grid.width, grid.height, cells);
        let matches = final_async == reference[gens - 1];
        println!(
            "random schedule {seed}: {} exchanges, matches synchronous result: {matches}",
            path.len()
        );
        assert!(matches);
    }
    println!(
        "\nasynchrony is unobservable in the result — as the paper's distributed Life intends."
    );
}
