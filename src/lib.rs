//! # gem — an executable reproduction of the GEM model
//!
//! GEM (the **G**roup **E**lement **M**odel) is the event-oriented model
//! of concurrent computation of Lansky & Owicki, *GEM: A Tool for
//! Concurrency Specification and Verification* (1983). A computation is a
//! set of events related by the enable relation, per-element total
//! orders, and their transitive closure — the temporal order; languages
//! and problems are specified by logic restrictions over computations,
//! and programs are verified by projecting their computations onto
//! *significant objects* and checking the problem's restrictions.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `gem-core` | events, elements, groups, orders, computations, histories |
//! | [`logic`] | `gem-logic` | restriction formulae, temporal operators, checking strategies |
//! | [`spec`] | `gem-spec` | type descriptions, abbreviations, threads, specifications |
//! | [`lang`] | `gem-lang` | Monitor / CSP / ADA substrates + schedule explorer |
//! | [`problems`] | `gem-problems` | buffers, Readers/Writers, distributed applications |
//! | [`verify`] | `gem-verify` | correspondences, projection, `PROG sat P` |
//! | [`obs`] | `gem-obs` | probes, span timing, JSON run reports (docs/OBSERVABILITY.md) |
//!
//! ## Quick start
//!
//! ```
//! use gem::core::{ComputationBuilder, Structure};
//! use gem::logic::{check, Formula, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut s = Structure::new();
//! let act = s.add_class("Act", &[])?;
//! let p = s.add_element("P", &[act])?;
//! let mut b = ComputationBuilder::new(s);
//! let e1 = b.add_event(p, act, vec![])?;
//! let e2 = b.add_event(p, act, vec![])?;
//! let c = b.seal()?;
//! let safety = Formula::occurred(e2).implies(Formula::occurred(e1)).henceforth();
//! assert!(check(&safety, &c, Strategy::default())?.holds);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's flagship verifications (the §9
//! Readers/Writers monitor, CSP buffers, ADA rendezvous, the distributed
//! database update, and the asynchronous Game of Life), and DESIGN.md /
//! EXPERIMENTS.md for the reproduction inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gem_core as core;
pub use gem_lang as lang;
pub use gem_logic as logic;
pub use gem_obs as obs;
pub use gem_problems as problems;
pub use gem_spec as spec;
pub use gem_verify as verify;
