//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to a
//! crates registry, so the workspace vendors the *small* slice of the
//! `rand 0.8` API it actually uses: the [`Rng`] / [`SeedableRng`] traits
//! and a seeded [`rngs::StdRng`]. The generator is xoshiro256\*\*
//! (public-domain algorithm by Blackman & Vigna) seeded via splitmix64 —
//! deterministic for a given seed, which is all the callers (seeded
//! schedule sampling and property tests) rely on.
//!
//! This is **not** a cryptographic or statistically rigorous RNG and it
//! does not aim for value-compatibility with the real `rand` crate; it
//! only preserves the API contract (uniform-ish draws, reproducible per
//! seed).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator: the subset of `rand::Rng` used here.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from `range` (Lemire-style rejection-free
    /// multiply-shift reduction; bias is negligible for the small ranges
    /// used in this workspace).
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen_range`] can draw.
pub trait UniformSample: Sized {
    /// Draws uniformly from `range`. Panics on an empty range.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u128;
                let draw = rng.next_u64() as u128;
                range.start + ((draw * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u128;
                let draw = rng.next_u64() as u128;
                let offset = ((draw * span) >> 64) as $u;
                range.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Seedable generators: the subset of `rand::SeedableRng` used here.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256\*\*).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(3..4usize);
            assert_eq!(v, 3);
        }
        let v = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
