//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so the workspace
//! vendors the API surface its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with `sample_size` /
//! `measurement_time` / `warm_up_time`, benchmark groups,
//! `bench_with_input` / `bench_function`, [`BenchmarkId`], and
//! `Bencher::iter`.
//!
//! Measurements are real wall-clock samples (median-reported), not
//! criterion's bootstrapped statistics. Every run also appends its
//! timings to a [`gem_obs::Report`] and writes
//! `target/gem-bench-reports/<benchmark-binary>.json` (override the
//! directory with `GEM_BENCH_REPORT_DIR`), so bench runs populate the
//! same machine-readable perf trajectory as `gem --stats-json`. Reports
//! are written atomically, so a concurrent reader never sees a torn
//! file. Setting `GEM_BENCH_QUICK=1` clamps sample counts and time
//! budgets to a smoke-test scale for CI gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use gem_obs::Report;

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: Option<u64>,
}

impl Bencher<'_> {
    /// Times `routine`: warms up, then takes `sample_size` samples of a
    /// batch size chosen so all samples fit in `measurement_time`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u32 = 0;
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);

        let samples = self.config.sample_size.max(2);
        let budget_per_sample = self.config.measurement_time.as_nanos().max(1) / samples as u128;
        let batch = u64::try_from((budget_per_sample / per_iter.max(1)).max(1)).unwrap_or(u64::MAX);

        let mut sample_ns: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sample_ns.push(elapsed / batch.max(1));
        }
        sample_ns.sort_unstable();
        self.result_ns = Some(sample_ns[sample_ns.len() / 2]);
    }
}

/// Budgets applied by `GEM_BENCH_QUICK` (see [`Criterion::apply_cli_args`]).
const QUICK_MEASUREMENT: Duration = Duration::from_millis(50);
const QUICK_WARM_UP: Duration = Duration::from_millis(10);

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// The harness: collects benchmark results and writes the JSON report.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
    filter: Option<String>,
    report: Report,
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Applies command-line conventions: the first non-flag argument is a
    /// substring filter (as with real criterion); `--bench`/`--test` and
    /// other flags are accepted and ignored.
    pub fn apply_cli_args(&mut self) {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--save-baseline" || a == "--baseline" || a == "--load-baseline" {
                let _ = args.next();
            } else if !a.starts_with('-') && self.filter.is_none() {
                self.filter = Some(a);
            }
        }
        // GEM_BENCH_QUICK clamps every budget so a full `cargo bench`
        // sweep finishes in seconds — a smoke/regression-gate mode, not a
        // measurement mode. Set by CI; numbers are NOT comparable to
        // committed BENCH baselines.
        if std::env::var_os("GEM_BENCH_QUICK").is_some() {
            self.config.sample_size = self.config.sample_size.min(3);
            self.config.measurement_time = self.config.measurement_time.min(QUICK_MEASUREMENT);
            self.config.warm_up_time = self.config.warm_up_time.min(QUICK_WARM_UP);
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        self.run_one(&id.to_string(), f);
        self
    }

    fn run_one<F>(&mut self, full_id: &str, f: F)
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: &self.config,
            result_ns: None,
        };
        f(&mut b);
        match b.result_ns {
            Some(ns) => {
                println!("{full_id:<48} {:>14}/iter", format_ns(ns));
                self.report
                    .timers
                    .entry(full_id.to_owned())
                    .or_default()
                    .record(ns);
            }
            None => println!("{full_id:<48} (no measurement)"),
        }
    }

    /// Writes the accumulated report (called by `criterion_main!`).
    pub fn finalize(&mut self) {
        if self.report.timers.is_empty() {
            return;
        }
        let binary = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "bench".to_owned());
        // Cargo suffixes bench binaries with a metadata hash; drop it so
        // report paths are stable across rebuilds.
        let name = match binary.rsplit_once('-') {
            Some((stem, hash))
                if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
            {
                stem.to_owned()
            }
            _ => binary,
        };
        self.report.meta.insert("benchmark".into(), name.clone());
        // Cargo runs bench binaries with cwd = the package directory, so a
        // bare relative default would scatter reports; anchor the default
        // to the target dir the binary itself lives in
        // (`target/<profile>/deps/<bin>` → `target`).
        let dir = std::env::var("GEM_BENCH_REPORT_DIR").unwrap_or_else(|_| {
            std::env::args()
                .next()
                .and_then(|p| {
                    std::path::Path::new(&p)
                        .ancestors()
                        .nth(3)
                        .map(|t| t.join("gem-bench-reports").to_string_lossy().into_owned())
                })
                .unwrap_or_else(|| "target/gem-bench-reports".to_owned())
        });
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if std::fs::create_dir_all(&dir).is_ok() {
            // Atomic so `gem bench-diff` can never read a half-written
            // report from a concurrent bench run.
            match gem_obs::write_atomic(&path, &self.report.to_json()) {
                Ok(()) => println!("report: {}", path.display()),
                Err(e) => eprintln!("criterion shim: cannot write {}: {e}", path.display()),
            }
        }
        // GEM_BENCH_TRAJECTORY=<BENCH_*.json> folds this run's means into
        // the committed trajectory file's "after" section, keyed by the
        // bench binary name — the bridge between ad-hoc bench runs and
        // the repo-root baselines `gem bench-diff` gates against (see
        // docs/PERFORMANCE.md, "Benchmark report contract").
        if let Some(traj) = std::env::var_os("GEM_BENCH_TRAJECTORY") {
            let traj = std::path::PathBuf::from(traj);
            match merge_trajectory(&traj, &name, &self.report) {
                Ok(()) => println!("trajectory: {} (after.{name})", traj.display()),
                Err(e) => eprintln!(
                    "criterion shim: cannot update trajectory {}: {e}",
                    traj.display()
                ),
            }
        }
    }
}

/// Replaces the `after.<bench>` entries matching this run's timer ids in
/// the trajectory file at `path`, preserving everything else (meta,
/// before, other benches, timers not re-measured this run). The file must
/// already exist with an object root — trajectory files are committed
/// artifacts with hand-written meta, not something a bench run invents.
fn merge_trajectory(path: &std::path::Path, bench: &str, report: &Report) -> Result<(), String> {
    use gem_obs::json::JsonValue;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = gem_obs::json::parse(&text)?;
    let JsonValue::Obj(mut root) = doc else {
        return Err("trajectory root is not an object".into());
    };
    let after = match root.iter_mut().find(|(k, _)| k == "after") {
        Some((_, v)) => v,
        None => {
            root.push(("after".into(), JsonValue::Obj(Vec::new())));
            &mut root.last_mut().expect("just pushed").1
        }
    };
    let JsonValue::Obj(benches) = after else {
        return Err("\"after\" is not an object".into());
    };
    let entries = match benches.iter_mut().find(|(k, _)| k == bench) {
        Some((_, v)) => v,
        None => {
            benches.push((bench.to_owned(), JsonValue::Obj(Vec::new())));
            &mut benches.last_mut().expect("just pushed").1
        }
    };
    let JsonValue::Obj(entries) = entries else {
        return Err(format!("\"after\".{bench:?} is not an object"));
    };
    for (id, stat) in &report.timers {
        let mean = JsonValue::Num(stat.mean_ns() as f64);
        match entries.iter_mut().find(|(k, _)| k == id) {
            Some((_, v)) => *v = mean,
            None => entries.push((id.clone(), mean)),
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    render_json(&JsonValue::Obj(root), 0, &mut out);
    out.push('\n');
    gem_obs::write_atomic(path, &out).map_err(|e| e.to_string())
}

/// Pretty-prints a [`gem_obs::json::JsonValue`] with two-space indents —
/// the layout of the committed `BENCH_*.json` files, so merged updates
/// diff cleanly against their history.
fn render_json(v: &gem_obs::json::JsonValue, indent: usize, out: &mut String) {
    use gem_obs::json::JsonValue;
    let pad = "  ".repeat(indent);
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        JsonValue::Str(s) => gem_obs::json::push_json_str(out, s),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                render_json(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                gem_obs::json::push_json_str(out, k);
                out.push_str(": ");
                render_json(val, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelled `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>, &I),
    {
        let full_id = format!("{}/{id}", self.name);
        self.c.run_one(&full_id, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let full_id = format!("{}/{id}", self.name);
        self.c.run_one(&full_id, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function. Supports both the simple
/// `criterion_group!(name, target, ...)` form and the configured
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            c.apply_cli_args();
            $($target(&mut c);)+
            c.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            b.iter(|| {
                calls += x;
            });
        });
        group.finish();
        assert!(calls > 0, "routine actually ran");
        assert!(c.report.timers.contains_key("g/inc/1"));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("something", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        assert!(c.report.timers.is_empty());
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("build", 42).to_string(), "build/42");
    }

    #[test]
    fn merge_trajectory_updates_only_matching_after_entries() {
        let dir = std::env::temp_dir().join(format!("gem-shim-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        std::fs::write(
            &path,
            r#"{
  "meta": {"headline": "unchanged"},
  "before": {"rw": {"rw/a": 100}},
  "after": {"rw": {"rw/a": 50, "rw/b": 70}, "other": {"other/x": 9}}
}"#,
        )
        .unwrap();
        let mut report = Report::default();
        report.timers.entry("rw/a".into()).or_default().record(42);
        report.timers.entry("rw/c".into()).or_default().record(7);
        merge_trajectory(&path, "rw", &report).unwrap();
        let doc = gem_obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let rw = doc.get("after").unwrap().get("rw").unwrap();
        assert_eq!(rw.get("rw/a").unwrap().as_u64(), Some(42), "remeasured");
        assert_eq!(rw.get("rw/b").unwrap().as_u64(), Some(70), "untouched");
        assert_eq!(rw.get("rw/c").unwrap().as_u64(), Some(7), "new series");
        assert_eq!(
            doc.get("after")
                .unwrap()
                .get("other")
                .unwrap()
                .get("other/x")
                .unwrap()
                .as_u64(),
            Some(9),
            "other benches preserved"
        );
        assert_eq!(
            doc.get("before")
                .unwrap()
                .get("rw")
                .unwrap()
                .get("rw/a")
                .unwrap()
                .as_u64(),
            Some(100),
            "before section never touched"
        );
        assert_eq!(
            doc.get("meta").unwrap().get("headline").unwrap().as_str(),
            Some("unchanged")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_trajectory_requires_an_existing_file() {
        let missing = std::env::temp_dir().join("gem-shim-traj-missing/BENCH_none.json");
        let mut report = Report::default();
        report.timers.entry("x".into()).or_default().record(1);
        assert!(merge_trajectory(&missing, "rw", &report).is_err());
    }
}
