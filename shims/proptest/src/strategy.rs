//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

use rand::Rng as _;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf case; `recurse` builds one
    /// level on top of an inner strategy. `depth` bounds the nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored (no size-driven shrinking here).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Uniformly pick how deep this value nests, then stack the
        // recursion closure that many times over the leaf strategy.
        let levels = rng.gen_range(0..self.depth as usize + 1);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> OneOf<T> {
    /// Builds a choice over the given arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Uniform choice between strategy alternatives.
///
/// ```
/// use proptest::prelude::*;
/// let _byte_pair = prop_oneof![Just((0u8, 0u8)), (0u8..4, 0u8..4)];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return start;
                }
                // end < MAX whenever start < end, so end + 1 cannot wrap.
                rng.gen_range(start..end + 1)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
