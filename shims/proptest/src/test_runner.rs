//! The case runner behind the [`proptest!`](crate::proptest) macro.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration. Only `cases` is honoured by this shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Error type property bodies may `return Err(...)` with (the shim's
/// assertions panic instead, but early `return Ok(())` and the `Result`
/// body contract of real proptest are preserved).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a, for deriving a per-test seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic RNG for case `case` of test `name`.
pub fn new_case_rng(name: &str, case: u32) -> TestRng {
    let seed = fnv1a(name.as_bytes()) ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    StdRng::seed_from_u64(seed)
}

/// Runs `body` for each case with a deterministically seeded RNG,
/// annotating the failing case index on panic. No shrinking is attempted.
pub fn run_cases(
    name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for case in 0..cases {
        let mut rng = new_case_rng(name, case);
        match catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!("{name}: case {case}/{cases} rejected: {e}"),
            Err(payload) => {
                eprintln!(
                    "proptest shim: {name} failed on case {case}/{cases} \
                     (deterministic seed; rerun the test to reproduce — no shrinking)"
                );
                resume_unwind(payload);
            }
        }
    }
}

/// The property-test entry macro. Supports the subset of real proptest
/// grammar this workspace uses: an optional `#![proptest_config(...)]`
/// inner attribute, then `#[test] fn name(pat in strategy, ...) { ... }`
/// items. Bodies behave as `Result<(), TestCaseError>` functions: an
/// early `return Ok(())` skips the rest of the case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(stringify!($name), __config.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body (panics on failure; the
/// shim does not shrink, so this is equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body without requiring `Debug`
/// (real proptest formats both sides; the shim reports the expressions).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        if !($left == $right) {
            panic!(
                "prop_assert_eq! failed: {} != {}",
                stringify!($left),
                stringify!($right)
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        if !($left == $right) {
            panic!($($fmt)+);
        }
    }};
}
