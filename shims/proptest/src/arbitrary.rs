//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

use rand::Rng as _;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}
