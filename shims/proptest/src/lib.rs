//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the proptest 1.x API its property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_recursive`
//! / `boxed`, [`Just`], [`any`], range and tuple strategies,
//! [`collection::vec`], the [`prop_oneof!`] / [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted for a test shim:
//!
//! * **No shrinking.** A failing case panics with its case index; cases
//!   are seeded deterministically from the test name and index, so a
//!   failure reproduces by rerunning the test.
//! * Value distributions are simpler (uniform draws, uniform recursion
//!   depth) — properties must hold for *all* inputs, so this only shifts
//!   coverage, not soundness.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Strategy combinators and primitive strategies.
pub mod strategy_impl_details {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn combinators_generate() {
        use crate::test_runner::new_case_rng;
        let strat = prop_oneof![Just(1u8), Just(2u8)]
            .prop_map(|v| v * 10)
            .boxed();
        let mut rng = new_case_rng("combinators_generate", 0);
        for _ in 0..20 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        use crate::test_runner::new_case_rng;
        let strat = crate::collection::vec((0usize..5, any::<bool>()), 0..8);
        let mut rng = new_case_rng("vec_and_tuple", 1);
        for _ in 0..20 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 8);
            assert!(v.iter().all(|&(n, _)| n < 5));
        }
        let exact = crate::collection::vec(0usize..3, 4usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 4);
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::test_runner::new_case_rng;
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = new_case_rng("recursive", 2);
        let mut max_seen = 0;
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth bound respected, got {d}");
            max_seen = max_seen.max(d);
        }
        assert!(max_seen >= 1, "recursion actually taken");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(n in 1usize..10, flag in any::<bool>()) {
            prop_assert!((1..10).contains(&n));
            if flag {
                // Early Ok-return must compile, mirroring real proptest.
                return Ok(());
            }
            prop_assert_eq!(n * 2 / 2, n);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }
}
