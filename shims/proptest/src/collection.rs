//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

use rand::Rng as _;

/// A size specification for collection strategies: an exact length or a
/// (half-open / inclusive) range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max_inclusive {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_inclusive + 1)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and size specification.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
