//! Differential soundness suite for incremental-fingerprint dedup.
//!
//! PR 3's computation dedup serialised the exact O(n²) `canonical_key`
//! for *every* run. The current pipeline reads the builder-maintained
//! rolling fingerprint (free) and confirms candidate hits with the
//! closure-free exact `confirm_key`. The contract is that this is a pure
//! performance change: this suite reimplements the serialise-every-run
//! reference from public APIs and checks the new path against it —
//!
//! * byte-identical [`VerifyOutcome`]s and identical hit/miss counters,
//!   across Monitor/CSP/ADA substrates × `jobs ∈ {1, 4}` × POR on/off,
//!   including a genuinely failing and a deadlocking instance;
//! * the run partition induced by `(fingerprint, confirm_key)` coincides
//!   exactly with the partition induced by `canonical_key` — the
//!   fingerprint never merges distinct computations (soundness) and the
//!   confirmation key never splits equal ones (no lost dedup);
//! * counterexample artifact directories are byte-identical with dedup
//!   on and off.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::ControlFlow;
use std::sync::Arc;

use gem::core::Computation;
use gem::lang::monitor::readers_writers_monitor;
use gem::lang::{Explorer, System};
use gem::obs::StatsProbe;
use gem::problems::bounded;
use gem::problems::philosophers::{
    philosophers_correspondence, philosophers_program, philosophers_spec, ForkOrder,
};
use gem::problems::readers_writers::{rw_correspondence, rw_program, rw_spec, RwVariant};
use gem::spec::Specification;
use gem::verify::auto::{self, Strategy};
use gem::verify::{
    canonical_key, check_computation, confirm_key, sample_evidence, verify_system, ArtifactSink,
    CanonicalKey, Correspondence, RunFailure, VerifyOptions, VerifyOutcome,
};

/// Worker counts for the differential matrix.
const JOBS: [usize; 2] = [1, 4];

/// True when CI routes every instance in this suite through the
/// `--auto` preservation check as well (`GEM_TEST_AUTO=1`); without the
/// env the check still runs on the flagship bounded-monitor instance.
/// Mirrors `GEM_TEST_JOBS` / `GEM_TEST_DEDUP` / `GEM_TEST_POR`.
fn auto_env() -> bool {
    std::env::var("GEM_TEST_AUTO").is_ok_and(|v| v.trim() == "1")
}

/// Whatever strategy the `--auto` picker chooses for an instance must
/// preserve the plain sweep's verdict: byte-identical outcomes for
/// plain/dedup choices, verdict-level equality for por (reduction
/// legitimately renumbers runs, never flips a verdict).
fn assert_auto_preserves_outcome<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    what: &str,
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let defaults = VerifyOptions::default();
    let evidence = sample_evidence(
        &defaults.explorer,
        sys,
        extract,
        |comp| {
            let _ = check_computation(
                comp,
                spec,
                corr,
                defaults.strategy,
                defaults.check_program_legality,
            );
        },
        auto::AUTO_SAMPLES,
        auto::AUTO_CHECKS,
    );
    let decision = auto::choose(evidence);
    let sweep = |dedup: bool, reduce: bool| {
        verify_system(
            sys,
            spec,
            corr,
            extract,
            &VerifyOptions {
                explorer: Explorer {
                    dedup_computations: dedup,
                    reduce,
                    ..Explorer::default()
                },
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let plain = sweep(false, false);
    let chosen = sweep(
        decision.strategy == Strategy::Dedup,
        decision.strategy == Strategy::Por,
    );
    if decision.strategy == Strategy::Por {
        assert_eq!(
            plain.ok(),
            chosen.ok(),
            "{what}: auto-chosen por flips the verdict ({})",
            decision.reason
        );
        assert_eq!(
            plain.deadlocks > 0,
            chosen.deadlocks > 0,
            "{what}: auto-chosen por changes deadlock existence"
        );
    } else {
        assert_eq!(
            plain,
            chosen,
            "{what}: auto-chosen {} changes the outcome ({})",
            decision.strategy.name(),
            decision.reason
        );
    }
}

/// PR 3's dedup, reimplemented verbatim from public APIs: serialise the
/// exact canonical key of every run, cache the check verdict per key.
/// Deadlocks are judged per run on the state and never deduplicated;
/// the failure cap breaks the sweep exactly like `verify_system`.
fn reference_dedup_sweep<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation,
    explorer: &Explorer,
) -> (VerifyOutcome, u64, u64)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let defaults = VerifyOptions::default();
    let mut runs = 0usize;
    let mut deadlocks = 0usize;
    let mut failures: Vec<RunFailure> = Vec::new();
    let mut verdicts: HashMap<CanonicalKey, Option<(Vec<String>, String)>> = HashMap::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    let stats = explorer.par_for_each_run(sys, |state, _| {
        runs += 1;
        if !sys.is_complete(state) {
            deadlocks += 1;
        }
        let comp = extract(state);
        let key = canonical_key(&comp);
        let verdict = match verdicts.get(&key) {
            Some(cached) => {
                hits += 1;
                cached.clone()
            }
            None => {
                misses += 1;
                let check = check_computation(
                    &comp,
                    spec,
                    corr,
                    defaults.strategy,
                    defaults.check_program_legality,
                )
                .expect("correspondence consistent");
                verdicts.insert(key, check.verdict.clone());
                check.verdict
            }
        };
        if let Some((violated, detail)) = verdict {
            failures.push(RunFailure {
                run: runs - 1,
                violated,
                detail,
            });
            if failures.len() >= defaults.max_failures {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    (
        VerifyOutcome {
            runs,
            deadlocks,
            failures,
            truncation: stats.truncation,
        },
        hits,
        misses,
    )
}

/// The new pipeline: `verify_system` with `dedup_computations`, hit and
/// miss counters read back off a stats probe.
fn fingerprint_dedup_sweep<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation,
    explorer: &Explorer,
) -> (VerifyOutcome, u64, u64)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let stats = Arc::new(StatsProbe::new());
    let outcome = verify_system(
        sys,
        spec,
        corr,
        extract,
        &VerifyOptions {
            explorer: *explorer,
            probe: stats.clone(),
            // This suite pins down the dedup cache itself; the
            // incremental checker legitimately bypasses it on clean
            // leaves, which would zero the hit/miss counters under test.
            incr_check: gem::verify::IncrCheck::Off,
            ..VerifyOptions::default()
        },
    )
    .expect("correspondence consistent");
    let report = stats.report();
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    (
        outcome,
        counter("verify.dedup.hits"),
        counter("verify.dedup.misses"),
    )
}

/// The core differential on one instance: reference and fingerprint
/// dedup agree byte-for-byte across the jobs × POR matrix.
fn assert_fingerprint_equiv<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    what: &str,
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    for jobs in JOBS {
        for reduce in [false, true] {
            let explorer = Explorer {
                jobs,
                reduce,
                split_depth: 3,
                dedup_computations: true,
                ..Explorer::default()
            };
            let (want, want_hits, want_misses) =
                reference_dedup_sweep(sys, spec, corr, extract, &explorer);
            let (got, got_hits, got_misses) =
                fingerprint_dedup_sweep(sys, spec, corr, extract, &explorer);
            assert_eq!(
                want, got,
                "{what}: outcome diverges from reference dedup at jobs={jobs} por={reduce}"
            );
            assert_eq!(
                (want_hits, want_misses),
                (got_hits, got_misses),
                "{what}: dedup hit/miss counters diverge at jobs={jobs} por={reduce}"
            );
        }
    }
}

/// On one instance, the run partition by `(fingerprint, confirm_key)`
/// must coincide with the partition by `canonical_key`: same classes,
/// same members.
fn assert_partitions_coincide<S>(sys: &S, extract: impl Fn(&S::State) -> Computation, what: &str)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut by_canonical: BTreeMap<CanonicalKey, BTreeSet<usize>> = BTreeMap::new();
    let mut by_fingerprint: BTreeMap<(u64, CanonicalKey), BTreeSet<usize>> = BTreeMap::new();
    let mut run = 0usize;
    Explorer::default().for_each_run(sys, |state, _| {
        let comp = extract(state);
        by_canonical
            .entry(canonical_key(&comp))
            .or_default()
            .insert(run);
        by_fingerprint
            .entry((comp.fingerprint(), confirm_key(&comp)))
            .or_default()
            .insert(run);
        run += 1;
        ControlFlow::Continue(())
    });
    let canonical_classes: BTreeSet<BTreeSet<usize>> = by_canonical.into_values().collect();
    let fingerprint_classes: BTreeSet<BTreeSet<usize>> = by_fingerprint.into_values().collect();
    assert_eq!(
        canonical_classes, fingerprint_classes,
        "{what}: fingerprint/confirm partition differs from canonical partition"
    );
}

#[test]
fn monitor_bounded_buffer_fingerprint_equiv() {
    let sys = bounded::monitor_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::monitor_correspondence(&sys, &spec, 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_fingerprint_equiv(&sys, &spec, &corr, extract, "monitor bounded buffer");
    assert_partitions_coincide(&sys, extract, "monitor bounded buffer");
    // Always checked here: bounded_monitor is the instance where a wrong
    // auto choice (dedup) was a measured 3.4× regression.
    assert_auto_preserves_outcome(&sys, &spec, &corr, extract, "monitor bounded buffer");
}

#[test]
fn csp_bounded_buffer_fingerprint_equiv() {
    let sys = bounded::csp_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::csp_correspondence(&sys, &spec, 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_fingerprint_equiv(&sys, &spec, &corr, extract, "csp bounded buffer");
    assert_partitions_coincide(&sys, extract, "csp bounded buffer");
    if auto_env() {
        assert_auto_preserves_outcome(&sys, &spec, &corr, extract, "csp bounded buffer");
    }
}

#[test]
fn ada_bounded_buffer_fingerprint_equiv() {
    let sys = bounded::ada_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::ada_correspondence(&sys, &spec, 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_fingerprint_equiv(&sys, &spec, &corr, extract, "ada bounded buffer");
    assert_partitions_coincide(&sys, extract, "ada bounded buffer");
    if auto_env() {
        assert_auto_preserves_outcome(&sys, &spec, &corr, extract, "ada bounded buffer");
    }
}

#[test]
fn failing_rw_fingerprint_equiv() {
    // Writers-priority monitor against the readers-priority problem:
    // genuinely failing runs, so the failure list, cap break, and
    // verdict replay on cache hits are all exercised.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_fingerprint_equiv(&sys, &spec, &corr, extract, "failing rw");
    assert_partitions_coincide(&sys, extract, "failing rw");
    if auto_env() {
        assert_auto_preserves_outcome(&sys, &spec, &corr, extract, "failing rw");
    }
}

#[test]
fn deadlocking_philosophers_fingerprint_equiv() {
    // Naive-order philosophers deadlock: per-run (never deduplicated)
    // deadlock counting must agree between the two pipelines.
    let sys = philosophers_program(2, 1, ForkOrder::Naive);
    let spec = philosophers_spec(2);
    let corr = philosophers_correspondence(&sys, &spec, 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_fingerprint_equiv(&sys, &spec, &corr, extract, "deadlocking philosophers");
    assert_partitions_coincide(&sys, extract, "deadlocking philosophers");
    if auto_env() {
        assert_auto_preserves_outcome(&sys, &spec, &corr, extract, "deadlocking philosophers");
    }
}

#[test]
fn artifact_dirs_identical_with_and_without_dedup() {
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    let sweep = |dedup: bool, dir: &std::path::Path| {
        std::fs::remove_dir_all(dir).ok();
        verify_system(
            &sys,
            &spec,
            &corr,
            extract,
            &VerifyOptions {
                explorer: Explorer {
                    dedup_computations: dedup,
                    ..Explorer::default()
                },
                artifacts: Some(ArtifactSink::new(dir)),
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let base = std::env::temp_dir().join(format!("gem-fp-equiv-{}", std::process::id()));
    let plain_dir = base.join("plain");
    let dedup_dir = base.join("dedup");
    let plain = sweep(false, &plain_dir);
    let deduped = sweep(true, &dedup_dir);
    assert_eq!(plain, deduped, "artifact sweeps must agree on the outcome");
    for name in [
        "meta.json",
        "schedule.json",
        "computation.json",
        "blame.json",
        "counterexample.dot",
        "counterexample_slice.dot",
        "outcome.json",
    ] {
        let a = std::fs::read(plain_dir.join(name)).expect(name);
        let b = std::fs::read(dedup_dir.join(name)).expect(name);
        assert_eq!(a, b, "artifact file {name} differs under dedup");
    }
    std::fs::remove_dir_all(&base).ok();
}
