//! Property tests for the §8.2 restriction abbreviations: on randomly
//! generated paired computations, `prerequisite`/`fork`/`join` hold
//! exactly when the pairing discipline was respected.

use proptest::prelude::*;

use gem::core::{Computation, ComputationBuilder, Structure};
use gem::logic::{holds_on_computation, EventSel};
use gem::spec::{chain, fork, join, prerequisite};

/// Builds a computation with `n` A→B pairs, then applies `corruption`:
/// 0 = none, 1 = drop one enable edge, 2 = double-enable one B,
/// 3 = one A enabling two Bs.
fn paired(n: usize, corruption: u8) -> (Computation, EventSel, EventSel) {
    let mut s = Structure::new();
    let a = s.add_class("A", &[]).unwrap();
    let b = s.add_class("B", &[]).unwrap();
    let els: Vec<_> = (0..n)
        .map(|i| s.add_element(format!("P{i}"), &[a, b]).unwrap())
        .collect();
    let mut builder = ComputationBuilder::new(s);
    let mut a_ids = Vec::new();
    let mut b_ids = Vec::new();
    for &el in &els {
        a_ids.push(builder.add_event(el, a, vec![]).unwrap());
        b_ids.push(builder.add_event(el, b, vec![]).unwrap());
    }
    for i in 0..n {
        let skip = corruption == 1 && i == 0;
        if !skip {
            builder.enable(a_ids[i], b_ids[i]).unwrap();
        }
    }
    if corruption == 2 && n >= 2 {
        builder.enable(a_ids[1], b_ids[0]).unwrap(); // b0 has two A enablers
    }
    if corruption == 3 && n >= 2 {
        builder.enable(a_ids[0], b_ids[1]).unwrap(); // a0 enables two Bs
    }
    (
        builder.seal().unwrap(),
        EventSel::of_class(a),
        EventSel::of_class(b),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn prerequisite_iff_discipline(n in 1usize..6, corruption in 0u8..4) {
        let corruption = if n < 2 { 0 } else { corruption };
        let (c, a, b) = paired(n, corruption);
        let holds = holds_on_computation(&prerequisite(&a, &b), &c).unwrap();
        prop_assert_eq!(holds, corruption == 0, "corruption {}", corruption);
    }

    #[test]
    fn chain_of_pairs(n in 1usize..5) {
        // A → B as a two-stage chain is the same as prerequisite.
        let (c, a, b) = paired(n, 0);
        prop_assert!(holds_on_computation(&chain(&[a, b]), &c).unwrap());
    }
}

/// FORK / JOIN on an explicitly built diamond, plus refutations.
#[test]
fn fork_join_diamond() {
    let mut s = Structure::new();
    let root = s.add_class("Root", &[]).unwrap();
    let l = s.add_class("L", &[]).unwrap();
    let r = s.add_class("R", &[]).unwrap();
    let sink = s.add_class("Sink", &[]).unwrap();
    let el = s.add_element("E", &[root, l, r, sink]).unwrap();
    let mut b = ComputationBuilder::new(s);
    let e_root = b.add_event(el, root, vec![]).unwrap();
    let e_l = b.add_event(el, l, vec![]).unwrap();
    let e_r = b.add_event(el, r, vec![]).unwrap();
    let e_sink = b.add_event(el, sink, vec![]).unwrap();
    b.enable(e_root, e_l).unwrap();
    b.enable(e_root, e_r).unwrap();
    b.enable(e_l, e_sink).unwrap();
    b.enable(e_r, e_sink).unwrap();
    let c = b.seal().unwrap();
    let sel = |cls| EventSel::of_class(cls);
    assert!(holds_on_computation(&fork(&sel(root), &[sel(l), sel(r)]), &c).unwrap());
    assert!(holds_on_computation(&join(&[sel(l), sel(r)], &sel(sink)), &c).unwrap());
    // Refutation: Sink is not a fork target of L (L enables it, but no
    // Root→Sink pairing exists).
    assert!(!holds_on_computation(&fork(&sel(root), &[sel(sink)]), &c).unwrap());
}
