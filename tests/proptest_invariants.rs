//! Property-based tests of the core GEM invariants, driven by random
//! structures, computations, and schedules.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use gem::core::{
    check_legality, for_each_history, for_each_linearization, Closure, Computation,
    ComputationBuilder, DenseBitSet, EventId, History, HistorySequence, IncrementalOrder,
    Structure,
};
use gem::logic::{holds_on_computation, EventSel, Formula};

/// Strategy: a random DAG computation over up to `max_el` elements and
/// `max_ev` events; edges only point from lower to higher event ids, so
/// sealing always succeeds.
fn computation_strategy(max_el: usize, max_ev: usize) -> impl Strategy<Value = Computation> {
    (1..=max_el, 1..=max_ev).prop_flat_map(move |(n_el, n_ev)| {
        let assignments = proptest::collection::vec(0..n_el, n_ev);
        let edges = proptest::collection::vec((0..n_ev, 0..n_ev), 0..n_ev * 2);
        (assignments, edges).prop_map(move |(assignments, edges)| {
            let mut s = Structure::new();
            let act = s.add_class("Act", &[]).expect("class");
            let els: Vec<_> = (0..n_el)
                .map(|i| s.add_element(format!("P{i}"), &[act]).expect("element"))
                .collect();
            let mut b = ComputationBuilder::new(s);
            let ids: Vec<_> = assignments
                .iter()
                .map(|&el| b.add_event(els[el], act, vec![]).expect("event"))
                .collect();
            for (x, y) in edges {
                if x < y {
                    b.enable(ids[x], ids[y]).expect("edge");
                }
            }
            b.seal().expect("forward edges are acyclic")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The temporal order is a strict partial order: irreflexive,
    /// antisymmetric, transitive, and it extends both constituent orders.
    #[test]
    fn temporal_order_is_strict_partial(c in computation_strategy(4, 12)) {
        let ids: Vec<EventId> = c.event_ids().collect();
        for &a in &ids {
            prop_assert!(!c.temporally_precedes(a, a), "irreflexive");
            for &b in &ids {
                if c.temporally_precedes(a, b) {
                    prop_assert!(!c.temporally_precedes(b, a), "antisymmetric");
                }
                if c.enables(a, b) || c.element_precedes(a, b) {
                    prop_assert!(c.temporally_precedes(a, b), "extends ⊳ and ⇒el");
                }
                for &d in &ids {
                    if c.temporally_precedes(a, b) && c.temporally_precedes(b, d) {
                        prop_assert!(c.temporally_precedes(a, d), "transitive");
                    }
                }
            }
        }
    }

    /// The incremental reachability index agrees with the batch closure
    /// build on arbitrary edge sets: same pairwise reachability when the
    /// edges are acyclic, and cycle rejection in exactly the same cases
    /// (including self-loops).
    #[test]
    fn incremental_order_matches_batch_closure(
        (n, edges) in (1usize..=20).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n), 0..n * 3))
        })
    ) {
        let e = |i: usize| EventId::from_raw(i as u32);
        let edge_ids: Vec<(EventId, EventId)> =
            edges.iter().map(|&(a, b)| (e(a), e(b))).collect();
        let mut inc = IncrementalOrder::new();
        for _ in 0..n {
            inc.push_node();
        }
        for &(a, b) in &edge_ids {
            inc.add_edge(a, b);
        }
        match Closure::from_edges(n, &edge_ids) {
            Ok(closure) => {
                prop_assert!(inc.cycle().is_none(),
                    "incremental latched a cycle on an acyclic edge set");
                for a in 0..n {
                    for b in 0..n {
                        prop_assert_eq!(
                            inc.precedes(e(a), e(b)),
                            closure.precedes(e(a), e(b)),
                            "reachability diverges at ({}, {})", a, b
                        );
                    }
                }
            }
            Err(_) => prop_assert!(inc.cycle().is_some(),
                "batch build rejected a cycle the incremental path missed"),
        }
    }

    /// Rolling a builder back to a mark erases the rolled-back suffix
    /// completely: sealing afterwards gives exactly what a builder that
    /// never saw the suffix gives — same events, enables, temporal order,
    /// and the same cycle verdict. This is the contract the exploration
    /// undo fast path rests on.
    #[test]
    fn builder_truncate_equals_never_built(
        (n_el, assignments, edges, split) in (1usize..=3).prop_flat_map(|n_el| {
            (1usize..=10).prop_flat_map(move |n_ev| {
                let assignments = proptest::collection::vec(0..n_el, n_ev);
                // Unconstrained direction: suffix edges may point backwards
                // (exercising the rebuild path) or even create cycles the
                // rollback must forget.
                let edges = proptest::collection::vec((0..n_ev, 0..n_ev), 0..n_ev * 2);
                (Just(n_el), assignments, edges, 0..=n_ev * 2)
            })
        })
    ) {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).expect("class");
        let els: Vec<_> = (0..n_el)
            .map(|i| s.add_element(format!("P{i}"), &[act]).expect("element"))
            .collect();
        let s = std::sync::Arc::new(s);
        let split = split.min(edges.len());

        // Builder A sees everything, then rolls the suffix back.
        let mut a = ComputationBuilder::new(s.clone());
        let ids_a: Vec<_> = assignments
            .iter()
            .map(|&el| a.add_event(els[el], act, vec![]).expect("event"))
            .collect();
        for &(x, y) in &edges[..split] {
            a.enable(ids_a[x], ids_a[y]).expect("edge");
        }
        let mark = a.mark();
        for &(x, y) in &edges[split..] {
            a.enable(ids_a[x], ids_a[y]).expect("edge");
        }
        a.truncate_to(&mark);

        // Builder B never sees the suffix.
        let mut b = ComputationBuilder::new(s);
        let ids_b: Vec<_> = assignments
            .iter()
            .map(|&el| b.add_event(els[el], act, vec![]).expect("event"))
            .collect();
        for &(x, y) in &edges[..split] {
            b.enable(ids_b[x], ids_b[y]).expect("edge");
        }

        match (a.seal_ref(), b.seal_ref()) {
            (Ok(ca), Ok(cb)) => {
                prop_assert_eq!(ca.event_count(), cb.event_count());
                for x in ca.event_ids() {
                    for y in ca.event_ids() {
                        prop_assert_eq!(ca.enables(x, y), cb.enables(x, y));
                        prop_assert_eq!(
                            ca.temporally_precedes(x, y),
                            cb.temporally_precedes(x, y)
                        );
                    }
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(format!("{ea}"), format!("{eb}")),
            (ra, rb) => prop_assert!(false,
                "seal verdicts diverge after rollback: {:?} vs {:?}", ra.is_ok(), rb.is_ok()),
        }
    }

    /// Concurrency is symmetric and excludes ordered pairs; element order
    /// is total within an element.
    #[test]
    fn concurrency_and_element_order(c in computation_strategy(4, 10)) {
        let ids: Vec<EventId> = c.event_ids().collect();
        for &a in &ids {
            for &b in &ids {
                prop_assert_eq!(c.concurrent(a, b), c.concurrent(b, a));
                if c.concurrent(a, b) {
                    prop_assert!(!c.temporally_precedes(a, b));
                    prop_assert!(c.event(a).element() != c.event(b).element(),
                        "same-element events are never concurrent");
                }
                if a != b && c.event(a).element() == c.event(b).element() {
                    prop_assert!(c.element_precedes(a, b) || c.element_precedes(b, a));
                }
            }
        }
    }

    /// Every enumerated history is downward-closed, enumeration is
    /// duplicate-free, and the complete history is always reached.
    #[test]
    fn histories_are_downward_closed_prefixes(c in computation_strategy(3, 9)) {
        let mut seen = BTreeSet::new();
        let mut found_complete = false;
        for_each_history(&c, 20_000, |h| {
            let key: Vec<usize> = h.iter().map(|e| e.index()).collect();
            assert!(seen.insert(key), "duplicate history");
            for e in h.iter() {
                for p in c.closure().predecessors(e).iter() {
                    assert!(h.contains(EventId::from_raw(p as u32)), "not a prefix");
                }
            }
            if h.is_complete(&c) {
                found_complete = true;
            }
            ControlFlow::Continue(())
        });
        prop_assert!(found_complete);
    }

    /// Every enumerated linearization is a topological order, and turning
    /// it into a history sequence yields a valid vhs whose tails are vhs.
    #[test]
    fn linearizations_are_topological(c in computation_strategy(3, 8)) {
        for_each_linearization(&c, 2_000, |order| {
            assert_eq!(order.len(), c.event_count());
            for (i, &a) in order.iter().enumerate() {
                for &b in &order[i + 1..] {
                    assert!(!c.temporally_precedes(b, a), "order respects ⇒");
                }
            }
            let seq = HistorySequence::from_linearization(&c, order);
            assert!(HistorySequence::new(&c, seq.histories().to_vec()).is_ok());
            for i in 0..seq.len() {
                assert!(
                    HistorySequence::new(&c, seq.tail(i).to_vec()).is_ok(),
                    "tail closure (§7)"
                );
            }
            ControlFlow::Continue(())
        });
    }

    /// Generated computations with only intra-structure edges are legal,
    /// and along any greedy extension, `potential(e)` holds exactly of
    /// the frontier while `new(e)` holds exactly of the occurred events
    /// with no occurred successor.
    #[test]
    fn frontier_potential_new_consistency(c in computation_strategy(3, 8)) {
        use gem::logic::holds_on_history;
        prop_assert!(check_legality(&c).is_empty());
        let mut h = History::empty(&c);
        loop {
            let frontier = h.frontier(&c);
            for e in c.event_ids() {
                let pot = holds_on_history(&Formula::potential(e), &c, &h).unwrap();
                prop_assert_eq!(pot, frontier.contains(&e), "potential = frontier");
                let is_new = holds_on_history(&Formula::is_new(e), &c, &h).unwrap();
                let expect_new = h.contains(e)
                    && c.closure()
                        .successors(e)
                        .iter()
                        .all(|s| !h.contains(EventId::from_raw(s as u32)));
                prop_assert_eq!(is_new, expect_new, "new = maximal in history");
            }
            match frontier.first() {
                Some(&e) => h.try_insert(&c, e).expect("frontier insertable"),
                None => break,
            }
        }
        prop_assert!(h.is_complete(&c));
        // On the complete computation nothing is potential.
        for e in c.event_ids() {
            prop_assert!(!holds_on_computation(&Formula::potential(e), &c).unwrap());
        }
    }

    /// Histories form a lattice: join/meet of histories are histories
    /// (downward-closed), and satisfy the lattice laws.
    #[test]
    fn histories_form_a_lattice(c in computation_strategy(3, 8)) {
        // Collect a few histories deterministically.
        let mut histories = Vec::new();
        for_each_history(&c, 12, |h| {
            histories.push(h.clone());
            ControlFlow::Continue(())
        });
        for a in &histories {
            for b in &histories {
                let j = a.join(b);
                let m = a.meet(b);
                // Results are downward-closed (constructible as histories).
                prop_assert!(History::from_events(&c, j.iter()).is_ok());
                prop_assert!(History::from_events(&c, m.iter()).is_ok());
                // Lattice laws.
                prop_assert!(a.is_prefix_of(&j) && b.is_prefix_of(&j));
                prop_assert!(m.is_prefix_of(a) && m.is_prefix_of(b));
                prop_assert_eq!(&a.join(a), a);
                prop_assert_eq!(&a.meet(a), a);
                prop_assert_eq!(a.join(b), b.join(a));
                prop_assert_eq!(a.meet(b), b.meet(a));
                // Absorption: a ∨ (a ∧ b) = a.
                prop_assert_eq!(&a.join(&a.meet(b)), a);
            }
        }
    }

    /// DenseBitSet behaves like a BTreeSet model.
    #[test]
    fn bitset_model(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bs = DenseBitSet::new(128);
        let mut model = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(i), model.insert(i));
            } else {
                prop_assert_eq!(bs.remove(i), model.remove(&i));
            }
            prop_assert_eq!(bs.len(), model.len());
        }
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }

    /// Quantifier duality: ¬∃x.φ ⇔ ∀x.¬φ on arbitrary computations.
    #[test]
    fn quantifier_duality(c in computation_strategy(3, 8)) {
        let body = |v: &str| Formula::is_new(v);
        let exists = Formula::exists("x", EventSel::any(), body("x"));
        let forall_not = Formula::forall("x", EventSel::any(), body("x").not());
        let lhs = holds_on_computation(&exists.clone().not(), &c).unwrap();
        let rhs = holds_on_computation(&forall_not, &c).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// `retagged` preserves every order and the event data.
    #[test]
    fn retagging_preserves_structure(c in computation_strategy(3, 8)) {
        use gem::core::{ThreadTag, ThreadTypeId};
        let tag = ThreadTag::new(ThreadTypeId::from_raw(0), 1);
        let t = c.retagged(|_| vec![tag]);
        prop_assert_eq!(t.event_count(), c.event_count());
        for a in c.event_ids() {
            prop_assert!(t.event(a).in_thread(tag));
            prop_assert_eq!(t.event(a).class(), c.event(a).class());
            for b in c.event_ids() {
                prop_assert_eq!(t.temporally_precedes(a, b), c.temporally_precedes(a, b));
                prop_assert_eq!(t.enables(a, b), c.enables(a, b));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ◻-safety verdicts agree between singleton-step (linearization) and
    /// fully general antichain-step vhs semantics: every coarse-step
    /// history is an order ideal, and every ideal lies on a linearization.
    #[test]
    fn step_and_linearization_safety_agree(c in computation_strategy(3, 6)) {
        use gem::core::for_each_step_sequence;
        use gem::logic::{check, holds_on_sequence, Strategy};
        if c.event_count() < 2 {
            return Ok(());
        }
        let e0 = EventId::from_raw(0);
        let e1 = EventId::from_raw(1);
        let f = Formula::occurred(e1).implies(Formula::occurred(e0)).henceforth();
        let lin = check(&f, &c, Strategy::Linearizations { limit: 50_000 })
            .unwrap()
            .holds;
        let mut steps_hold = true;
        for_each_step_sequence(&c, 20_000, |seq| {
            if !holds_on_sequence(&f, &c, seq).unwrap() {
                steps_hold = false;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        prop_assert_eq!(lin, steps_hold);
    }
}

/// A deterministic scheduler tree driven by a generated branching table:
/// the state is the path of branch indices taken so far, and the fanout
/// at each node is looked up by depth plus a mix of the path, so trees
/// are irregular (ragged, with dead branches) yet fully reproducible.
/// This is the random-`System` generator for the differential properties
/// pitting `Explorer::par_for_each_run` against the serial DFS oracle.
#[derive(Clone, Debug)]
struct TableSystem {
    /// `fanout[d]` lists candidate branch counts at depth `d` (0 allowed:
    /// an interior node with no children ends its run early).
    fanout: Vec<Vec<u8>>,
}

// POR: conservative — branch labels are arbitrary table indices with no
// commutation structure, so the default never-independent oracle stands.
impl gem::lang::System for TableSystem {
    type State = Vec<u8>;
    type Action = u8;
    type Checkpoint = ();

    fn initial(&self) -> Vec<u8> {
        Vec::new()
    }

    fn enabled(&self, state: &Vec<u8>) -> Vec<u8> {
        let depth = state.len();
        let Some(row) = self.fanout.get(depth) else {
            return Vec::new();
        };
        let mix = state.iter().fold(depth, |acc, &b| {
            acc.wrapping_mul(131).wrapping_add(b as usize + 1)
        });
        (0..row[mix % row.len()]).collect()
    }

    fn apply(&self, state: &mut Vec<u8>, action: &u8) {
        state.push(*action);
    }

    /// Every leaf counts as a completed run: `TableSystem` models a pure
    /// scheduling tree, not a process program, so there is no deadlock
    /// distinction to draw.
    fn is_complete(&self, _state: &Vec<u8>) -> bool {
        true
    }
}

/// Strategy: tables up to 5 levels deep with fanout ≤ 3, so the largest
/// tree has ≤ 3⁵ = 243 runs — big enough to split across workers, small
/// enough to sweep many cases.
fn table_system_strategy() -> impl Strategy<Value = TableSystem> {
    proptest::collection::vec(proptest::collection::vec(0u8..4, 1..4), 1..6)
        .prop_map(|fanout| TableSystem { fanout })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random branching-table systems, the parallel explorer is
    /// observationally identical to serial DFS: the same run sequence
    /// and the same `ExploreStats` (runs, steps, depth high-water,
    /// truncation) at every worker count and split depth.
    #[test]
    fn par_explore_matches_serial_on_random_trees(
        sys in table_system_strategy(),
        jobs in 2usize..6,
        split_depth in 0usize..5,
    ) {
        use gem::lang::Explorer;
        let explorer = Explorer::default();
        let mut serial_runs = Vec::new();
        let serial = explorer.for_each_run(&sys, |_, path| {
            serial_runs.push(path.to_vec());
            ControlFlow::Continue(())
        });
        let mut par_runs = Vec::new();
        let par = Explorer { jobs, split_depth, ..explorer }.par_for_each_run(
            &sys,
            |_, path| {
                par_runs.push(path.to_vec());
                ControlFlow::Continue(())
            },
        );
        prop_assert_eq!(serial, par, "stats diverge at jobs={} split={}", jobs, split_depth);
        prop_assert_eq!(serial_runs, par_runs);
    }

    /// The same differential check under random run/step/depth budgets:
    /// the counts and the truncation verdict (or its absence) must agree
    /// exactly, however the budget lands relative to the split frontier.
    #[test]
    fn par_explore_truncation_agrees_on_random_trees(
        sys in table_system_strategy(),
        jobs in 2usize..6,
        split_depth in 0usize..5,
        max_runs in prop_oneof![Just(usize::MAX), 1usize..40],
        max_steps in prop_oneof![Just(usize::MAX), 1usize..120],
        max_depth in prop_oneof![Just(usize::MAX), 0usize..6],
    ) {
        use gem::lang::Explorer;
        let explorer = Explorer {
            max_runs,
            max_steps,
            max_depth,
            ..Explorer::default()
        };
        let mut serial_runs = Vec::new();
        let serial = explorer.for_each_run(&sys, |_, path| {
            serial_runs.push(path.to_vec());
            ControlFlow::Continue(())
        });
        let mut par_runs = Vec::new();
        let par = Explorer { jobs, split_depth, ..explorer }.par_for_each_run(
            &sys,
            |_, path| {
                par_runs.push(path.to_vec());
                ControlFlow::Continue(())
            },
        );
        prop_assert_eq!(
            serial.truncation, par.truncation,
            "truncation verdict diverges at jobs={} split={}", jobs, split_depth
        );
        prop_assert_eq!(serial, par);
        prop_assert_eq!(serial_runs, par_runs);
    }

    /// Worker probes fan into the caller's sink and are committed on the
    /// caller thread, so counter totals — `explore.runs`, `explore.steps`
    /// — and the whole stats report outside the per-worker attribution
    /// section match serial byte for byte; the attribution itself sums
    /// back to the serial totals.
    #[test]
    fn par_explore_probe_totals_match_serial(
        sys in table_system_strategy(),
        jobs in 2usize..6,
        split_depth in 0usize..5,
        max_steps in prop_oneof![Just(usize::MAX), 1usize..120],
    ) {
        use gem::lang::Explorer;
        use gem::obs::StatsProbe;
        let explorer = Explorer { max_steps, ..Explorer::default() };
        let serial_probe = StatsProbe::new();
        let serial =
            explorer.for_each_run_probed(&sys, &serial_probe, |_, _| ControlFlow::Continue(()));
        let par_probe = StatsProbe::new();
        let par = Explorer { jobs, split_depth, ..explorer }.par_for_each_run_probed(
            &sys,
            &par_probe,
            |_, _| ControlFlow::Continue(()),
        );
        prop_assert_eq!(serial_probe.counter("explore.runs"), serial.runs as u64);
        prop_assert_eq!(serial_probe.counter("explore.steps"), serial.steps as u64);
        prop_assert_eq!(
            par_probe.counter("explore.runs"),
            serial_probe.counter("explore.runs")
        );
        prop_assert_eq!(
            par_probe.counter("explore.steps"),
            serial_probe.counter("explore.steps")
        );
        let mut par_report = par_probe.report();
        // Attribution sum identities hold on every exhaustive sweep that
        // dispatched work items (a frontier covering the whole tree emits
        // no worker keys; a truncated sweep discards uncommitted worker
        // steps, so the identities only bind when nothing was cut short).
        let worker_sum = |report: &gem::obs::Report, suffix: &str| -> u64 {
            report
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        if par.truncation.is_none()
            && par_report.counters.keys().any(|k| k.starts_with("worker."))
        {
            prop_assert_eq!(worker_sum(&par_report, ".leaves"), par.runs as u64);
            prop_assert_eq!(
                par_report.counters.get("explore.frontier.steps").copied().unwrap_or(0)
                    + worker_sum(&par_report, ".steps"),
                par.steps as u64
            );
        }
        // Outside the jobs-dependent attribution keys the reports are
        // byte-identical.
        par_report
            .counters
            .retain(|k, _| !k.starts_with("worker.") && !k.starts_with("explore.frontier."));
        par_report.hists.retain(|k, _| !k.starts_with("worker."));
        par_report.timers.retain(|k, _| !k.starts_with("worker."));
        prop_assert_eq!(par_report.to_json(), serial_probe.report().to_json());
    }
}

/// Sanity check of a substrate's independence oracle at one reachable
/// state: every pair of enabled actions the oracle claims independent
/// must actually commute there — symmetrically, without disabling each
/// other, reaching observationally equal states (`enabled`,
/// `is_complete`) whose computations share a canonical key. This is the
/// exact contract `Explorer::reduce` relies on for soundness.
fn check_oracle_diamond<S: gem::lang::System>(
    sys: &S,
    picks: &[usize],
    extract: impl Fn(&S::State) -> gem::core::Computation,
) -> Result<(), TestCaseError> {
    use gem::verify::canonical_key;
    let mut state = sys.initial();
    for &pick in picks {
        let enabled = sys.enabled(&state);
        if enabled.is_empty() {
            break;
        }
        let action = enabled[pick % enabled.len()].clone();
        sys.apply(&mut state, &action);
    }
    let enabled = sys.enabled(&state);
    for a in &enabled {
        for b in &enabled {
            if a == b || !sys.independent(&state, a, b) {
                continue;
            }
            prop_assert!(
                sys.independent(&state, b, a),
                "oracle asymmetric on {a:?} / {b:?}"
            );
            let mut ab = state.clone();
            sys.apply(&mut ab, a);
            prop_assert!(
                sys.enabled(&ab).contains(b),
                "{a:?} disables supposedly independent {b:?}"
            );
            sys.apply(&mut ab, b);
            let mut ba = state.clone();
            sys.apply(&mut ba, b);
            prop_assert!(
                sys.enabled(&ba).contains(a),
                "{b:?} disables supposedly independent {a:?}"
            );
            sys.apply(&mut ba, a);
            prop_assert_eq!(
                sys.enabled(&ab),
                sys.enabled(&ba),
                "enabled sets diverge after {:?}·{:?} vs {:?}·{:?}",
                a,
                b,
                b,
                a
            );
            prop_assert_eq!(sys.is_complete(&ab), sys.is_complete(&ba));
            prop_assert_eq!(
                canonical_key(&extract(&ab)),
                canonical_key(&extract(&ba)),
                "canonical keys diverge after {:?}·{:?} vs {:?}·{:?}",
                a,
                b,
                b,
                a
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monitor oracle diamond property on the readers/writers program.
    #[test]
    fn monitor_independence_oracle_commutes(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        use gem::lang::monitor::readers_writers_monitor;
        use gem::problems::readers_writers::rw_program;
        let sys = rw_program(readers_writers_monitor(), 1, 2, false);
        check_oracle_diamond(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    /// Monitor oracle diamond property on the bounded buffer.
    #[test]
    fn monitor_bounded_independence_oracle_commutes(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        let sys = gem::problems::bounded::monitor_solution(&[1, 2, 3], 2);
        check_oracle_diamond(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    /// CSP oracle diamond property on the bounded buffer.
    #[test]
    fn csp_independence_oracle_commutes(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        let sys = gem::problems::bounded::csp_solution(&[1, 2, 3], 2);
        check_oracle_diamond(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    /// ADA oracle diamond property on the bounded buffer.
    #[test]
    fn ada_independence_oracle_commutes(
        picks in proptest::collection::vec(0usize..64, 0..40),
    ) {
        let sys = gem::problems::bounded::ada_solution(&[1, 2, 3], 2);
        check_oracle_diamond(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }
}

/// Builds a small monitor program from raw opcode streams: entries over
/// two monitor variables and two conditions (assignments, signals,
/// waits, guarded branches), processes mixing entry calls, local events,
/// and shared-variable traffic. This is exactly the mix the per-entry
/// footprint oracle must judge — entries touching one variable against
/// script steps touching another, with Hoare signal chains able to run
/// parked continuations of *other* entries within one action.
fn random_monitor_system(
    hoare: bool,
    entry_ops: &[Vec<u8>],
    script_ops: &[Vec<u8>],
) -> gem::lang::monitor::MonitorSystem {
    use gem::lang::monitor::{
        MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, SignalSemantics, Stmt,
    };
    use gem::lang::Expr;
    let mvar = |op: u8| {
        if (op / 4).is_multiple_of(2) {
            "m0"
        } else {
            "m1"
        }
    };
    let cond = |op: u8| {
        if (op / 8).is_multiple_of(2) {
            "c0"
        } else {
            "c1"
        }
    };
    let svar = |op: u8| {
        if (op / 4).is_multiple_of(2) {
            "s0"
        } else {
            "s1"
        }
    };
    let mut def = MonitorDef::new("Rand")
        .var("m0", 0i64)
        .var("m1", 0i64)
        .condition("c0")
        .condition("c1");
    for (i, ops) in entry_ops.iter().enumerate() {
        let body = ops
            .iter()
            .map(|&op| match op % 4 {
                0 => Stmt::assign(mvar(op), Expr::var(mvar(op)).add(Expr::int(1))),
                1 => Stmt::signal(cond(op)),
                2 => Stmt::if_then(
                    Expr::var(mvar(op)).lt(Expr::int(2)),
                    vec![Stmt::assign(mvar(op), Expr::int(0))],
                ),
                // Waits are rare by construction (one opcode in four) so
                // most sampled prefixes stay live.
                _ => Stmt::wait(cond(op)),
            })
            .collect();
        def = def.entry(format!("E{i}"), &[], body);
    }
    let n_entries = entry_ops.len();
    let mut program = MonitorProgram::new(def)
        .with_semantics(if hoare {
            SignalSemantics::Hoare
        } else {
            SignalSemantics::Mesa
        })
        .shared_var("s0", 0i64)
        .shared_var("s1", 0i64)
        .user_class("Tick", &[]);
    for (p, ops) in script_ops.iter().enumerate() {
        let script = ops
            .iter()
            .map(|&op| match op % 4 {
                0 => ScriptStep::Call {
                    entry: format!("E{}", (op as usize / 4) % n_entries),
                    args: vec![],
                },
                1 => ScriptStep::Event {
                    class: "Tick".into(),
                    params: vec![],
                },
                2 => ScriptStep::ReadShared {
                    var: svar(op).into(),
                },
                _ => ScriptStep::WriteShared {
                    var: svar(op).into(),
                    value: Expr::int(i64::from(op)),
                },
            })
            .collect();
        program = program.process(ProcessDef::new(format!("p{p}"), script));
    }
    MonitorSystem::new(program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The strengthened per-entry footprint oracle satisfies the
    /// commute-diamond property on *randomized* monitor programs, under
    /// both signal semantics. Every pair of enabled actions the oracle
    /// calls independent at any state along a random schedule must
    /// commute to the same canonical computation — the exact soundness
    /// contract sleep-set POR relies on.
    #[test]
    fn random_monitor_independence_oracle_commutes(
        hoare in (0u8..2).prop_map(|b| b == 1),
        entry_ops in proptest::collection::vec(
            proptest::collection::vec(0u8..32, 1..5), 1..4),
        script_ops in proptest::collection::vec(
            proptest::collection::vec(0u8..32, 1..6), 2..4),
        picks in proptest::collection::vec(0usize..64, 0..30),
    ) {
        let sys = random_monitor_system(hoare, &entry_ops, &script_ops);
        check_oracle_diamond(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Checking a safety formula over all linearizations agrees with a
    /// brute-force check over all histories for ◻(immediate) formulas.
    #[test]
    fn henceforth_agrees_with_history_enumeration(c in computation_strategy(3, 7)) {
        use gem::logic::{check, holds_on_history, Strategy};
        if c.event_count() < 2 {
            return Ok(());
        }
        let e0 = EventId::from_raw(0);
        let e1 = EventId::from_raw(1);
        let imm = Formula::occurred(e1).implies(Formula::occurred(e0));
        let via_sequences = check(&imm.clone().henceforth(), &c, Strategy::Linearizations { limit: 100_000 })
            .unwrap()
            .holds;
        let mut via_histories = true;
        for_each_history(&c, 100_000, |h| {
            if !holds_on_history(&imm, &c, h).unwrap() {
                via_histories = false;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        prop_assert_eq!(via_sequences, via_histories);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Knuth's weighted-backtrack estimator is unbiased on the real run
    /// trees: on fully-enumerable bounded-buffer instances every
    /// `Explorer::sample_run` probe must (a) replay exactly — its
    /// `tree_product` is the product of the enabled-action counts along
    /// its own path and the path is a maximal run — and (b) feed a
    /// `KnuthEstimator` whose deterministic seed-sweep mean lands within
    /// 2× of the exact run count from the exhaustive sweep. The seeds
    /// are fixed, so the statistical bound is reproducible, not flaky.
    #[test]
    fn knuth_probe_unbiased_on_enumerable_trees(
        items in 1usize..=3,
        cap in 1usize..=2,
    ) {
        use gem::lang::{Explorer, System};
        use gem::obs::KnuthEstimator;
        let values = [1i64, 2, 3];
        let sys = gem::problems::bounded::monitor_solution(&values[..items], cap);
        let explorer = Explorer::default();
        let mut exact = 0usize;
        explorer.for_each_run(&sys, |_, _| {
            exact += 1;
            ControlFlow::Continue(())
        });
        prop_assert!(exact > 0);

        let mut est = KnuthEstimator::new();
        for seed in 0..256u64 {
            let sample = explorer.sample_run(&sys, seed);
            prop_assert!(!sample.depth_limited, "tiny instance hit the depth cap");

            // Replay: the recorded product is exactly the branching
            // product along the sampled path, every action was enabled
            // when taken, and the walk stopped only at a terminal state.
            let mut state = sys.initial();
            let mut product = 1.0f64;
            for action in &sample.path {
                let enabled = sys.enabled(&state);
                prop_assert!(
                    enabled.iter().any(|a| format!("{a:?}") == format!("{action:?}")),
                    "sampled action {action:?} not enabled"
                );
                product *= enabled.len() as f64;
                sys.apply(&mut state, action);
            }
            prop_assert!(sys.enabled(&state).is_empty(), "sampled run not maximal");
            prop_assert!((product - sample.tree_product).abs() < 1e-9);

            est.record(sample.tree_product);
        }
        prop_assert_eq!(est.samples(), 256);
        let mean = est.estimate().expect("samples recorded");
        let exact = exact as f64;
        prop_assert!(
            mean >= exact / 2.0 && mean <= exact * 2.0,
            "Knuth estimate {} vs exact {} run(s)", mean, exact
        );
    }
}
