//! Soundness of [`gem::logic::simplify`]: on random formulas and random
//! computations, the simplified formula evaluates identically to the
//! original — on the complete computation, on every history, and over
//! linearization sequences.

use std::ops::ControlFlow;

use proptest::prelude::*;

use gem::core::{
    for_each_history, Computation, ComputationBuilder, EventId, HistorySequence, Structure,
};
use gem::logic::{formula_size, holds_on_history, holds_on_sequence, simplify, EventSel, Formula};

fn small_computation() -> Computation {
    let mut s = Structure::new();
    let a = s.add_class("A", &[]).unwrap();
    let b = s.add_class("B", &[]).unwrap();
    let p = s.add_element("P", &[a, b]).unwrap();
    let q = s.add_element("Q", &[a, b]).unwrap();
    let mut builder = ComputationBuilder::new(s);
    let e0 = builder.add_event(p, a, vec![]).unwrap();
    let e1 = builder.add_event(p, b, vec![]).unwrap();
    let e2 = builder.add_event(q, a, vec![]).unwrap();
    builder.enable(e0, e2).unwrap();
    let _ = e1;
    builder.seal().unwrap()
}

/// Random formula over a handful of atoms on the fixed computation.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::occurred(EventId::from_raw(0))),
        Just(Formula::occurred(EventId::from_raw(1))),
        Just(Formula::is_new(EventId::from_raw(2))),
        Just(Formula::potential(EventId::from_raw(2))),
        Just(Formula::enables(EventId::from_raw(0), EventId::from_raw(2))),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            inner.clone().prop_map(|f| f.henceforth()),
            inner.clone().prop_map(|f| f.eventually()),
            inner
                .clone()
                .prop_map(|f| Formula::forall("x", EventSel::any(), f)),
            inner
                .clone()
                .prop_map(|f| Formula::exists("x", EventSel::any(), f)),
            inner
                .clone()
                .prop_map(|f| Formula::at_most_one("x", EventSel::any(), f)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplify_is_sound(f in formula_strategy()) {
        let c = small_computation();
        let g = simplify(&f);
        prop_assert!(formula_size(&g) <= formula_size(&f), "never grows");
        // Agreement on every history (covers immediate semantics) — note
        // ◻/◇ on a singleton sequence degenerate consistently for both.
        let mut ok = true;
        for_each_history(&c, 10_000, |h| {
            let lhs = holds_on_history(&f, &c, h);
            let rhs = holds_on_history(&g, &c, h);
            // Free variables never occur (quantifiers bind "x" wherever
            // used), so evaluation cannot error.
            if lhs.unwrap() != rhs.unwrap() {
                ok = false;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        prop_assert!(ok, "history disagreement:\n  {f:?}\n  {g:?}");
        // Agreement over full linearization sequences (temporal
        // semantics).
        let mut ok = true;
        gem::core::for_each_linearization(&c, 100, |order| {
            let seq = HistorySequence::from_linearization(&c, order);
            let lhs = holds_on_sequence(&f, &c, seq.histories()).unwrap();
            let rhs = holds_on_sequence(&g, &c, seq.histories()).unwrap();
            if lhs != rhs {
                ok = false;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        prop_assert!(ok, "sequence disagreement:\n  {f:?}\n  {g:?}");
    }

    #[test]
    fn simplify_is_idempotent(f in formula_strategy()) {
        let g = simplify(&f);
        prop_assert_eq!(simplify(&g), g);
    }
}
