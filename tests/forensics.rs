//! Failure forensics end-to-end (ISSUE 4): counterexample artifact
//! directories, `gem replay` reproduction, formula blame, the crash-safe
//! flight recorder, and the `gem bench-diff` regression gate.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gem::lang::monitor::readers_writers_monitor;
use gem::obs::json::{parse, JsonValue};
use gem::obs::{clear_crash_sink, install_crash_sink, RecorderProbe};
use gem::problems::readers_writers::{rw_correspondence, rw_program, rw_spec, RwVariant};
use gem::verify::{verify_system, VerifyOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gem-forensics-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn runv(args: &[&str]) -> Result<String, gem_cli::CliError> {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    gem_cli::run(&owned)
}

fn read_json(path: &Path) -> JsonValue {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// The tentpole differential: a failing `gem verify --artifacts` produces
/// a self-contained directory, and `gem replay` on that directory alone
/// reproduces the identical single-run `VerifyOutcome`.
#[test]
fn failing_verify_writes_artifacts_and_replay_reproduces() {
    let dir = temp_dir("replay");
    let dir_s = dir.to_str().unwrap();
    let out = runv(&[
        "verify",
        "rw",
        "readers=1",
        "writers=2",
        "variant=writers",
        "--artifacts",
        dir_s,
        "--heartbeat",
        "0",
    ])
    .unwrap();
    assert!(out.contains("FAILS"), "{out}");
    assert!(out.contains("artifacts:"), "{out}");

    for name in [
        "meta.json",
        "schedule.json",
        "computation.json",
        "blame.json",
        "counterexample.dot",
        "counterexample_slice.dot",
        "outcome.json",
    ] {
        assert!(dir.join(name).exists(), "missing artifact file {name}");
    }

    // meta.json carries everything replay needs to rebuild the instance.
    let meta = read_json(&dir.join("meta.json"));
    assert_eq!(meta.get("problem").and_then(JsonValue::as_str), Some("rw"));
    assert_eq!(
        meta.get("kind").and_then(JsonValue::as_str),
        Some("failure")
    );

    // blame.json names the violated restriction and concrete witnesses.
    let blame = read_json(&dir.join("blame.json"));
    let restrictions = blame
        .get("restrictions")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(restrictions.len(), 1, "one failed restriction");
    assert_eq!(
        restrictions[0].get("name").and_then(JsonValue::as_str),
        Some("writers-priority")
    );
    let frames = restrictions[0]
        .get("frames")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert!(!frames.is_empty(), "blame has a falsification path");
    let witnesses: Vec<&JsonValue> = frames
        .iter()
        .flat_map(|f| {
            f.get("witnesses")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
        })
        .collect();
    assert!(!witnesses.is_empty(), "some frame carries witness events");

    // Every witness label is highlighted in the dot rendering.
    let dot = std::fs::read_to_string(dir.join("counterexample.dot")).unwrap();
    for w in &witnesses {
        let label = w.get("label").and_then(JsonValue::as_str).unwrap();
        assert!(dot.contains(label), "witness {label} missing from dot");
    }
    assert!(dot.contains("fillcolor"), "blamed events are highlighted");

    // The schedule replays to the identical outcome.
    let replayed = runv(&["replay", dir_s, "--heartbeat", "0"]).unwrap();
    assert!(replayed.contains("REPRODUCED"), "{replayed}");
    assert!(replayed.contains("writers-priority"), "{replayed}");

    std::fs::remove_dir_all(&dir).ok();
}

/// A tampered schedule must make `gem replay` fail loudly, not silently
/// check a different run.
#[test]
fn replay_diverges_on_tampered_schedule() {
    let dir = temp_dir("tamper");
    let dir_s = dir.to_str().unwrap();
    runv(&[
        "verify",
        "rw",
        "readers=1",
        "writers=2",
        "variant=writers",
        "--artifacts",
        dir_s,
        "--heartbeat",
        "0",
    ])
    .unwrap();
    let path = dir.join("schedule.json");
    let schedule = std::fs::read_to_string(&path).unwrap();
    // Corrupt the recorded Debug text of the first action.
    let tampered = schedule.replacen("\"action\": \"", "\"action\": \"XX", 1);
    assert_ne!(schedule, tampered);
    std::fs::write(&path, tampered).unwrap();
    let err = runv(&["replay", dir_s, "--heartbeat", "0"]).unwrap_err();
    assert!(err.to_string().contains("replay step 0"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Golden rendering of the readers/writers counterexample: the highlight
/// and causal-slice dot output is deterministic, so it is compared
/// byte-for-byte against checked-in files. Regenerate with
/// `gem verify rw readers=1 writers=2 variant=writers --artifacts <dir>`.
#[test]
fn golden_counterexample_dot() {
    let dir = temp_dir("golden");
    let dir_s = dir.to_str().unwrap();
    runv(&[
        "verify",
        "rw",
        "readers=1",
        "writers=2",
        "variant=writers",
        "--artifacts",
        dir_s,
        "--heartbeat",
        "0",
    ])
    .unwrap();
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (generated, golden) in [
        ("counterexample.dot", "rw_counterexample.dot"),
        ("counterexample_slice.dot", "rw_counterexample_slice.dot"),
    ] {
        let got = std::fs::read_to_string(dir.join(generated)).unwrap();
        let want = std::fs::read_to_string(golden_dir.join(golden)).unwrap();
        assert_eq!(got, want, "{generated} drifted from tests/golden/{golden}");
    }
    // The slice really is a restriction: fewer nodes than the full view.
    let full = std::fs::read_to_string(dir.join("counterexample.dot")).unwrap();
    let slice = std::fs::read_to_string(dir.join("counterexample_slice.dot")).unwrap();
    assert!(slice.contains("causal slice"));
    assert!(slice.lines().count() < full.lines().count());
    std::fs::remove_dir_all(&dir).ok();
}

/// A deadlocked sweep (no restriction failure) still produces an
/// artifact, marked as a deadlock, whose replay reproduces the deadlock.
#[test]
fn deadlock_artifact_and_replay() {
    let dir = temp_dir("deadlock");
    let dir_s = dir.to_str().unwrap();
    let out = runv(&[
        "verify",
        "philosophers",
        "n=2",
        "order=naive",
        "--artifacts",
        dir_s,
        "--heartbeat",
        "0",
    ])
    .unwrap();
    assert!(out.contains("FAILS"), "{out}");
    let meta = read_json(&dir.join("meta.json"));
    assert_eq!(
        meta.get("kind").and_then(JsonValue::as_str),
        Some("deadlock")
    );
    let outcome = read_json(&dir.join("outcome.json"));
    let replay = outcome.get("replay").unwrap();
    assert_eq!(replay.get("deadlocks").and_then(JsonValue::as_u64), Some(1));
    let replayed = runv(&["replay", dir_s, "--heartbeat", "0"]).unwrap();
    assert!(replayed.contains("REPRODUCED"), "{replayed}");
    std::fs::remove_dir_all(&dir).ok();
}

/// An induced panic mid-sweep leaves a crash artifact holding the last
/// probe events per thread and the live span stacks.
#[test]
fn panic_mid_sweep_dumps_flight_recorder() {
    let dir = temp_dir("crash");
    let crash = dir.join("crash.json");
    let recorder = Arc::new(RecorderProbe::new(64));
    install_crash_sink(recorder.clone(), crash.clone());

    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let runs = std::cell::Cell::new(0u32);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        verify_system(
            &sys,
            &spec,
            &corr,
            |state| {
                runs.set(runs.get() + 1);
                if runs.get() > 2 {
                    panic!("induced mid-sweep failure");
                }
                sys.computation(state).expect("acyclic")
            },
            &VerifyOptions {
                probe: recorder.clone(),
                // The induced panic lives in `extract`, which the
                // incremental checker would legitimately skip on clean
                // leaves — this test needs every run to reach it.
                incr_check: gem::verify::IncrCheck::Off,
                ..VerifyOptions::default()
            },
        )
    }));
    clear_crash_sink();
    assert!(result.is_err(), "the sweep must have panicked");

    let dump = read_json(&crash);
    assert_eq!(
        dump.get("kind").and_then(JsonValue::as_str),
        Some("flight_recorder")
    );
    let message = dump
        .get("panic")
        .and_then(|p| p.get("message"))
        .and_then(JsonValue::as_str)
        .unwrap();
    assert!(message.contains("induced mid-sweep failure"), "{message}");
    let threads = dump.get("threads").and_then(JsonValue::as_arr).unwrap();
    assert!(!threads.is_empty(), "at least one thread ring dumped");
    let events = threads[0]
        .get("events")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert!(!events.is_empty(), "ring holds probe events");
    // The verify span was still open when the panic hit.
    let stacks: Vec<&str> = threads
        .iter()
        .flat_map(|t| {
            t.get("span_stack")
                .and_then(JsonValue::as_arr)
                .unwrap_or(&[])
        })
        .filter_map(JsonValue::as_str)
        .collect();
    assert!(
        stacks.contains(&"verify"),
        "span stack {stacks:?} should contain the open verify span"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `gem bench-diff` prints a delta table, passes within the threshold,
/// and errors (nonzero exit in the binary) on an injected regression.
#[test]
fn bench_diff_gates_regressions() {
    let dir = temp_dir("benchdiff");
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(
        &old,
        r#"{"timers": {"g/fast": {"mean_ns": 100}, "g/slow": {"mean_ns": 1000}}}"#,
    )
    .unwrap();
    std::fs::write(
        &new,
        r#"{"timers": {"g/fast": {"mean_ns": 105}, "g/slow": {"mean_ns": 2000}}}"#,
    )
    .unwrap();
    let old_s = old.to_str().unwrap();
    let new_s = new.to_str().unwrap();

    // +100% on g/slow trips the default +25% gate.
    let err = runv(&["bench-diff", old_s, new_s, "--heartbeat", "0"]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("REGRESSION"), "{msg}");
    assert!(msg.contains("g/slow"), "{msg}");
    assert!(!msg.contains("g/fast: "), "+5% is within threshold: {msg}");

    // A generous threshold lets the same pair pass.
    let ok = runv(&[
        "bench-diff",
        old_s,
        new_s,
        "threshold=150",
        "--heartbeat",
        "0",
    ])
    .unwrap();
    assert!(ok.contains("no regression"), "{ok}");

    // A per-metric `limit:` override tightens the gate for one series
    // below the global threshold: +5% on g/fast now trips while g/slow
    // rides the generous global allowance.
    let err = runv(&[
        "bench-diff",
        old_s,
        new_s,
        "threshold=150",
        "limit:g/fast=2",
        "--heartbeat",
        "0",
    ])
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("g/fast"), "{msg}");
    assert!(msg.contains("limit +2%"), "{msg}");
    assert!(!msg.contains("g/slow: "), "g/slow within global: {msg}");

    // The committed BENCH baseline compares clean against itself.
    let bench = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_explore.json");
    let bench_s = bench.to_str().unwrap();
    let ok = runv(&["bench-diff", bench_s, bench_s, "--heartbeat", "0"]).unwrap();
    assert!(ok.contains("no regression"), "{ok}");

    std::fs::remove_dir_all(&dir).ok();
}

/// TraceProbe lines carry a thread ordinal, and the lines partition by
/// it: every event belongs to exactly one thread's stream.
#[test]
fn trace_lines_partition_by_thread_id() {
    let dir = temp_dir("tid");
    let path = dir.join("trace.jsonl");
    let path_s = path.to_str().unwrap().to_owned();
    runv(&[
        "explore",
        "rw",
        "readers=1",
        "writers=1",
        "--jobs",
        "2",
        "--trace",
        &path_s,
        "--heartbeat",
        "0",
    ])
    .unwrap();
    let trace = std::fs::read_to_string(&path).unwrap();
    let mut tids = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for line in trace.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let tid = v
            .get("tid")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("line without tid: {line}"));
        tids.insert(tid);
        lines += 1;
    }
    assert!(lines > 0, "trace captured events");
    assert!(!tids.is_empty());
    // Partition check: summing per-tid line counts reproduces the total.
    let per_tid: usize = tids
        .iter()
        .map(|t| {
            trace
                .lines()
                .filter(|l| parse(l).unwrap().get("tid").and_then(JsonValue::as_u64) == Some(*t))
                .count()
        })
        .sum();
    assert_eq!(per_tid, lines);
    std::fs::remove_dir_all(&dir).ok();
}
