//! Differential harness: the parallel explorer must be observationally
//! identical to the serial DFS oracle on every substrate.
//!
//! For Monitor, CSP, and ADA systems — the bounded buffer and
//! readers/writers instances — the parallel explorer is checked to yield
//! the exact multiset (in fact, the exact sequence) of maximal runs as
//! `Explorer::for_each_run`, with equal `ExploreStats`, across
//! `jobs ∈ {1, 2, 4}` (plus `GEM_TEST_JOBS`, which CI sets to exercise a
//! wider pool) and split depths `{0, 1, 3}`, including under
//! `max_runs`/`max_steps`/`max_depth` truncation. Verification outcomes —
//! first failure, counterexample schedules, witnesses — are compared as
//! whole values.

use std::ops::ControlFlow;

use gem::lang::monitor::readers_writers_monitor;
use gem::lang::{find_deadlock, ExploreStats, Explorer, System};
use gem::problems::bounded;
use gem::problems::readers_writers::{
    rw_correspondence, rw_program, rw_rounds_program, rw_spec, RwVariant,
};
use gem::spec::Specification;
use gem::verify::{verify_system, Correspondence, VerifyOptions};

/// Worker counts to sweep: the satellite set {1, 2, 4} plus whatever CI
/// injects through `GEM_TEST_JOBS`.
fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1, 2, 4];
    if let Ok(v) = std::env::var("GEM_TEST_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if !jobs.contains(&n) {
                jobs.push(n);
            }
        }
    }
    jobs
}

/// True when CI asks the verify sweeps to run with computation-level
/// deduplication (`GEM_TEST_DEDUP=1`). Dedup must never change an
/// outcome, so enabling it across the whole suite is itself a test.
fn dedup_env() -> bool {
    std::env::var("GEM_TEST_DEDUP").is_ok_and(|v| v.trim() == "1")
}

/// True when CI forces sleep-set partial-order reduction across the suite
/// (`GEM_TEST_POR=1`). Serial and parallel exploration must stay
/// observationally identical *with reduction on* too — both sides of
/// every differential here honour the flag, so the whole file doubles as
/// a POR × parallelism equivalence matrix under that leg.
fn por_env() -> bool {
    std::env::var("GEM_TEST_POR").is_ok_and(|v| v.trim() == "1")
}

/// Baseline explorer for the sweeps: default bounds, with reduction
/// switched by `GEM_TEST_POR`.
fn base_explorer() -> Explorer {
    Explorer {
        reduce: por_env(),
        ..Explorer::default()
    }
}

const SPLIT_DEPTHS: [usize; 3] = [0, 1, 3];

/// Serial-vs-parallel differential check on one system: the run sequence
/// (terminal paths, rendered through `Debug` since actions are not `Eq`)
/// and the full `ExploreStats` must match for every jobs × split-depth
/// combination. Returns the serial stats for workload sanity checks.
fn assert_equiv<S>(explorer: Explorer, sys: &S, what: &str) -> ExploreStats
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut serial_runs: Vec<String> = Vec::new();
    let serial = explorer.for_each_run(sys, |_, path| {
        serial_runs.push(format!("{path:?}"));
        ControlFlow::Continue(())
    });
    for jobs in job_counts() {
        for split_depth in SPLIT_DEPTHS {
            let par_explorer = Explorer {
                jobs,
                split_depth,
                ..explorer
            };
            let mut par_runs: Vec<String> = Vec::new();
            let par = par_explorer.par_for_each_run(sys, |_, path| {
                par_runs.push(format!("{path:?}"));
                ControlFlow::Continue(())
            });
            assert_eq!(
                serial, par,
                "{what}: stats diverge at jobs={jobs} split_depth={split_depth}"
            );
            // The committer preserves serial DFS order, so not just the
            // multiset but the sequence must match. Compare sorted too,
            // so a failure distinguishes "different runs" from
            // "reordered runs".
            if serial_runs != par_runs {
                let mut a = serial_runs.clone();
                let mut b = par_runs.clone();
                a.sort();
                b.sort();
                assert_eq!(
                    a, b,
                    "{what}: run *multiset* diverges at jobs={jobs} split_depth={split_depth}"
                );
                panic!(
                    "{what}: run multiset matches but order diverges at \
                     jobs={jobs} split_depth={split_depth}"
                );
            }
        }
    }
    serial
}

/// Exhaustive and truncated sweeps for one system.
fn assert_equiv_with_budgets<S>(sys: &S, what: &str)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let full = assert_equiv(base_explorer(), sys, what);
    // Under GEM_TEST_POR=1 a sweep may legitimately collapse to a single
    // sleep-set representative (the CSP bounded buffer does); the
    // serial-vs-parallel comparison stays meaningful regardless.
    assert!(
        full.runs > 1 || por_env(),
        "{what}: workload too trivial ({full})"
    );

    // Truncation by run budget: an odd cap that bites mid-frontier, the
    // exact budget (which must not truncate), and cap 1.
    for max_runs in [1, full.runs / 2 + 1, full.runs] {
        let stats = assert_equiv(
            Explorer {
                max_runs,
                ..base_explorer()
            },
            sys,
            &format!("{what} [max_runs={max_runs}]"),
        );
        if por_env() && max_runs == full.runs {
            // Documented `Explorer::reduce` corner: an exact run budget
            // may flag a spurious RunLimit if the DFS still has
            // fully-slept nodes to visit after the last representative.
            // Serial/parallel agreement (asserted above) is the real
            // invariant; here only the run count is pinned.
            assert_eq!(stats.runs, full.runs, "{what}: {stats}");
        } else {
            assert_eq!(stats.truncated(), max_runs < full.runs, "{what}: {stats}");
        }
    }

    // Truncation by step budget.
    for max_steps in [3, full.steps / 2 + 1, full.steps] {
        let stats = assert_equiv(
            Explorer {
                max_steps,
                ..base_explorer()
            },
            sys,
            &format!("{what} [max_steps={max_steps}]"),
        );
        assert_eq!(stats.truncated(), max_steps < full.steps, "{what}: {stats}");
    }

    // Truncation by depth: runs are cut while actions remain enabled.
    let depth = full.max_depth_seen;
    for max_depth in [depth / 2, depth.saturating_sub(1)] {
        assert_equiv(
            Explorer {
                max_depth,
                ..base_explorer()
            },
            sys,
            &format!("{what} [max_depth={max_depth}]"),
        );
    }
}

#[test]
fn monitor_readers_writers_equivalence() {
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    assert_equiv_with_budgets(&sys, "monitor rw 1r2w");
}

#[test]
fn monitor_rounds_instance_equivalence() {
    let sys = rw_rounds_program(readers_writers_monitor(), 1, 1, 2);
    assert_equiv_with_budgets(&sys, "monitor rw 1r1w rounds=2");
}

#[test]
fn monitor_bounded_buffer_equivalence() {
    let sys = bounded::monitor_solution(&[1, 2, 3], 2);
    assert_equiv_with_budgets(&sys, "monitor bounded buffer");
}

#[test]
fn csp_bounded_buffer_equivalence() {
    let sys = bounded::csp_solution(&[1, 2, 3], 2);
    assert_equiv_with_budgets(&sys, "csp bounded buffer");
}

#[test]
fn ada_bounded_buffer_equivalence() {
    let sys = bounded::ada_solution(&[1, 2, 3], 2);
    assert_equiv_with_budgets(&sys, "ada bounded buffer");
}

#[test]
fn verify_outcome_identical_on_failing_instance() {
    // The readers-priority monitor violates writers-priority on 1R+2W:
    // the outcome carries real counterexamples whose run indices and
    // failure details must survive parallelisation byte for byte.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome_at = |jobs: usize| {
        verify_system(
            &sys,
            &spec,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                explorer: Explorer {
                    jobs,
                    split_depth: 3,
                    reduce: por_env(),
                    dedup_computations: dedup_env(),
                    ..Explorer::default()
                },
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let serial = outcome_at(1);
    assert!(!serial.ok(), "expected a failing instance: {serial}");
    assert!(!serial.failures.is_empty());
    for jobs in job_counts() {
        let par = outcome_at(jobs);
        assert_eq!(serial, par, "VerifyOutcome diverges at jobs={jobs}");
    }
}

#[test]
fn verify_outcome_identical_on_passing_instance_with_truncation() {
    let sys = rw_program(readers_writers_monitor(), 2, 1, false);
    let spec = rw_spec(3, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome_at = |jobs: usize, max_runs: usize| {
        verify_system(
            &sys,
            &spec,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                explorer: Explorer {
                    jobs,
                    reduce: por_env(),
                    dedup_computations: dedup_env(),
                    ..Explorer::with_max_runs(max_runs)
                },
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let exhaustive = outcome_at(1, usize::MAX);
    for max_runs in [7, exhaustive.runs, usize::MAX] {
        let serial = outcome_at(1, max_runs);
        for jobs in job_counts() {
            assert_eq!(
                serial,
                outcome_at(jobs, max_runs),
                "VerifyOutcome diverges at jobs={jobs} max_runs={max_runs}"
            );
        }
    }
}

/// Computation-dedup differential on one system: the whole
/// [`gem::verify::VerifyOutcome`] — run counts, deadlocks, every failure's
/// index/names/detail, truncation — must be identical with dedup on and
/// off, at every worker count. This is the soundness witness for
/// `Explorer::dedup_computations`: it skips redundant *checking*, never
/// runs.
fn assert_dedup_equiv<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> gem::core::Computation + Copy,
    what: &str,
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let outcome_at = |jobs: usize, dedup: bool| {
        verify_system(
            sys,
            spec,
            corr,
            extract,
            &VerifyOptions {
                explorer: Explorer {
                    jobs,
                    split_depth: 3,
                    reduce: por_env(),
                    dedup_computations: dedup,
                    ..Explorer::default()
                },
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let baseline = outcome_at(1, false);
    for jobs in [1, 4] {
        for dedup in [false, true] {
            assert_eq!(
                baseline,
                outcome_at(jobs, dedup),
                "{what}: VerifyOutcome diverges at jobs={jobs} dedup={dedup}"
            );
        }
    }
}

#[test]
fn dedup_outcome_identical_monitor_bounded() {
    let sys = bounded::monitor_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::monitor_correspondence(&sys, &spec, 2);
    assert_dedup_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "monitor bounded buffer",
    );
}

#[test]
fn dedup_outcome_identical_csp_bounded() {
    let sys = bounded::csp_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::csp_correspondence(&sys, &spec, 2);
    assert_dedup_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "csp bounded buffer",
    );
}

#[test]
fn dedup_outcome_identical_ada_bounded() {
    let sys = bounded::ada_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::ada_correspondence(&sys, &spec, 2);
    assert_dedup_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "ada bounded buffer",
    );
}

#[test]
fn dedup_outcome_identical_on_failing_instance() {
    // A failing sweep is the sharp case: cached verdicts must replay the
    // first failure at the same run index with the same detail string,
    // and the max_failures early exit must fire at the same point.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    assert_dedup_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "monitor rw 1r2w vs writers-priority",
    );
}

/// Removes the deliberately jobs-dependent attribution telemetry from a
/// report: `worker.<k>.*` counters and histograms, the
/// frontier-vs-worker step split, and the undo-depth histogram (the
/// frontier walk clones instead of undoing, so its sample count differs
/// from serial). `explore.step.enabled_width` stays — it is a
/// deterministic, jobs-invariant histogram, so it participates in the
/// byte-comparison; `explore.step.apply_ns` stays too because
/// `without_timings` reduces `_ns` histograms to their (jobs-invariant)
/// sample counts.
fn strip_attribution(report: &mut gem::obs::Report) {
    report
        .counters
        .retain(|k, _| !k.starts_with("worker.") && !k.starts_with("explore.frontier."));
    report
        .hists
        .retain(|k, _| !k.starts_with("worker.") && k != "explore.step.undo_depth");
    report.timers.retain(|k, _| !k.starts_with("worker."));
}

/// Sums one `worker.<k>.<suffix>` counter family across workers.
fn worker_sum(report: &gem::obs::Report, suffix: &str) -> u64 {
    report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("worker.") && k.ends_with(suffix))
        .map(|(_, v)| *v)
        .sum()
}

/// The worker-attribution sum identities on an exhaustive sweep: every
/// leaf is claimed by exactly one worker, and every DFS edge is walked
/// exactly once — by the frontier builder or by one worker.
fn assert_attribution_sums(report: &gem::obs::Report, what: &str) {
    let runs = report.counters["explore.runs"];
    let steps = report.counters["explore.steps"];
    assert_eq!(
        worker_sum(report, ".leaves"),
        runs,
        "{what}: worker leaves must sum to explore.runs"
    );
    let frontier_steps = report
        .counters
        .get("explore.frontier.steps")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        frontier_steps + worker_sum(report, ".steps"),
        steps,
        "{what}: frontier + worker steps must sum to explore.steps"
    );
    assert!(
        report
            .hists
            .keys()
            .any(|k| k.starts_with("worker.") && k.ends_with(".commit_lag_ns")),
        "{what}: commit-lag histograms missing"
    );
}

/// Strips the attribution telemetry and the config line that *should*
/// differ (the report records the worker count it ran with — exactly the
/// parameter the differential varies), then drops measured timings.
fn comparable_json(mut report: gem::obs::Report) -> String {
    strip_attribution(&mut report);
    report.config.remove("jobs");
    report.without_timings().to_json()
}

#[test]
fn cli_stats_json_identical_across_jobs() {
    // The full CLI path: `gem verify rw … --jobs N --stats-json <file>`
    // must print the same verdict and aggregate the same report for
    // every worker count — modulo timing measurements, the config
    // block's record of the worker count, and the per-worker
    // attribution telemetry, which is *about* the worker split and is
    // held to its sum identities instead of byte equality.
    let dir = std::env::temp_dir().join(format!("gem-par-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run_at = |jobs: usize| {
        let path = dir.join(format!("stats-jobs{jobs}.json"));
        let args: Vec<String> = [
            "verify",
            "rw",
            "readers=1",
            "writers=2",
            "--jobs",
            &jobs.to_string(),
            "--stats-json",
            path.to_str().expect("utf-8 temp path"),
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let stdout = gem_cli::run(&args).expect("cli run");
        let json = std::fs::read_to_string(&path).expect("stats file written");
        let report = gem::obs::Report::from_json(&json).expect("parseable report");
        (stdout, report)
    };
    let (serial_out, serial_report) = run_at(1);
    assert!(
        serial_report.counters.contains_key("explore.runs"),
        "report carries explorer counters"
    );
    // Step-cost attribution flows in serial sweeps too.
    for hist in [
        "explore.step.enabled_width",
        "explore.step.apply_ns",
        "explore.step.undo_depth",
    ] {
        assert!(
            serial_report.hists.contains_key(hist),
            "serial report missing {hist} histogram"
        );
    }
    let serial_comparable = comparable_json(serial_report);
    for jobs in job_counts() {
        let (par_out, par_report) = run_at(jobs);
        assert_eq!(serial_out, par_out, "stdout diverges at --jobs {jobs}");
        if jobs > 1 {
            assert_attribution_sums(&par_report, &format!("--jobs {jobs}"));
        }
        assert_eq!(
            serial_comparable,
            comparable_json(par_report),
            "stats report diverges at --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase_profile_aggregation_identical_across_jobs() {
    // Phase attribution must survive parallelisation: a dedup verify
    // probed through a StatsProbe has to aggregate the *same* phase
    // timer sample counts (and all counters/gauges) at every worker
    // count — only the measured nanoseconds may differ. This is the
    // profiler-level analogue of `cli_stats_json_identical_across_jobs`.
    use gem::obs::StatsProbe;
    use std::sync::Arc;
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let report_at = |jobs: usize| {
        let probe = Arc::new(StatsProbe::new());
        let outcome = verify_system(
            &sys,
            &spec,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                probe: probe.clone(),
                explorer: Explorer {
                    jobs,
                    split_depth: 3,
                    reduce: por_env(),
                    dedup_computations: true,
                    ..Explorer::default()
                },
                // Batch-phase aggregation is the subject here; the
                // incremental fast path would skip those timers for
                // clean leaves (its own cross-jobs parity is covered
                // by tests/incr_check_equiv.rs).
                incr_check: gem::verify::IncrCheck::Off,
                ..VerifyOptions::default()
            },
        )
        .expect("projection");
        assert!(outcome.ok(), "{outcome}");
        probe.report()
    };
    let serial = report_at(1);
    for phase in gem::obs::profile::TOP_PHASES {
        if phase == "phase.check_incr" {
            continue; // only recorded when incremental checking is on
        }
        assert!(
            serial.timers.contains_key(phase),
            "serial report missing {phase} timer"
        );
    }
    let serial_stripped = comparable_json(serial);
    for jobs in job_counts() {
        let par = report_at(jobs);
        if jobs > 1 {
            assert_attribution_sums(&par, &format!("profile jobs={jobs}"));
        }
        assert_eq!(
            serial_stripped,
            comparable_json(par),
            "phase aggregation diverges at jobs={jobs}"
        );
    }
}

#[test]
fn deadlock_witness_identical() {
    // Two naive-order philosophers deadlock (both grab their left fork);
    // the witness schedule must be the serial DFS-first one at any job
    // count.
    use gem::problems::philosophers::{philosophers_program, ForkOrder};
    let sys = philosophers_program(2, 1, ForkOrder::Naive);
    let serial = find_deadlock(&sys, &base_explorer());
    let serial_rendered = serial.as_ref().map(|p| format!("{p:?}"));
    for jobs in job_counts() {
        let par = find_deadlock(
            &sys,
            &Explorer {
                jobs,
                split_depth: 3,
                ..base_explorer()
            },
        );
        assert_eq!(
            serial_rendered,
            par.as_ref().map(|p| format!("{p:?}")),
            "deadlock witness diverges at jobs={jobs}"
        );
    }
}
