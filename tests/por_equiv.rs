//! Differential soundness suite for sleep-set partial-order reduction
//! (`Explorer::reduce`).
//!
//! POR deliberately changes *which* and *how many* schedules are explored,
//! so unlike `tests/par_explore_equiv.rs` the comparison is not run-by-run
//! but computation-level, matching the property POR actually promises:
//!
//! * `verify_system` reports the same verdict (pass / fail / deadlock)
//!   with reduction on and off, across `jobs ∈ {1, 4}` and computation
//!   dedup on/off — on Monitor, CSP, and ADA instances, including a
//!   genuinely failing one and a deadlocking one;
//! * the *set* of canonical computations reached (via
//!   [`gem::verify::canonical_key`]) is identical — sleep sets drop
//!   redundant linearizations of a trace, never whole traces;
//! * the counterexample surfaced on a failing instance is
//!   canonical-key-equivalent to the unreduced one;
//! * a proptest: swapping two adjacent actions the oracle claims
//!   independent inside a real schedule preserves enabledness of the
//!   remainder and the final computation's canonical key.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use gem::core::Computation;
use gem::lang::monitor::readers_writers_monitor;
use gem::lang::{find_deadlock, ExploreStats, Explorer, System};
use gem::logic::{EventSel, Formula, Strategy};
use gem::problems::bounded;
use gem::problems::philosophers::{philosophers_program, ForkOrder};
use gem::problems::readers_writers::{rw_correspondence, rw_program, rw_spec, RwVariant};
use gem::spec::Specification;
use gem::verify::{
    canonical_key, eventually_on_all_runs, verify_system, CanonicalKey, Correspondence,
    VerifyOptions,
};

/// Worker counts for the POR differential matrix. Narrower than the
/// par_explore sweep — POR × parallel interaction is about the ordered
/// commit protocol, which two points (serial, contended) already pin down.
const JOBS: [usize; 2] = [1, 4];

/// True when CI forces partial-order reduction across the whole tier-1
/// suite (`GEM_TEST_POR=1`). Mirrors `GEM_TEST_JOBS` / `GEM_TEST_DEDUP`.
/// This suite compares reduce-on against reduce-off directly, so the hook
/// only widens the baseline: under it the "full" sweeps also run reduced,
/// which must be a fixed point (reducing twice changes nothing).
fn por_env() -> bool {
    std::env::var("GEM_TEST_POR").is_ok_and(|v| v.trim() == "1")
}

/// Sweeps every maximal run and collects the canonical key of each sealed
/// computation, plus the exploration stats.
fn computation_keys<S>(
    sys: &S,
    explorer: &Explorer,
    extract: impl Fn(&S::State) -> Computation,
) -> (BTreeSet<CanonicalKey>, ExploreStats)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut keys = BTreeSet::new();
    let stats = explorer.par_for_each_run(sys, |state, _| {
        keys.insert(canonical_key(&extract(state)));
        ControlFlow::Continue(())
    });
    (keys, stats)
}

/// Boils a `VerifyOutcome` down to what POR must preserve. Run counts and
/// failure indices legitimately shrink under reduction, so the comparison
/// is the verdict: did it pass, did it fail, did it deadlock.
fn verdict(outcome: &gem::verify::VerifyOutcome) -> (bool, bool, bool) {
    (
        outcome.ok(),
        !outcome.failures.is_empty(),
        outcome.deadlocks > 0,
    )
}

/// The core differential: on one instance, reduction must preserve the
/// verify verdict (jobs × dedup matrix) and the exact set of canonical
/// computations, while never exploring *more* runs. Returns
/// `(full, reduced)` serial stats so callers can assert the reduction
/// actually bites where it should.
fn assert_por_equiv<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    what: &str,
) -> (ExploreStats, ExploreStats)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let base = Explorer {
        reduce: por_env(),
        ..Explorer::default()
    };
    let (full_keys, full_stats) = computation_keys(sys, &base, extract);
    let mut reduced_stats = full_stats;
    for jobs in JOBS {
        let reduced = Explorer {
            reduce: true,
            jobs,
            split_depth: 3,
            ..Explorer::default()
        };
        let (keys, stats) = computation_keys(sys, &reduced, extract);
        assert_eq!(
            full_keys, keys,
            "{what}: POR changed the set of canonical computations at jobs={jobs}"
        );
        assert!(
            stats.runs <= full_stats.runs,
            "{what}: POR explored more runs ({}) than the full sweep ({}) at jobs={jobs}",
            stats.runs,
            full_stats.runs
        );
        assert_eq!(
            stats.por_runs, stats.runs,
            "{what}: every run under reduce must be counted as a representative"
        );
        if jobs == 1 {
            reduced_stats = stats;
        }
    }

    let outcome_at = |reduce: bool, jobs: usize, dedup: bool| {
        verify_system(
            sys,
            spec,
            corr,
            extract,
            &VerifyOptions {
                explorer: Explorer {
                    reduce,
                    jobs,
                    split_depth: 3,
                    dedup_computations: dedup,
                    ..Explorer::default()
                },
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent")
    };
    let baseline = outcome_at(por_env(), 1, false);
    for jobs in JOBS {
        for dedup in [false, true] {
            let reduced = outcome_at(true, jobs, dedup);
            assert_eq!(
                verdict(&baseline),
                verdict(&reduced),
                "{what}: verdict diverges under POR at jobs={jobs} dedup={dedup}\n\
                 full: {baseline}\nreduced: {reduced}"
            );
        }
    }
    (full_stats, reduced_stats)
}

/// Canonical key of the computation behind the first reported failure:
/// re-enumerates runs with the same explorer (run indices are stable and
/// serial-ordered at any job count) and seals the one `verify_system`
/// pointed at.
fn first_failure_key<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    explorer: Explorer,
) -> Option<CanonicalKey>
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let outcome = verify_system(
        sys,
        spec,
        corr,
        extract,
        &VerifyOptions {
            explorer,
            ..VerifyOptions::default()
        },
    )
    .expect("correspondence consistent");
    let target = outcome.failures.first()?.run;
    let mut run = 0usize;
    let mut key = None;
    explorer.for_each_run(sys, |state, _| {
        if run == target {
            key = Some(canonical_key(&extract(state)));
            return ControlFlow::Break(());
        }
        run += 1;
        ControlFlow::Continue(())
    });
    Some(key.expect("failure index within run count"))
}

#[test]
fn monitor_bounded_buffer_por_equiv() {
    let sys = bounded::monitor_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::monitor_correspondence(&sys, &spec, 2);
    let (full, reduced) = assert_por_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "monitor bounded buffer",
    );
    // Every step of this program is a monitor entry call, and entry
    // traffic serialises on the lock element, so the oracle rightly
    // finds nothing to commute: POR must be an exact no-op here.
    assert_eq!(
        (full.runs, 0),
        (reduced.runs, reduced.sleep_skipped),
        "pure entry-call programs admit no reduction: full={full} reduced={reduced}"
    );
}

#[test]
fn csp_bounded_buffer_por_equiv() {
    let sys = bounded::csp_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::csp_correspondence(&sys, &spec, 2);
    assert_por_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "csp bounded buffer",
    );
}

#[test]
fn ada_bounded_buffer_por_equiv() {
    let sys = bounded::ada_solution(&[1, 2, 3], 2);
    let spec = bounded::bounded_spec(3, 2);
    let corr = bounded::ada_correspondence(&sys, &spec, 2);
    assert_por_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "ada bounded buffer",
    );
}

#[test]
fn monitor_rw_with_data_por_reduces_and_preserves_verdict() {
    // The exact instance the F7 benchmark measures
    // (`rw_verify/mutex_with_data_1r1w`): user-level events and shared
    // `data` accesses interleave with monitor-entry traffic of the other
    // process, and those pairs commute — this is where sleep sets bite.
    let sys = rw_program(readers_writers_monitor(), 1, 1, true);
    let spec = rw_spec(2, true, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, true);
    let (full, reduced) = assert_por_equiv(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).expect("acyclic"),
        "monitor rw 1r1w with data",
    );
    assert!(
        reduced.sleep_skipped > 0,
        "monitor rw 1r1w with data: expected a real reduction, got full={full} reduced={reduced}"
    );
    // Under GEM_TEST_POR=1 the baseline sweep above is itself reduced,
    // so size the reduction against an explicitly unreduced sweep.
    let (unreduced_keys, unreduced) = computation_keys(&sys, &Explorer::default(), |s| {
        sys.computation(s).expect("acyclic")
    });
    let (reduced_keys, _) = computation_keys(
        &sys,
        &Explorer {
            reduce: true,
            ..Explorer::default()
        },
        |s| sys.computation(s).expect("acyclic"),
    );
    assert_eq!(unreduced_keys, reduced_keys);
    assert!(
        reduced.runs < unreduced.runs,
        "monitor rw 1r1w with data: {} reduced run(s) vs {} unreduced",
        reduced.runs,
        unreduced.runs
    );
}

#[test]
fn failing_instance_verdict_and_counterexample_preserved() {
    // The readers-priority monitor violates writers-priority on 1R+2W.
    // POR must still fail, and the counterexample it surfaces must seal
    // to the same canonical computation as some unreduced failure —
    // checked here at the strongest level that holds: first-failure keys.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_por_equiv(&sys, &spec, &corr, extract, "monitor rw 1r2w failing");

    let full_key = first_failure_key(
        &sys,
        &spec,
        &corr,
        extract,
        Explorer {
            reduce: por_env(),
            ..Explorer::default()
        },
    )
    .expect("instance fails");
    for jobs in JOBS {
        let por_key = first_failure_key(
            &sys,
            &spec,
            &corr,
            extract,
            Explorer {
                reduce: true,
                jobs,
                split_depth: 3,
                ..Explorer::default()
            },
        )
        .expect("still fails under POR");
        assert_eq!(
            full_key, por_key,
            "POR counterexample is not canonical-key-equivalent at jobs={jobs}"
        );
    }
}

#[test]
fn deadlock_preserved_under_por() {
    // Two naive-order philosophers deadlock; sleep sets keep at least one
    // linearization per trace, so the deadlock must survive reduction and
    // seal to the same canonical computation.
    let sys = philosophers_program(2, 1, ForkOrder::Naive);
    let key_of = |path: &[_]| {
        let mut state = sys.initial();
        for action in path {
            sys.apply(&mut state, action);
        }
        canonical_key(&sys.computation(&state).expect("acyclic"))
    };
    let full = find_deadlock(
        &sys,
        &Explorer {
            reduce: por_env(),
            ..Explorer::default()
        },
    )
    .expect("naive philosophers deadlock");
    for jobs in JOBS {
        let reduced = find_deadlock(
            &sys,
            &Explorer {
                reduce: true,
                jobs,
                split_depth: 3,
                ..Explorer::default()
            },
        )
        .expect("deadlock must survive POR");
        assert_eq!(
            key_of(&full),
            key_of(&reduced),
            "deadlock witness computation diverges under POR at jobs={jobs}"
        );
    }

    // And the deadlock-free bounded buffer must stay deadlock-free.
    let clean = bounded::monitor_solution(&[1, 2], 2);
    for jobs in JOBS {
        assert!(
            find_deadlock(
                &clean,
                &Explorer {
                    reduce: true,
                    jobs,
                    ..Explorer::default()
                }
            )
            .is_none(),
            "POR invented a deadlock at jobs={jobs}"
        );
    }
}

#[test]
fn liveness_verdict_preserved_under_por() {
    // Two items keep the sweep small: the failing formula below cannot
    // early-exit, so every linearization of every run gets checked.
    let sys = bounded::monitor_solution(&[1, 2], 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    // "Eventually some event occurs" holds on every run; "eventually an
    // event carries the value 999" holds on none. Both verdicts must
    // survive reduction.
    let holds = Formula::exists("x", EventSel::any(), Formula::occurred("x")).eventually();
    let fails = Formula::exists(
        "x",
        EventSel::any().with_param(0, 999i64),
        Formula::occurred("x"),
    )
    .eventually();
    let strategy = Strategy::Linearizations { limit: 1_000 };
    for (formula, expect_ok) in [(&holds, true), (&fails, false)] {
        let base = eventually_on_all_runs(
            &sys,
            formula,
            extract,
            &Explorer {
                reduce: por_env(),
                ..Explorer::default()
            },
            strategy,
        );
        assert_eq!(base.ok(), expect_ok, "baseline liveness verdict");
        for jobs in JOBS {
            let reduced = eventually_on_all_runs(
                &sys,
                formula,
                extract,
                &Explorer {
                    reduce: true,
                    jobs,
                    split_depth: 3,
                    ..Explorer::default()
                },
                strategy,
            );
            assert_eq!(
                base.ok(),
                reduced.ok(),
                "liveness verdict diverges under POR at jobs={jobs}"
            );
            assert!(reduced.runs <= base.runs);
        }
    }
}

/// Replays `picks` as scheduler choices (index mod enabled-count) and
/// returns the states along the way plus the chosen actions.
fn random_run<S: System>(sys: &S, picks: &[usize]) -> (Vec<S::State>, Vec<S::Action>) {
    let mut states = vec![sys.initial()];
    let mut path = Vec::new();
    for &pick in picks {
        let enabled = sys.enabled(states.last().expect("nonempty"));
        if enabled.is_empty() {
            break;
        }
        let action = enabled[pick % enabled.len()].clone();
        let mut next = states.last().expect("nonempty").clone();
        sys.apply(&mut next, &action);
        path.push(action);
        states.push(next);
    }
    (states, path)
}

/// The commutation contract behind sleep sets, checked on one concrete
/// schedule: wherever the oracle claims adjacent actions independent (and
/// the later one was already enabled before the earlier), swapping them
/// must keep the rest of the schedule enabled and seal to a computation
/// with the *same canonical key*.
fn check_adjacent_swaps<S: System>(
    sys: &S,
    picks: &[usize],
    extract: impl Fn(&S::State) -> Computation,
) -> Result<(), TestCaseError> {
    let (states, path) = random_run(sys, picks);
    if path.len() < 2 {
        return Ok(());
    }
    let full_key = canonical_key(&extract(states.last().expect("nonempty")));
    for i in 0..path.len() - 1 {
        let (a, b) = (&path[i], &path[i + 1]);
        if !sys.enabled(&states[i]).contains(b) || !sys.independent(&states[i], a, b) {
            continue;
        }
        let mut state = states[i].clone();
        sys.apply(&mut state, b);
        prop_assert!(
            sys.enabled(&state).contains(a),
            "oracle claimed {a:?} ⫫ {b:?} but {b:?} disables {a:?}"
        );
        sys.apply(&mut state, a);
        for c in &path[i + 2..] {
            prop_assert!(
                sys.enabled(&state).contains(c),
                "swap of {a:?}/{b:?} at position {i} disables later action {c:?}"
            );
            sys.apply(&mut state, c);
        }
        prop_assert_eq!(
            &canonical_key(&extract(&state)),
            &full_key,
            "swapping independent {:?}/{:?} at position {} changed the canonical key",
            a,
            b,
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn monitor_adjacent_independent_swaps_preserve_canonical_key(
        picks in proptest::collection::vec(0usize..64, 1..48),
        readers in 1usize..=2,
        writers in 1usize..=2,
    ) {
        let sys = rw_program(readers_writers_monitor(), readers, writers, false);
        check_adjacent_swaps(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    #[test]
    fn csp_adjacent_independent_swaps_preserve_canonical_key(
        picks in proptest::collection::vec(0usize..64, 1..48),
    ) {
        let sys = bounded::csp_solution(&[1, 2, 3], 2);
        check_adjacent_swaps(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    #[test]
    fn ada_adjacent_independent_swaps_preserve_canonical_key(
        picks in proptest::collection::vec(0usize..64, 1..48),
    ) {
        let sys = bounded::ada_solution(&[1, 2, 3], 2);
        check_adjacent_swaps(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }

    #[test]
    fn monitor_bounded_adjacent_independent_swaps_preserve_canonical_key(
        picks in proptest::collection::vec(0usize..64, 1..48),
    ) {
        let sys = bounded::monitor_solution(&[1, 2, 3], 2);
        check_adjacent_swaps(&sys, &picks, |s| sys.computation(s).expect("acyclic"))?;
    }
}

/// CLI surface: `--por` preserves the verdict line, is rejected with an
/// inline value, records itself in artifact bundles, and `gem replay`
/// flags the schedule as a sleep-set representative.
#[test]
fn cli_por_flag_verdict_artifacts_and_replay() {
    let runv = |args: &[&str]| {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        gem_cli::run(&owned)
    };
    let verdict_line = |out: &str| {
        out.lines()
            .find(|l| l.starts_with("verdict:"))
            .map(str::to_owned)
            .unwrap_or_else(|| panic!("no verdict line in {out:?}"))
    };

    // Passing instance: the verdict is identical, only the sweep shrinks.
    let base = &[
        "verify",
        "rw",
        "readers=1",
        "writers=1",
        "data=true",
        "variant=mutex",
        "--heartbeat",
        "0",
    ];
    let plain = runv(base).expect("plain verify");
    let mut with_por: Vec<&str> = base.to_vec();
    with_por.push("--por");
    let reduced = runv(&with_por).expect("por verify");
    assert_eq!(verdict_line(&plain), verdict_line(&reduced));
    assert!(plain.contains("812 run(s)"), "{plain}");
    assert!(reduced.contains("24 run(s)"), "{reduced}");

    // Flag hygiene: `--por` is a bare switch.
    let e = runv(&["verify", "rw", "--por=yes"]).expect_err("inline value");
    assert!(e.to_string().contains("--por takes no value"), "{e}");

    // A failing sweep under --por records the flag in meta.json, and
    // replay warns that the schedule is a reduced-enumeration witness.
    let dir = std::env::temp_dir().join(format!("gem-por-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dir_s = dir.to_str().expect("utf-8 temp path");
    let out = runv(&[
        "verify",
        "rw",
        "readers=1",
        "writers=2",
        "variant=writers",
        "--por",
        "--artifacts",
        dir_s,
        "--heartbeat",
        "0",
    ])
    .expect("failing verify still returns output");
    assert!(out.contains("FAILS"), "{out}");
    let meta = std::fs::read_to_string(dir.join("meta.json")).expect("meta.json");
    assert!(meta.contains("\"por\": \"true\""), "{meta}");
    let replayed = runv(&["replay", dir_s, "--heartbeat", "0"]).expect("replay");
    assert!(replayed.contains("REPRODUCED"), "{replayed}");
    assert!(replayed.contains("sleep-set representative"), "{replayed}");
    std::fs::remove_dir_all(&dir).ok();
}
