//! Instrumentation integration: verifying the §9 Readers/Writers monitor
//! with a [`gem::obs::StatsProbe`] attached must report the exact run
//! count the verifier saw, nonzero restriction-evaluation counters from
//! the deep layers, and — because exploration is deterministic — a report
//! that is byte-identical across runs once timing fields are zeroed.

use std::sync::Arc;

use gem::lang::monitor::readers_writers_monitor;
use gem::obs::StatsProbe;
use gem::problems::readers_writers::{rw_correspondence, rw_program, rw_spec, RwVariant};
use gem::verify::{verify_system, VerifyOptions};

fn verify_rw_with_probe(probe: Arc<StatsProbe>) -> gem::verify::VerifyOutcome {
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe,
            // This suite pins down the *batch* pipeline's counters
            // (restriction.evals, per-restriction timers, projections);
            // the incremental checker legitimately skips all of that
            // for clean leaves, so keep it out of the way here.
            incr_check: gem::verify::IncrCheck::Off,
            ..VerifyOptions::default()
        },
    )
    .expect("projection")
}

#[test]
fn readers_writers_probe_reports_exact_counts() {
    let probe = Arc::new(StatsProbe::new());
    let outcome = verify_rw_with_probe(probe.clone());
    assert!(outcome.ok(), "{outcome}");
    assert!(outcome.exhaustive());

    // The probe's run counter must agree exactly with the verifier.
    assert_eq!(probe.counter("explore.runs"), outcome.runs as u64);
    assert!(probe.counter("explore.steps") > 0);

    // Deep layers report through the ambient probe: every run checks
    // every restriction of the mutual-exclusion spec at least once.
    let report = probe.report();
    let restriction_evals = probe.counter("restriction.evals");
    assert!(
        restriction_evals >= outcome.runs as u64,
        "expected >= {} restriction evals, got {restriction_evals}\n{}",
        outcome.runs,
        report.to_json()
    );
    let per_restriction: Vec<_> = report
        .counters
        .keys()
        .filter(|k| {
            k.starts_with("restriction.") && k.ends_with(".evals") && *k != "restriction.evals"
        })
        .collect();
    assert!(
        !per_restriction.is_empty(),
        "expected per-restriction counters\n{}",
        report.to_json()
    );
    for name in per_restriction {
        assert!(report.counters[name] > 0, "{name} is zero");
    }

    // Per-restriction check timers exist alongside the counters.
    assert!(
        report.timers.keys().any(|k| k.starts_with("restriction.")),
        "expected restriction timers\n{}",
        report.to_json()
    );

    // Deadlocks are reported even when zero, so reports are comparable.
    assert!(report.counters.contains_key("verify.deadlocks"));
    assert_eq!(probe.counter("verify.deadlocks"), outcome.deadlocks as u64);

    // The logic and core layers were exercised too.
    assert!(probe.counter("logic.eval.calls") > 0);
    assert!(probe.counter("core.closure.built") > 0);
    assert!(probe.counter("project.projections") >= outcome.runs as u64);

    // No truncation counters for an exhaustive sweep.
    assert!(report
        .counters
        .keys()
        .all(|k| !k.starts_with("explore.truncation.")));
}

#[test]
fn reports_are_deterministic_modulo_timings() {
    let first = Arc::new(StatsProbe::new());
    let second = Arc::new(StatsProbe::new());
    verify_rw_with_probe(first.clone());
    verify_rw_with_probe(second.clone());
    let a = first.report().without_timings().to_json();
    let b = second.report().without_timings().to_json();
    assert_eq!(
        a, b,
        "deterministic workload must produce identical reports"
    );
    // Sanity: the stripped report still carries the counter sections.
    assert!(a.contains("\"explore.runs\""));
}

#[test]
fn span_timings_recorded() {
    let probe = Arc::new(StatsProbe::new());
    verify_rw_with_probe(probe.clone());
    let report = probe.report();
    let verify_span = report.timers.get("verify").expect("verify span");
    assert_eq!(verify_span.count, 1);
    assert!(verify_span.total_ns > 0);
}

#[test]
fn chrome_trace_serialisation_matches_golden() {
    // `chrome_trace_json` is a pure function of its event list with a
    // deliberately rigid field order; a fixed event mix — durations,
    // a running-total counter, a name needing JSON escapes — must
    // serialise byte-for-byte to the checked-in golden.
    use gem::obs::{chrome_trace_json, ChromeEvent};
    let ev = |name: &str, cat: &str, ts_us: u64, dur_us: u64, tid: u64| ChromeEvent {
        name: name.into(),
        cat: cat.into(),
        ts_us,
        dur_us,
        tid,
        counter: None,
    };
    let events = vec![
        ev("verify", "verify", 0, 1500, 0),
        ev("phase.explore", "phase", 0, 700, 0),
        ev("phase.seal", "phase", 700, 300, 0),
        ev("phase.check", "phase", 1000, 500, 2),
        ChromeEvent {
            name: "explore.runs".into(),
            cat: "explore".into(),
            ts_us: 1200,
            dur_us: 0,
            tid: 0,
            counter: Some(812),
        },
        ev("note \"quoted\"\tkey", "note \"quoted\"\tkey", 1400, 1, 1),
    ];
    let got = chrome_trace_json(&events);
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json");
    let want = std::fs::read_to_string(&golden).expect("golden file");
    assert_eq!(
        got, want,
        "Chrome-trace serialisation drifted from tests/golden/chrome_trace.json"
    );
}

#[test]
fn chrome_trace_of_probed_verify_partitions_the_wall() {
    // A real dedup verify through a ChromeTraceProbe: every top-level
    // phase must appear as a complete duration event, the per-phase
    // durations must sum to at most the verify span, and the final
    // `explore.runs` running total must agree with the verifier.
    use gem::lang::Explorer;
    use gem::obs::ChromeTraceProbe;
    let probe = Arc::new(ChromeTraceProbe::new());
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe: probe.clone(),
            explorer: Explorer {
                dedup_computations: true,
                ..Explorer::default()
            },
            // Batch phases (seal/key/lookup/check) must all fire; the
            // incremental fast path would skip them for clean leaves.
            incr_check: gem::verify::IncrCheck::Off,
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    assert!(outcome.ok(), "{outcome}");
    let events = probe.events();
    assert_eq!(probe.dropped(), 0);

    let dur_of = |name: &str| -> u64 {
        events
            .iter()
            .filter(|e| e.name == name && e.counter.is_none())
            .map(|e| e.dur_us)
            .sum()
    };
    for phase in gem::obs::profile::TOP_PHASES {
        if phase == "phase.check_incr" {
            continue; // only recorded when incremental checking is on
        }
        assert!(
            events
                .iter()
                .any(|e| e.name == phase && e.counter.is_none()),
            "missing duration events for {phase}"
        );
        assert_eq!(
            events.iter().find(|e| e.name == phase).unwrap().cat,
            "phase"
        );
    }
    let verify_dur = dur_of("verify");
    assert!(verify_dur > 0, "verify span must be recorded");
    let accounted: u64 = gem::obs::profile::TOP_PHASES
        .iter()
        .map(|p| dur_of(p))
        .sum();
    assert!(
        accounted <= verify_dur,
        "phases overflow the verify span: {accounted}us > {verify_dur}us"
    );

    let final_runs = events
        .iter()
        .filter(|e| e.name == "explore.runs")
        .filter_map(|e| e.counter)
        .next_back()
        .expect("explore.runs counter events");
    assert_eq!(final_runs, outcome.runs as u64);

    let json = probe.to_json();
    assert!(json.starts_with("{\"traceEvents\": [\n"));
    assert!(json.ends_with("\n]}\n"));
}

#[test]
fn phase_profile_accounts_for_the_wall_and_explains_dedup() {
    // The §9 Readers/Writers monitor under dedup: the aggregated phase
    // profile must attribute (almost) the whole verify span to the
    // top-level phases, and the explain pass must produce a *measured*
    // dedup verdict from the hit counters.
    use gem::lang::Explorer;
    use gem::obs::PhaseProfile;
    let probe = Arc::new(StatsProbe::new());
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe: probe.clone(),
            explorer: Explorer {
                dedup_computations: true,
                ..Explorer::default()
            },
            // The dedup verdict needs real cache traffic and the render
            // check wants every batch phase present.
            incr_check: gem::verify::IncrCheck::Off,
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    assert!(outcome.ok(), "{outcome}");
    let report = probe.report();
    let profile = PhaseProfile::from_report(&report).expect("phase timers recorded");
    assert!(profile.wall_ns > 0);
    assert!(
        profile.accounted_ns <= profile.wall_ns,
        "accounted {} > wall {}",
        profile.accounted_ns,
        profile.wall_ns
    );
    // The residual-attribution design makes the partition tight: the
    // five phases cover the sweep, so well over half the wall must be
    // accounted for even on a tiny instance.
    assert!(
        profile.accounted_ns * 2 > profile.wall_ns,
        "accounted {} vs wall {} — phases lost the sweep",
        profile.accounted_ns,
        profile.wall_ns
    );
    let rendered = profile.render();
    for phase in gem::obs::profile::TOP_PHASES {
        if phase == "phase.check_incr" {
            continue; // only recorded when incremental checking is on
        }
        assert!(
            rendered.contains(phase),
            "render missing {phase}:\n{rendered}"
        );
    }
    let verdicts = gem::obs::explain(&report);
    assert!(
        verdicts.iter().any(|v| v.contains("dedup measured")),
        "expected a measured dedup verdict, got {verdicts:?}"
    );
}

#[test]
fn phase_partition_holds_with_incremental_checking_on() {
    // With the incremental checker active every clean leaf skips the
    // seal/key/check pipeline, so `phase.check_incr` takes over as the
    // dominant per-leaf phase. The timer-partition invariant must still
    // hold (accounted <= wall), the new phase must join the profile,
    // and the explain pass must report the incremental verdict.
    use gem::obs::PhaseProfile;
    let probe = Arc::new(StatsProbe::new());
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe: probe.clone(),
            incr_check: gem::verify::IncrCheck::On,
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    assert!(outcome.ok(), "{outcome}");
    let report = probe.report();

    // Every run of this instance is proven clean incrementally, so the
    // batch counters vanish while the incremental ones take over.
    assert_eq!(probe.counter("logic.incr.leaf_clean"), outcome.runs as u64);
    assert_eq!(probe.counter("logic.incr.leaf_fallback"), 0);
    assert_eq!(probe.counter("restriction.evals"), 0);
    assert!(probe.counter("logic.incr.bindings_checked") > 0);
    assert!(probe.counter("logic.incr.events_replayed") > 0);
    assert!(
        probe.counter("logic.incr.events_reused") > 0,
        "DFS siblings must share a prefix on this instance"
    );

    // phase.check_incr participates in the partition and the partition
    // invariant survives the fast path.
    let incr_timer = report.timers.get("phase.check_incr").expect("incr timer");
    assert_eq!(incr_timer.count, outcome.runs as u64);
    let profile = PhaseProfile::from_report(&report).expect("phase timers recorded");
    assert!(
        profile.accounted_ns <= profile.wall_ns,
        "accounted {} > wall {}",
        profile.accounted_ns,
        profile.wall_ns
    );
    assert!(
        profile
            .rows
            .iter()
            .any(|r| r.name == "phase.check_incr" && !r.nested),
        "phase.check_incr missing from profile:\n{}",
        profile.render()
    );

    let verdicts = gem::obs::explain(&report);
    assert!(
        verdicts
            .iter()
            .any(|v| v.starts_with("incremental check:") && v.contains("proven clean")),
        "expected an incremental verdict, got {verdicts:?}"
    );
}

#[test]
fn openmetrics_serialisation_matches_golden() {
    // `render_openmetrics` is a pure function of the snapshot series
    // with rigid family/sample ordering; a fixed mix — a plain counter,
    // a worker-labelled family, a gauge, a key appearing mid-series —
    // must serialise byte-for-byte to the checked-in golden, and that
    // golden must pass the format's own linter.
    use gem::obs::{lint_openmetrics, render_openmetrics, SeriesSnapshot};
    use std::collections::BTreeMap;
    let snaps = vec![
        SeriesSnapshot {
            at_ms: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        },
        SeriesSnapshot {
            at_ms: 1000,
            counters: BTreeMap::from([
                ("explore.runs".to_owned(), 7),
                ("worker.0.steps".to_owned(), 12),
                ("worker.1.steps".to_owned(), 9),
            ]),
            gauges: BTreeMap::from([("estimate.total_runs".to_owned(), 40)]),
        },
        SeriesSnapshot {
            at_ms: 2500,
            counters: BTreeMap::from([
                ("explore.runs".to_owned(), 21),
                ("verify.deadlocks".to_owned(), 1),
                ("worker.0.steps".to_owned(), 30),
                ("worker.1.steps".to_owned(), 28),
            ]),
            gauges: BTreeMap::from([
                ("estimate.total_runs".to_owned(), 40),
                ("explore.depth".to_owned(), 6),
            ]),
        },
    ];
    let got = render_openmetrics(&snaps);
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/openmetrics.om");
    let want = std::fs::read_to_string(&golden).expect("golden file");
    assert_eq!(
        got, want,
        "OpenMetrics serialisation drifted from tests/golden/openmetrics.om"
    );
    let summary = lint_openmetrics(&got).expect("golden must lint clean");
    assert_eq!(summary.snapshots, 3);
    assert!(summary.families >= 5, "{summary:?}");
}

#[test]
fn probed_parallel_verify_feeds_a_lintable_series() {
    // End-to-end: a SeriesProbe riding a parallel verify must yield an
    // exposition that lints clean, with the worker-labelled families
    // present and the final explore.runs total agreeing with the
    // verifier.
    use gem::lang::Explorer;
    use gem::obs::{lint_openmetrics, render_openmetrics, SeriesProbe};
    use std::time::Duration;
    let probe = Arc::new(SeriesProbe::new(Duration::from_secs(3600)));
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe: probe.clone(),
            explorer: Explorer {
                jobs: 4,
                split_depth: 3,
                ..Explorer::default()
            },
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    assert!(outcome.ok(), "{outcome}");
    probe.finish();
    let snaps = probe.snapshots();
    assert!(snaps.len() >= 2, "baseline + final");
    let last = snaps.last().expect("final snapshot");
    assert_eq!(last.counters["explore.runs"], outcome.runs as u64);
    let text = render_openmetrics(&snaps);
    let summary = lint_openmetrics(&text).expect("exposition must lint clean");
    assert!(summary.snapshots >= 2, "{summary:?}");
    assert!(
        text.contains("gem_worker_leaves_total{worker=\"0\"}"),
        "worker-labelled families missing:\n{text}"
    );
}

#[test]
fn noop_probe_leaves_ambient_inactive() {
    // The default options use a NoopProbe; the ambient layer must stay
    // uninstalled so deep layers keep their fast path.
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions::default(),
    )
    .expect("projection");
    assert!(outcome.ok());
    assert!(!gem::obs::ambient::active());
    assert!(!VerifyOptions::default().probe.enabled());
}
