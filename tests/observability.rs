//! Instrumentation integration: verifying the §9 Readers/Writers monitor
//! with a [`gem::obs::StatsProbe`] attached must report the exact run
//! count the verifier saw, nonzero restriction-evaluation counters from
//! the deep layers, and — because exploration is deterministic — a report
//! that is byte-identical across runs once timing fields are zeroed.

use std::sync::Arc;

use gem::lang::monitor::readers_writers_monitor;
use gem::obs::StatsProbe;
use gem::problems::readers_writers::{rw_correspondence, rw_program, rw_spec, RwVariant};
use gem::verify::{verify_system, VerifyOptions};

fn verify_rw_with_probe(probe: Arc<StatsProbe>) -> gem::verify::VerifyOutcome {
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions {
            probe,
            ..VerifyOptions::default()
        },
    )
    .expect("projection")
}

#[test]
fn readers_writers_probe_reports_exact_counts() {
    let probe = Arc::new(StatsProbe::new());
    let outcome = verify_rw_with_probe(probe.clone());
    assert!(outcome.ok(), "{outcome}");
    assert!(outcome.exhaustive());

    // The probe's run counter must agree exactly with the verifier.
    assert_eq!(probe.counter("explore.runs"), outcome.runs as u64);
    assert!(probe.counter("explore.steps") > 0);

    // Deep layers report through the ambient probe: every run checks
    // every restriction of the mutual-exclusion spec at least once.
    let report = probe.report();
    let restriction_evals = probe.counter("restriction.evals");
    assert!(
        restriction_evals >= outcome.runs as u64,
        "expected >= {} restriction evals, got {restriction_evals}\n{}",
        outcome.runs,
        report.to_json()
    );
    let per_restriction: Vec<_> = report
        .counters
        .keys()
        .filter(|k| {
            k.starts_with("restriction.") && k.ends_with(".evals") && *k != "restriction.evals"
        })
        .collect();
    assert!(
        !per_restriction.is_empty(),
        "expected per-restriction counters\n{}",
        report.to_json()
    );
    for name in per_restriction {
        assert!(report.counters[name] > 0, "{name} is zero");
    }

    // Per-restriction check timers exist alongside the counters.
    assert!(
        report.timers.keys().any(|k| k.starts_with("restriction.")),
        "expected restriction timers\n{}",
        report.to_json()
    );

    // Deadlocks are reported even when zero, so reports are comparable.
    assert!(report.counters.contains_key("verify.deadlocks"));
    assert_eq!(probe.counter("verify.deadlocks"), outcome.deadlocks as u64);

    // The logic and core layers were exercised too.
    assert!(probe.counter("logic.eval.calls") > 0);
    assert!(probe.counter("core.closure.built") > 0);
    assert!(probe.counter("project.projections") >= outcome.runs as u64);

    // No truncation counters for an exhaustive sweep.
    assert!(report
        .counters
        .keys()
        .all(|k| !k.starts_with("explore.truncation.")));
}

#[test]
fn reports_are_deterministic_modulo_timings() {
    let first = Arc::new(StatsProbe::new());
    let second = Arc::new(StatsProbe::new());
    verify_rw_with_probe(first.clone());
    verify_rw_with_probe(second.clone());
    let a = first.report().without_timings().to_json();
    let b = second.report().without_timings().to_json();
    assert_eq!(
        a, b,
        "deterministic workload must produce identical reports"
    );
    // Sanity: the stripped report still carries the counter sections.
    assert!(a.contains("\"explore.runs\""));
}

#[test]
fn span_timings_recorded() {
    let probe = Arc::new(StatsProbe::new());
    verify_rw_with_probe(probe.clone());
    let report = probe.report();
    let verify_span = report.timers.get("verify").expect("verify span");
    assert_eq!(verify_span.count, 1);
    assert!(verify_span.total_ns > 0);
}

#[test]
fn noop_probe_leaves_ambient_inactive() {
    // The default options use a NoopProbe; the ambient layer must stay
    // uninstalled so deep layers keep their fast path.
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |state| sys.computation(state).expect("acyclic"),
        &VerifyOptions::default(),
    )
    .expect("projection");
    assert!(outcome.ok());
    assert!(!gem::obs::ambient::active());
    assert!(!VerifyOptions::default().probe.enabled());
}
