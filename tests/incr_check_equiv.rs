//! Differential harness: incremental restriction checking must be
//! observationally invisible.
//!
//! `--incr-check on|auto` replaces the per-leaf seal→project→check
//! pipeline with a prefix-sharing incremental evaluator for leaves it
//! can prove clean — but verdicts, failure details, deadlock counts,
//! blame artifacts, and the exploration-level counters of `--stats-json`
//! must be byte-identical to `--incr-check off` across every substrate
//! (monitor, CSP, ADA), worker count, and reduction strategy, on holding,
//! failing, and deadlocking instances alike. Only the work-reflecting
//! namespaces (`logic.*`, `restriction.*`, `project.*`, `core.*`,
//! `verify.dedup.*`, phase timers) may differ: that skipped work *is*
//! the optimisation.

use std::collections::BTreeMap;
use std::sync::Arc;

use gem::core::Computation;
use gem::lang::monitor::readers_writers_monitor;
use gem::lang::{Explorer, System};
use gem::obs::StatsProbe;
use gem::problems::readers_writers::{
    rw_correspondence, rw_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem::problems::{bounded, one_slot, philosophers};
use gem::spec::Specification;
use gem::verify::{verify_system, Correspondence, IncrCheck, VerifyOptions, VerifyOutcome};

/// One probed sweep with the given knobs.
#[allow(clippy::too_many_arguments)] // differential-matrix row, not an API
fn sweep<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation,
    jobs: usize,
    dedup: bool,
    por: bool,
    incr: IncrCheck,
) -> (VerifyOutcome, gem::obs::Report)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let probe = Arc::new(StatsProbe::new());
    let outcome = verify_system(
        sys,
        spec,
        corr,
        extract,
        &VerifyOptions {
            probe: probe.clone(),
            explorer: Explorer {
                jobs,
                split_depth: 3,
                reduce: por,
                dedup_computations: dedup,
                ..Explorer::default()
            },
            incr_check: incr,
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    (outcome, probe.report())
}

/// The counters that must be invariant under the incremental fast path:
/// everything the explorer reports, plus the deadlock tally. The
/// checking-layer namespaces legitimately shrink when leaves are proven
/// clean without batch work.
fn curated(report: &gem::obs::Report) -> BTreeMap<String, u64> {
    report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("explore.") || *k == "verify.deadlocks")
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// True when CI widens this suite's matrix (`GEM_TEST_INCR=1`): the
/// strategy grid gains the combined dedup+por mode and the worker sweep
/// gains jobs=2. Mirrors `GEM_TEST_JOBS` / `GEM_TEST_DEDUP` /
/// `GEM_TEST_POR` / `GEM_TEST_AUTO`.
fn incr_env() -> bool {
    std::env::var("GEM_TEST_INCR").is_ok_and(|v| v.trim() == "1")
}

/// Asserts every incr mode agrees with `Off` on outcome and curated
/// counters, across the reduction strategies and worker counts given.
fn assert_modes_agree<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation + Copy,
    what: &str,
    jobs_list: &[usize],
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut strategies = vec![(false, false), (true, false), (false, true)];
    let mut jobs_sweep = jobs_list.to_vec();
    if incr_env() {
        strategies.push((true, true));
        if jobs_list.len() > 1 && !jobs_sweep.contains(&2) {
            jobs_sweep.push(2);
        }
    }
    for (dedup, por) in strategies {
        for &jobs in &jobs_sweep {
            let (base_out, base_rep) =
                sweep(sys, spec, corr, extract, jobs, dedup, por, IncrCheck::Off);
            for incr in [IncrCheck::Auto, IncrCheck::On] {
                let (out, rep) = sweep(sys, spec, corr, extract, jobs, dedup, por, incr);
                assert_eq!(
                    base_out, out,
                    "{what}: outcome diverges at jobs={jobs} dedup={dedup} por={por} {incr:?}"
                );
                assert_eq!(
                    curated(&base_rep),
                    curated(&rep),
                    "{what}: counters diverge at jobs={jobs} dedup={dedup} por={por} {incr:?}"
                );
            }
        }
    }
}

#[test]
fn monitor_holding_instance_agrees() {
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "rw 1r1w mutex", &[1, 4]);
    // Sanity: the instance really is in the incremental fragment, so the
    // equivalence above exercised the fast path, not a silent fallback.
    let (outcome, rep) = sweep(
        &sys,
        &spec,
        &corr,
        extract,
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert!(outcome.ok());
    assert_eq!(
        rep.counters.get("logic.incr.leaf_clean").copied(),
        Some(outcome.runs as u64),
        "{:?}",
        rep.counters
    );
}

#[test]
fn monitor_failing_instance_agrees() {
    // Readers-priority monitor checked against the writers-priority spec:
    // the sweep FAILS, and the failure list (run indices, violated
    // restriction names, rendered details) must be identical in every
    // mode — incr-flagged leaves adopt the batch verdict wholesale.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "rw 1r2w writers", &[1, 4]);
    let (outcome, _) = sweep(
        &sys,
        &spec,
        &corr,
        extract,
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert!(!outcome.ok(), "{outcome}");
    assert!(!outcome.failures.is_empty());
}

#[test]
fn monitor_violation_detected_incrementally_still_matches_batch() {
    // The writers-priority monitor *satisfies* writers-priority; flip the
    // spec to readers-priority so the temporal box restrictions violate
    // mid-run — the incremental checker flags them (not just fallback),
    // and the final report must still be the batch pipeline's.
    let sys = rw_program(writers_priority_monitor(), 2, 1, false);
    let spec = rw_spec(3, false, RwVariant::ReadersPriority);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(
        &sys,
        &spec,
        &corr,
        extract,
        "rw 2r1w readers-on-writers",
        &[1, 4],
    );
}

#[test]
fn csp_substrate_agrees() {
    let items: Vec<i64> = vec![1, 2];
    let spec = bounded::bounded_spec(items.len(), 1);
    let sys = bounded::csp_solution(&items, 1);
    let corr = bounded::csp_correspondence(&sys, &spec, 1);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "bounded csp", &[1, 4]);
}

#[test]
fn ada_substrate_agrees() {
    let items: Vec<i64> = vec![10, 20];
    let spec = one_slot::one_slot_spec();
    let sys = one_slot::ada_solution(&items);
    let corr = one_slot::ada_correspondence(&sys, &spec);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "one-slot ada", &[1, 4]);
}

#[test]
fn deadlocking_instance_agrees() {
    // Naive-order philosophers deadlock; deadlocked leaves always take
    // the batch path (their projections feed deadlock artifacts), while
    // complete clean leaves still ride the incremental one.
    let sys = philosophers::philosophers_program(2, 1, philosophers::ForkOrder::Naive);
    let spec = philosophers::philosophers_spec(2);
    let corr = philosophers::philosophers_correspondence(&sys, &spec, 2);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "philosophers naive", &[1, 4]);
    let (outcome, rep) = sweep(
        &sys,
        &spec,
        &corr,
        extract,
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert!(outcome.deadlocks > 0, "{outcome}");
    assert!(
        rep.counters
            .get("logic.incr.leaf_clean")
            .copied()
            .unwrap_or(0)
            > 0,
        "clean leaves must still use the fast path: {:?}",
        rep.counters
    );
}

#[test]
fn forced_fallback_formula_agrees_and_is_reported() {
    // The Progress variant adds eventual-service liveness restrictions
    // whose temporal shape the incremental fragment excludes: the whole
    // sweep falls back globally, per-restriction reasons land in the
    // report, and the outcome still matches `Off` exactly.
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let spec = rw_spec(2, false, RwVariant::Progress);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    assert_modes_agree(&sys, &spec, &corr, extract, "rw progress (fallback)", &[1]);
    // `On` forces per-leaf accounting even under global fallback, so the
    // fallback decision is visible per restriction.
    let (outcome, rep) = sweep(&sys, &spec, &corr, extract, 1, false, false, IncrCheck::On);
    assert!(outcome.ok(), "{outcome}");
    assert!(
        rep.counters
            .keys()
            .any(|k| k.starts_with("logic.incr.restriction.") && k.contains(".fallback.")),
        "expected per-restriction fallback reasons: {:?}",
        rep.counters
    );
    assert_eq!(
        rep.counters.get("logic.incr.leaf_clean").copied(),
        None,
        "global fallback must not prove any leaf clean"
    );
    // Auto skips the per-leaf machinery entirely under global fallback.
    let (_, rep) = sweep(
        &sys,
        &spec,
        &corr,
        extract,
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert_eq!(rep.counters.get("logic.incr.syncs").copied(), None);
}

#[test]
fn incr_counters_identical_across_jobs() {
    // The committer delivers worker leaf states to the single checker in
    // serial DFS index order, so not just the verdict but the incremental
    // counters themselves (syncs, replay/reuse volume, per-restriction
    // tallies) must be byte-identical at every worker count.
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    let spec = rw_spec(3, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &spec, false);
    let extract = |s: &_| sys.computation(s).expect("acyclic");
    let incr_counters = |jobs: usize| -> BTreeMap<String, u64> {
        let (outcome, rep) = sweep(
            &sys,
            &spec,
            &corr,
            extract,
            jobs,
            false,
            false,
            IncrCheck::On,
        );
        assert!(outcome.ok(), "{outcome}");
        rep.counters
            .iter()
            .filter(|(k, _)| k.starts_with("logic.incr."))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    };
    let serial = incr_counters(1);
    assert!(serial.get("logic.incr.syncs").copied().unwrap_or(0) > 0);
    for jobs in [2, 4] {
        assert_eq!(serial, incr_counters(jobs), "diverges at jobs={jobs}");
    }
}

#[test]
fn cli_artifacts_and_stats_agree_across_modes() {
    // Full CLI path on the failing instance with artifacts: stdout, every
    // counterexample artifact file, and the stats report (minus timers
    // and the work-reflecting namespaces) must match `--incr-check off`.
    let dir = std::env::temp_dir().join(format!("gem-incr-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run_mode = |mode: &str| -> (String, String, BTreeMap<String, String>) {
        let art = dir.join(format!("artifacts-{mode}"));
        let stats = dir.join(format!("stats-{mode}.json"));
        let args: Vec<String> = [
            "verify",
            "rw",
            "readers=1",
            "writers=2",
            "variant=writers",
            "--incr-check",
            mode,
            "--artifacts",
            art.to_str().expect("utf-8"),
            "--stats-json",
            stats.to_str().expect("utf-8"),
            "--heartbeat",
            "0",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        // Artifact paths differ per mode; normalise them out of stdout.
        let stdout = gem_cli::run(&args)
            .expect("cli run")
            .replace(art.to_str().expect("utf-8"), "<artifacts>");
        let report =
            gem::obs::Report::from_json(&std::fs::read_to_string(&stats).expect("stats written"))
                .expect("valid report");
        let kept: BTreeMap<String, u64> = report
            .counters
            .iter()
            .filter(|(k, _)| {
                !k.starts_with("logic.")
                    && !k.starts_with("restriction.")
                    && !k.starts_with("project.")
                    && !k.starts_with("core.")
                    && !k.starts_with("verify.dedup.")
            })
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut files = BTreeMap::new();
        for entry in std::fs::read_dir(&art).expect("artifact dir") {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            files.insert(
                name,
                std::fs::read_to_string(entry.path()).expect("artifact file"),
            );
        }
        (stdout, format!("{kept:?}"), files)
    };
    let (off_out, off_counters, off_files) = run_mode("off");
    for mode in ["auto", "on"] {
        let (out, counters, files) = run_mode(mode);
        assert_eq!(off_out, out, "stdout diverges in mode {mode}");
        assert_eq!(off_counters, counters, "counters diverge in mode {mode}");
        assert_eq!(
            off_files.keys().collect::<Vec<_>>(),
            files.keys().collect::<Vec<_>>(),
            "artifact file set diverges in mode {mode}"
        );
        for (name, body) in &off_files {
            assert_eq!(
                body, &files[name],
                "artifact {name} diverges in mode {mode}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_auto_strategy_agrees_across_modes() {
    // `--auto` picks the strategy before the sweep; whatever it picks,
    // the verdict line must not depend on the incr mode.
    let base = [
        "verify",
        "one-slot",
        "items=2",
        "--auto",
        "--heartbeat",
        "0",
    ];
    let run_mode = |mode: &str| {
        let mut args: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
        args.extend(["--incr-check".to_owned(), mode.to_owned()]);
        gem_cli::run(&args).expect("cli run")
    };
    let off = run_mode("off");
    assert_eq!(off, run_mode("auto"));
    assert_eq!(off, run_mode("on"));
}
