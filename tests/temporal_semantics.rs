//! Semantics of the temporal operators over valid history sequences —
//! the §7 definitions exercised on nested and mixed formulas.

use gem::core::{Computation, ComputationBuilder, EventId, HistorySequence, Structure};
use gem::logic::{check, holds_on_sequence, EventSel, Formula, Strategy};

/// Chain p1 -> p2 on one element, independent q1 on another.
fn chain_plus_free() -> (Computation, Vec<EventId>) {
    let mut s = Structure::new();
    let act = s.add_class("Act", &[]).unwrap();
    let p = s.add_element("P", &[act]).unwrap();
    let q = s.add_element("Q", &[act]).unwrap();
    let mut b = ComputationBuilder::new(s);
    let p1 = b.add_event(p, act, vec![]).unwrap();
    let p2 = b.add_event(p, act, vec![]).unwrap();
    let q1 = b.add_event(q, act, vec![]).unwrap();
    (b.seal().unwrap(), vec![p1, p2, q1])
}

#[test]
fn henceforth_eventually_duality() {
    let (c, e) = chain_plus_free();
    // ◇φ ≡ ¬◻¬φ on every linearization sequence.
    let phi = Formula::occurred(e[2]);
    let lhs = phi.clone().eventually();
    let rhs = phi.henceforth().not(); // this is ◻φ negated, not the dual
    let dual = Formula::occurred(e[2]).not().henceforth().not(); // ¬◻¬φ
    let r_lhs = check(&lhs, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    let r_dual = check(&dual, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    assert_eq!(r_lhs.holds, r_dual.holds);
    assert!(r_lhs.holds);
    // Sanity: ¬◻φ is different — φ fails at the empty history.
    let r_rhs = check(&rhs, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    assert!(r_rhs.holds, "◻occurred(q1) is false at the empty history");
}

#[test]
fn nested_eventually_henceforth() {
    let (c, e) = chain_plus_free();
    // ◇◻ occurred(p2): eventually p2 has occurred and stays occurred —
    // true of every complete sequence (occurrence is monotone).
    let f = Formula::occurred(e[1]).henceforth().eventually();
    let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    assert!(r.holds && r.exhaustive);
    // ◻◇ occurred(p2) is also true: every tail eventually sees p2
    // (tails of a finite vhs retain the final history).
    let f = Formula::occurred(e[1]).eventually().henceforth();
    let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    assert!(r.holds);
}

#[test]
fn immediate_truth_is_first_history() {
    let (c, e) = chain_plus_free();
    // S ⊨ ρ ⇔ α₀ ⊨ ρ: on the singleton-step linearization sequence
    // starting at the empty history, occurred(p1) is false; on its tail
    // starting after p1 it is true.
    let seq = HistorySequence::from_linearization(&c, &[e[0], e[1], e[2]]);
    let f = Formula::occurred(e[0]);
    assert!(!holds_on_sequence(&f, &c, seq.histories()).unwrap());
    assert!(holds_on_sequence(&f, &c, seq.tail(1)).unwrap());
}

#[test]
fn until_like_pattern_via_primitives() {
    let (c, e) = chain_plus_free();
    // "p2 does not occur until p1 has": ◻(occurred(p2) ⊃ occurred(p1)).
    let f = Formula::occurred(e[1])
        .implies(Formula::occurred(e[0]))
        .henceforth();
    assert!(
        check(&f, &c, Strategy::Linearizations { limit: 100 })
            .unwrap()
            .holds
    );
    // The converse is refutable with a counterexample.
    let g = Formula::occurred(e[0])
        .implies(Formula::occurred(e[1]))
        .henceforth();
    let r = check(&g, &c, Strategy::Linearizations { limit: 100 }).unwrap();
    assert!(!r.holds);
    let cex = r.counterexample.unwrap();
    assert!(cex.describe(&c).contains("P.Act^0"));
}

#[test]
fn quantified_temporal_mixture() {
    let (c, _) = chain_plus_free();
    let act = c.structure().class("Act").unwrap();
    // Every event is eventually new (maximal) at some point of the run —
    // true for maximal events; false in general for p1 once p2 follows.
    // So: ∃x ◻¬new(x) — some event is never-new? p1 is new before p2;
    // instead assert ∀x ◇occurred(x): every event eventually occurs.
    let f = Formula::forall(
        "x",
        EventSel::of_class(act),
        Formula::occurred("x").eventually(),
    );
    assert!(
        check(&f, &c, Strategy::Linearizations { limit: 100 })
            .unwrap()
            .holds
    );
    // And ∃x ◻(occurred(x) ⊃ new(x)): an event that stays maximal — q1
    // (nothing follows it) or p2; true.
    let g = Formula::exists(
        "x",
        EventSel::of_class(act),
        Formula::occurred("x")
            .implies(Formula::is_new("x"))
            .henceforth(),
    );
    assert!(
        check(&g, &c, Strategy::Linearizations { limit: 100 })
            .unwrap()
            .holds
    );
}

#[test]
fn step_sequences_and_linearizations_agree_on_safety() {
    let (c, e) = chain_plus_free();
    // ◻-safety over immediate assertions agrees between singleton-step
    // and coarse-step semantics (every coarse history is some ideal, and
    // ideals are covered by linearizations).
    for f in [
        Formula::occurred(e[1])
            .implies(Formula::occurred(e[0]))
            .henceforth(),
        Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth(),
    ] {
        let lin = check(&f, &c, Strategy::Linearizations { limit: 1000 }).unwrap();
        let stp = check(&f, &c, Strategy::StepSequences { limit: 10_000 }).unwrap();
        assert_eq!(lin.holds, stp.holds, "{}", f.render(c.structure()));
    }
}

#[test]
fn greedy_steps_is_a_vhs_check() {
    let (c, e) = chain_plus_free();
    // The greedy sequence adds {p1, q1} simultaneously: a formula that
    // requires seeing p1 strictly before q1 fails there but holds on some
    // linearizations (and fails on others).
    let separated = Formula::occurred(e[0])
        .and(Formula::occurred(e[2]).not())
        .eventually();
    let greedy = check(&separated, &c, Strategy::GreedySteps).unwrap();
    assert!(!greedy.holds, "greedy steps never separate p1 from q1");
}
