//! Failure injection: deliberately broken programs must be *refuted* by
//! the verification pipeline — the sensitivity half of every experiment.

use gem::core::Value;
use gem::lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem::lang::{Explorer, Expr};
use gem::problems::readers_writers::{rw_correspondence, rw_spec, RwVariant};
use gem::problems::{bounded, one_slot};
use gem::verify::{assert_no_deadlock, verify_system, VerifyOptions};

fn call(entry: &str) -> ScriptStep {
    ScriptStep::Call {
        entry: entry.into(),
        args: vec![],
    }
}

/// A Readers/Writers "monitor" that never waits: mutual exclusion must be
/// refuted (readers run while a writer writes).
#[test]
fn no_wait_rw_monitor_violates_mutex() {
    let broken = MonitorDef::new("ReadersWriters") // same name/vars as the real one
        .var("readernum", 0i64)
        .condition("readqueue")
        .condition("writequeue")
        .entry(
            "StartRead",
            &[],
            vec![Stmt::assign(
                "readernum",
                Expr::var("readernum").add(Expr::int(1)),
            )],
        )
        .entry(
            "EndRead",
            &[],
            vec![Stmt::assign(
                "readernum",
                Expr::var("readernum").sub(Expr::int(1)),
            )],
        )
        .entry(
            "StartWrite",
            &[],
            vec![Stmt::assign("readernum", Expr::int(-1))],
        )
        .entry(
            "EndWrite",
            &[],
            vec![Stmt::assign("readernum", Expr::int(0))],
        );
    let mut prog = MonitorProgram::new(broken)
        .shared_var("data", 0i64)
        .user_class("Read", &[])
        .user_class("FinishRead", &[])
        .user_class("Write", &[])
        .user_class("FinishWrite", &[]);
    prog = prog.process(ProcessDef::new(
        "u0",
        vec![
            ScriptStep::Event {
                class: "Read".into(),
                params: vec![],
            },
            call("StartRead"),
            ScriptStep::ReadShared { var: "data".into() },
            call("EndRead"),
            ScriptStep::Event {
                class: "FinishRead".into(),
                params: vec![],
            },
        ],
    ));
    prog = prog.process(ProcessDef::new(
        "u1",
        vec![
            ScriptStep::Event {
                class: "Write".into(),
                params: vec![],
            },
            call("StartWrite"),
            ScriptStep::WriteShared {
                var: "data".into(),
                value: Expr::int(7),
            },
            call("EndWrite"),
            ScriptStep::Event {
                class: "FinishWrite".into(),
                params: vec![],
            },
        ],
    ));
    let sys = MonitorSystem::new(prog);
    let problem = rw_spec(2, true, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, true);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(!outcome.ok(), "a monitor without waits cannot exclude");
    let violated: Vec<_> = outcome
        .failures
        .iter()
        .flat_map(|f| f.violated.iter().cloned())
        .collect();
    assert!(
        violated
            .iter()
            .any(|v| v == "writers-exclude-readers" || v == "reads-isolated-from-writes"),
        "mutex family violated: {violated:?}"
    );
}

/// A CSP "bounded buffer" that swaps two items violates FIFO values.
#[test]
fn reordering_csp_buffer_violates_fifo() {
    use gem::lang::csp::{CspProcess, CspProgram, CspStmt, CspSystem};
    let items = [1i64, 2];
    let prog = CspProgram::new()
        .process(CspProcess::new(
            "producer",
            vec![
                CspStmt::send("cell0", Expr::int(items[0])),
                CspStmt::send("cell0", Expr::int(items[1])),
            ],
        ))
        .process(
            CspProcess::new(
                "cell0",
                vec![
                    // Buggy: buffers TWO items, then emits them swapped.
                    CspStmt::recv("producer", "x"),
                    CspStmt::recv("producer", "y"),
                    CspStmt::send("consumer", Expr::var("y")),
                    CspStmt::send("consumer", Expr::var("x")),
                ],
            )
            .local("x", 0i64)
            .local("y", 0i64),
        )
        .process(
            CspProcess::new(
                "consumer",
                vec![CspStmt::recv("cell0", "a"), CspStmt::recv("cell0", "b")],
            )
            .local("a", 0i64)
            .local("b", 0i64),
        );
    let sys = CspSystem::new(prog);
    let problem = bounded::bounded_spec(items.len(), 2);
    let corr = bounded::csp_correspondence(&sys, &problem, 1);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(!outcome.ok());
    assert!(outcome
        .failures
        .iter()
        .any(|f| f.violated.iter().any(|v| v == "fifo-values")));
}

/// An ADA buffer whose guard is off by one admits an overflow: the
/// capacity restriction catches it.
#[test]
fn off_by_one_ada_guard_violates_capacity() {
    use gem::lang::ada::{AcceptArm, AdaProgram, AdaStmt, AdaSystem, AdaTask, SelectBranch};
    let cap_claimed = 1usize;
    // The buffer physically holds 2 but the spec says capacity 1.
    let n = 2i64;
    let put_arm = AcceptArm {
        entry: "Put".into(),
        params: vec!["v".into()],
        body: vec![
            AdaStmt::If(
                Expr::var("inx").eq(Expr::int(0)),
                vec![AdaStmt::assign("slot0", Expr::var("v"))],
                vec![AdaStmt::assign("slot1", Expr::var("v"))],
            ),
            AdaStmt::assign("inx", Expr::var("inx").add(Expr::int(1)).rem(Expr::int(2))),
            AdaStmt::assign("count", Expr::var("count").add(Expr::int(1))),
            AdaStmt::assign("puts", Expr::var("puts").add(Expr::int(1))),
        ],
    };
    let take_arm = AcceptArm {
        entry: "Take".into(),
        params: vec![],
        body: vec![
            AdaStmt::If(
                Expr::var("outx").eq(Expr::int(0)),
                vec![AdaStmt::assign("out", Expr::var("slot0"))],
                vec![AdaStmt::assign("out", Expr::var("slot1"))],
            ),
            AdaStmt::assign(
                "outx",
                Expr::var("outx").add(Expr::int(1)).rem(Expr::int(2)),
            ),
            AdaStmt::assign("count", Expr::var("count").sub(Expr::int(1))),
            AdaStmt::assign("takes", Expr::var("takes").add(Expr::int(1))),
        ],
    };
    let buffer = AdaTask::new(
        "buffer",
        vec![AdaStmt::While(
            Expr::var("puts")
                .lt(Expr::int(n))
                .or(Expr::var("takes").lt(Expr::int(n))),
            vec![AdaStmt::Select(vec![
                SelectBranch {
                    // BUG: admits up to 2 items though the spec says 1.
                    guard: Some(
                        Expr::var("count")
                            .lt(Expr::int(2))
                            .and(Expr::var("puts").lt(Expr::int(n))),
                    ),
                    accept: put_arm,
                },
                SelectBranch {
                    guard: Some(Expr::var("count").gt(Expr::int(0))),
                    accept: take_arm,
                },
            ])],
        )],
    )
    .entry("Put")
    .entry("Take")
    .local("count", 0i64)
    .local("inx", 0i64)
    .local("outx", 0i64)
    .local("out", 0i64)
    .local("puts", 0i64)
    .local("takes", 0i64)
    .local("slot0", 0i64)
    .local("slot1", 0i64);
    let producer = AdaTask::new(
        "producer",
        vec![
            AdaStmt::call("buffer", "Put", vec![Expr::int(10)]),
            AdaStmt::call("buffer", "Put", vec![Expr::int(20)]),
        ],
    );
    let consumer = AdaTask::new(
        "consumer",
        vec![
            AdaStmt::call("buffer", "Take", vec![]),
            AdaStmt::call("buffer", "Take", vec![]),
        ],
    );
    let sys = AdaSystem::new(AdaProgram::new().task(buffer).task(producer).task(consumer));
    let problem = bounded::bounded_spec(2, cap_claimed);
    let corr = bounded::ada_correspondence(&sys, &problem, 2);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(!outcome.ok());
    assert!(outcome
        .failures
        .iter()
        .any(|f| f.violated.iter().any(|v| v == "capacity")));
}

/// Swapped producer/consumer scripts deadlock and are reported as such.
#[test]
fn take_before_put_deadlocks() {
    let monitor = MonitorDef::new("Slot")
        .var("slot", 0i64)
        .var("full", Value::Bool(false))
        .var("taken", 0i64)
        .condition("nonempty")
        .entry(
            "Take",
            &[],
            vec![
                Stmt::if_then(Expr::var("full").not(), vec![Stmt::wait("nonempty")]),
                Stmt::assign("taken", Expr::var("slot")),
            ],
        );
    let prog =
        MonitorProgram::new(monitor).process(ProcessDef::new("consumer", vec![call("Take")]));
    let sys = MonitorSystem::new(prog);
    assert!(assert_no_deadlock(&sys, &Explorer::default()).is_err());
}

/// The one-slot monitor's `IF`-based waits are also Mesa-unsound: with
/// two consumers, a signalled consumer can be overtaken and then take a
/// stale (already-taken) item — two removals with no deposit between.
#[test]
fn mesa_one_slot_double_take() {
    use gem::lang::monitor::SignalSemantics;
    let items = [10i64, 20];
    // Rebuild the one-slot program by hand with TWO consumers and Mesa
    // semantics (the library constructor pairs one producer with one
    // consumer under Hoare).
    let monitor = MonitorDef::new("Slot")
        .var("slot", 0i64)
        .var("full", Value::Bool(false))
        .var("taken", 0i64)
        .condition("nonempty")
        .condition("empty")
        .entry(
            "Put",
            &["v"],
            vec![
                Stmt::if_then(Expr::var("full"), vec![Stmt::wait("empty")]),
                Stmt::assign("slot", Expr::var("v")),
                Stmt::assign("full", Expr::bool(true)),
                Stmt::signal("nonempty"),
            ],
        )
        .entry(
            "Take",
            &[],
            vec![
                Stmt::if_then(Expr::var("full").not(), vec![Stmt::wait("nonempty")]),
                Stmt::assign("taken", Expr::var("slot")),
                Stmt::assign("full", Expr::bool(false)),
                Stmt::signal("empty"),
            ],
        );
    let prog = MonitorProgram::new(monitor)
        .with_semantics(SignalSemantics::Mesa)
        .process(ProcessDef::new(
            "producer",
            items
                .iter()
                .map(|&v| ScriptStep::Call {
                    entry: "Put".into(),
                    args: vec![Value::Int(v)],
                })
                .collect(),
        ))
        .process(ProcessDef::new("consumer0", vec![call("Take")]))
        .process(ProcessDef::new("consumer1", vec![call("Take")]));
    let sys = MonitorSystem::new(prog);
    let problem = one_slot::one_slot_spec();
    let corr = one_slot::monitor_correspondence(&sys, &problem);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(
        !outcome.ok(),
        "Mesa + IF-based waits must allow a double take: {outcome}"
    );
}

/// Sanity: the correct one-slot monitor passes where the broken ones
/// fail, under the exact same harness settings.
#[test]
fn control_correct_monitor_passes() {
    let items = [1i64, 2];
    let sys = one_slot::monitor_solution(&items);
    let problem = one_slot::one_slot_spec();
    let corr = one_slot::monitor_correspondence(&sys, &problem);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
}
