//! Property tests for the §9 projection: on randomly scheduled monitor
//! programs, the projection onto significant objects must preserve
//! behaviour — the projected temporal order is exactly the restriction of
//! the program's, and projected enable edges only connect events that were
//! temporally ordered in the program.

use proptest::prelude::*;
use std::ops::ControlFlow;

use gem::core::{Computation, EventId, Value};
use gem::lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem::lang::{Explorer, Expr};
use gem::logic::EventSel;
use gem::spec::{ElementType, SpecBuilder, Specification};
use gem::verify::{project, Correspondence};

/// A random monitor program: `procs` processes, each performing a random
/// sequence of `Inc`/`Dec` entry calls.
fn program_strategy() -> impl Strategy<Value = MonitorProgram> {
    let script = proptest::collection::vec(prop_oneof![Just("Inc"), Just("Dec")], 1..4);
    proptest::collection::vec(script, 1..4).prop_map(|scripts| {
        let monitor = MonitorDef::new("Counter")
            .var("x", 0i64)
            .entry(
                "Inc",
                &[],
                vec![Stmt::assign("x", Expr::var("x").add(Expr::int(1)))],
            )
            .entry(
                "Dec",
                &[],
                vec![Stmt::assign("x", Expr::var("x").sub(Expr::int(1)))],
            );
        let mut prog = MonitorProgram::new(monitor);
        for (i, script) in scripts.into_iter().enumerate() {
            prog = prog.process(ProcessDef::new(
                format!("p{i}"),
                script
                    .into_iter()
                    .map(|e| ScriptStep::Call {
                        entry: e.into(),
                        args: vec![],
                    })
                    .collect(),
            ));
        }
        prog
    })
}

fn problem() -> Specification {
    let ctl = ElementType::new("Ctl")
        .event("Up", &["v"])
        .event("Down", &["v"]);
    let mut sb = SpecBuilder::new("CounterProblem");
    sb.instantiate_element(&ctl, "ctl").unwrap();
    sb.finish()
}

fn correspondence(sys: &MonitorSystem, spec: &Specification) -> Correspondence {
    let ps = spec.structure();
    let ctl = ps.element("ctl").unwrap();
    Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element("x"))
                .with_param(1, "Inc"),
            ctl,
            ps.class("Up").unwrap(),
            &[(0, 0)],
        )
        .map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element("x"))
                .with_param(1, "Dec"),
            ctl,
            ps.class("Down").unwrap(),
            &[(0, 0)],
        )
}

/// Significant events of the program computation, in topological order
/// (matching the projection's event numbering).
fn significant(sys: &MonitorSystem, c: &Computation) -> Vec<EventId> {
    let x_el = sys.var_element("x");
    let assign = sys.class("Assign");
    c.closure()
        .topological()
        .iter()
        .copied()
        .filter(|&e| {
            let ev = c.event(e);
            ev.element() == x_el
                && ev.class() == assign
                && ev.param(1) != Some(&Value::Str("init".into()))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn projection_preserves_behaviour(prog in program_strategy()) {
        let sys = MonitorSystem::new(prog);
        let spec = problem();
        let corr = correspondence(&sys, &spec);
        let mut checked = 0usize;
        Explorer::with_max_runs(8).for_each_run(&sys, |state, _| {
            let c = sys.computation(state).expect("acyclic");
            let sig = significant(&sys, &c);
            let p = project(&c, spec.structure_arc(), &corr).expect("consistent");
            assert_eq!(p.event_count(), sig.len(), "one image per significant event");
            for (i, &a) in sig.iter().enumerate() {
                let pa = EventId::from_raw(i as u32);
                // Values carried over.
                assert_eq!(p.event(pa).param(0), c.event(a).param(0));
                for (j, &b) in sig.iter().enumerate() {
                    let pb = EventId::from_raw(j as u32);
                    // Behaviour preservation: the projected temporal order
                    // is exactly the restriction of the program's.
                    assert_eq!(
                        p.temporally_precedes(pa, pb),
                        c.temporally_precedes(a, b),
                        "temporal order must be the restriction"
                    );
                    // Bridged enables are sound: they only connect events
                    // ordered in the program.
                    if p.enables(pa, pb) {
                        assert!(c.temporally_precedes(a, b));
                    }
                }
            }
            checked += 1;
            ControlFlow::Continue(())
        });
        prop_assert!(checked >= 1);
    }

    /// Monitor runs always end with x == #Inc − #Dec, on every schedule —
    /// the substrate's functional determinism.
    #[test]
    fn counter_functional_determinism(prog in program_strategy()) {
        let expected: i64 = prog
            .processes
            .iter()
            .flat_map(|p| p.script.iter())
            .map(|s| match s {
                ScriptStep::Call { entry, .. } if entry == "Inc" => 1,
                ScriptStep::Call { .. } => -1,
                _ => 0,
            })
            .sum();
        let sys = MonitorSystem::new(prog);
        Explorer::with_max_runs(16).for_each_run(&sys, |state, _| {
            let c = sys.computation(state).expect("acyclic");
            assert!(gem::core::check_legality(&c).is_empty());
            ControlFlow::Continue(())
        });
        // One full run to read the final value.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (state, _) = Explorer::default().random_run(&sys, &mut rng);
        let c = sys.computation(&state).expect("acyclic");
        // The last assignment at x carries the final value.
        let x_el = sys.var_element("x");
        let last = *c.events_at(x_el).last().expect("initialized");
        prop_assert_eq!(c.event(last).param(0), Some(&Value::Int(expected)));
    }
}
