//! The paper's claims (§1, §9, §11) as one integration suite — the
//! executable index behind EXPERIMENTS.md. Each test is a compact version
//! of an experiment E1–E10; the heavyweight variants live in the
//! per-crate test suites and the bench harness.

use std::ops::ControlFlow;

use gem::lang::monitor::{entries_sequential, monitor_restrictions, readers_writers_monitor};
use gem::lang::{csp::csp_restrictions, Explorer};
use gem::logic::{holds_on_computation, Strategy};
use gem::problems::readers_writers::{
    rw_correspondence, rw_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem::problems::{bounded, db_update, life, one_slot};
use gem::verify::{assert_no_deadlock, verify_system, VerifyOptions};

/// E1 — "sequential execution of monitor entries" (§11): all
/// monitor-internal events are totally ordered, plus the Monitor-primitive
/// restrictions, on every schedule.
#[test]
fn e1_monitor_description() {
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let restrictions = monitor_restrictions(&sys);
    let mut runs = 0;
    Explorer::default().for_each_run(&sys, |state, _| {
        runs += 1;
        let c = sys.computation(state).expect("acyclic");
        assert!(entries_sequential(&sys, &c));
        for (name, f) in &restrictions {
            assert!(holds_on_computation(f, &c).unwrap(), "{name}");
        }
        ControlFlow::Continue(())
    });
    assert!(runs >= 2);
}

/// E2 — the §8.3 mutual-exclusion restriction holds of the §9 monitor,
/// including the shared-data events.
#[test]
fn e2_mutual_exclusion() {
    let sys = rw_program(readers_writers_monitor(), 1, 1, true);
    let problem = rw_spec(2, true, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, true);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
    assert!(outcome.exhaustive());
}

/// E3 — the §9 readers-priority proof, mechanized; with the
/// writers-priority spec as a refuted negative control.
#[test]
fn e3_readers_priority() {
    let sys = rw_program(readers_writers_monitor(), 1, 2, false);
    for (variant, expect) in [
        (RwVariant::ReadersPriority, true),
        (RwVariant::WritersPriority, false),
    ] {
        let problem = rw_spec(3, false, variant);
        let corr = rw_correspondence(&sys, &problem, false);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            &VerifyOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.ok(), expect, "{variant:?}: {outcome}");
    }
}

/// E4 — the One-Slot Buffer solved in Monitor, CSP, and ADA.
#[test]
fn e4_one_slot_three_substrates() {
    let items = [5i64, 6];
    let problem = one_slot::one_slot_spec();
    let m = one_slot::monitor_solution(&items);
    let mc = one_slot::monitor_correspondence(&m, &problem);
    assert!(verify_system(
        &m,
        &problem,
        &mc,
        |s| m.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
    let c = one_slot::csp_solution(&items);
    let cc = one_slot::csp_correspondence(&c, &problem);
    assert!(verify_system(
        &c,
        &problem,
        &cc,
        |s| c.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
    let a = one_slot::ada_solution(&items);
    let ac = one_slot::ada_correspondence(&a, &problem);
    assert!(verify_system(
        &a,
        &problem,
        &ac,
        |s| a.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
}

/// E5 — the Bounded Buffer solved in Monitor, CSP, and ADA.
#[test]
fn e5_bounded_three_substrates() {
    let items = [1i64, 2, 3];
    let cap = 2;
    let problem = bounded::bounded_spec(items.len(), cap);
    let m = bounded::monitor_solution(&items, cap);
    let mc = bounded::monitor_correspondence(&m, &problem, cap);
    assert!(verify_system(
        &m,
        &problem,
        &mc,
        |s| m.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
    let c = bounded::csp_solution(&items, cap);
    let cc = bounded::csp_correspondence(&c, &problem, cap);
    assert!(verify_system(
        &c,
        &problem,
        &cc,
        |s| c.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
    let a = bounded::ada_solution(&items, cap);
    let ac = bounded::ada_correspondence(&a, &problem, cap);
    assert!(verify_system(
        &a,
        &problem,
        &ac,
        |s| a.computation(s).unwrap(),
        &VerifyOptions::default()
    )
    .unwrap()
    .ok());
}

/// E6 — the five Readers/Writers variants distinguish the two schedulers.
#[test]
fn e6_variants_distinguish_schedulers() {
    // (monitor, variant) -> expected verdict table.
    let verdict = |writers_first: bool, variant: RwVariant, r: usize, w: usize| {
        let monitor = if writers_first {
            writers_priority_monitor()
        } else {
            readers_writers_monitor()
        };
        let sys = rw_program(monitor, r, w, false);
        let problem = rw_spec(r + w, false, variant);
        let corr = rw_correspondence(&sys, &problem, false);
        verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            &VerifyOptions::default(),
        )
        .unwrap()
        .ok()
    };
    assert!(verdict(false, RwVariant::MutexOnly, 1, 1));
    assert!(verdict(true, RwVariant::MutexOnly, 1, 1));
    assert!(verdict(false, RwVariant::Progress, 1, 1));
    assert!(verdict(true, RwVariant::Progress, 1, 1));
    assert!(verdict(false, RwVariant::ReadersPriority, 1, 2));
    assert!(!verdict(true, RwVariant::ReadersPriority, 1, 2));
    assert!(!verdict(false, RwVariant::WritersPriority, 1, 2));
    assert!(verdict(true, RwVariant::WritersPriority, 2, 1));
}

/// E7 — distributed database update: deadlock-free, convergent, ordered.
#[test]
fn e7_db_update() {
    let sys = db_update::db_update_program(2, 2);
    assert!(assert_no_deadlock(&sys, &Explorer::default()).is_ok());
    let problem = db_update::db_update_spec(2, 2);
    let corr = db_update::db_update_correspondence(&sys, &problem, 2);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
}

/// E8 — asynchronous Game of Life matches the synchronous reference.
#[test]
fn e8_async_life() {
    let grid = life::block();
    let gens = 1;
    let sys = life::life_program(&grid, gens);
    let problem = life::life_spec(&grid, gens);
    let corr = life::life_correspondence(&sys, &problem, &grid);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions {
            explorer: Explorer::with_max_runs(30),
            ..VerifyOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
}

/// E9 — the CSP simultaneity-of-exchange restriction (§8.2).
#[test]
fn e9_csp_simultaneity() {
    use gem::lang::csp::{CspProcess, CspProgram, CspStmt, CspSystem};
    use gem::lang::Expr;
    let prog = CspProgram::new()
        .process(CspProcess::new(
            "a",
            vec![
                CspStmt::send("b", Expr::int(1)),
                CspStmt::send("b", Expr::int(2)),
            ],
        ))
        .process(
            CspProcess::new("b", vec![CspStmt::recv("a", "x"), CspStmt::recv("a", "x")])
                .local("x", 0i64),
        );
    let sys = CspSystem::new(prog);
    let restrictions = csp_restrictions(&sys);
    Explorer::default().for_each_run(&sys, |state, _| {
        let c = sys.computation(state).unwrap();
        for (name, f) in &restrictions {
            assert!(holds_on_computation(f, &c).unwrap(), "{name}");
        }
        ControlFlow::Continue(())
    });
}

/// E10 — thread identifiers are created uniquely per transaction and
/// passed along the control chain (§8.3).
#[test]
fn e10_thread_mechanism() {
    use gem::spec::check_thread_tags;
    use gem::verify::project;
    let sys = rw_program(readers_writers_monitor(), 2, 1, false);
    let problem = rw_spec(3, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, false);
    let mut checked = 0;
    Explorer::with_max_runs(10).for_each_run(&sys, |state, _| {
        let c = sys.computation(state).unwrap();
        let p = project(&c, problem.structure_arc(), &corr).unwrap();
        let tagged = problem.assign_threads(&p);
        for spec in problem.threads() {
            assert!(check_thread_tags(&tagged, spec).is_empty());
        }
        checked += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(checked, 10);
}

/// Larger-instance smoke: 2R+2W exceeds 10⁶ schedules, so exhaustive
/// verification is infeasible — the documented fallback is bounded
/// exploration plus seeded random-linearization checking, which still
/// finds no violation and correctly reports non-exhaustiveness.
#[test]
fn large_instance_bounded_verification() {
    use gem::verify::VerifyOptions;
    let sys = rw_program(readers_writers_monitor(), 2, 2, false);
    let problem = rw_spec(4, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, false);
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions {
            explorer: Explorer::with_max_runs(300),
            strategy: Strategy::RandomLinearizations {
                count: 20,
                seed: 42,
            },
            ..VerifyOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
    assert!(!outcome.exhaustive(), "run budget must be reported as hit");
    assert_eq!(outcome.runs, 300);
}

/// The strategies agree on the RW mutex verdict (consistency of the
/// checking machinery itself).
#[test]
fn strategies_agree_on_mutex() {
    let sys = rw_program(readers_writers_monitor(), 1, 1, false);
    let problem = rw_spec(2, false, RwVariant::MutexOnly);
    let corr = rw_correspondence(&sys, &problem, false);
    for strategy in [
        Strategy::Linearizations { limit: 50_000 },
        Strategy::RandomLinearizations {
            count: 50,
            seed: 11,
        },
        Strategy::GreedySteps,
    ] {
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).unwrap(),
            &VerifyOptions {
                strategy,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.ok(), "{strategy:?}: {outcome}");
    }
}
