//! Cross-crate integration: specification → substrate execution →
//! projection → verification, exercising every layer of the workspace
//! through the `gem` facade.

use gem::core::{check_legality, ComputationBuilder, Value};
use gem::lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem::lang::{Explorer, Expr, System};
use gem::logic::{check, EventSel, Formula, Strategy, ValueTerm};
use gem::spec::{prerequisite, ElementType, SpecBuilder};
use gem::verify::{verify_system, Correspondence, VerifyOptions};
use std::ops::ControlFlow;

/// A tiny turnstile: Coin then Push, repeatedly — specified in gem-spec,
/// implemented as a monitor, verified through gem-verify.
#[test]
fn turnstile_end_to_end() {
    // Problem: every Push is enabled by exactly one Coin.
    let gate = ElementType::new("Gate")
        .event("Coin", &["amount"])
        .event("Push", &[]);
    let mut sb = SpecBuilder::new("Turnstile");
    let g = sb.instantiate_element(&gate, "gate").unwrap();
    sb.add_restriction(
        "coin-then-push",
        prerequisite(&g.sel("Coin"), &g.sel("Push")),
    );
    sb.add_restriction(
        "exact-fare",
        Formula::forall(
            "c",
            g.sel("Coin"),
            Formula::value_eq(ValueTerm::param("c", "amount"), ValueTerm::lit(25i64)),
        ),
    );
    let problem = sb.finish();

    // Program: a monitor with Pay and Enter entries; two patrons.
    let monitor = MonitorDef::new("Turnstile")
        .var("credit", 0i64)
        .condition("paid")
        .entry(
            "Pay",
            &["amount"],
            vec![
                Stmt::assign("credit", Expr::var("credit").add(Expr::var("amount"))),
                Stmt::signal("paid"),
            ],
        )
        .entry(
            "Enter",
            &[],
            vec![
                Stmt::If(
                    Expr::var("credit").eq(Expr::int(0)),
                    vec![Stmt::wait("paid")],
                    vec![],
                ),
                Stmt::assign("credit", Expr::var("credit").sub(Expr::int(25))),
            ],
        );
    let mut prog = MonitorProgram::new(monitor);
    for i in 0..2 {
        prog = prog.process(ProcessDef::new(
            format!("patron{i}"),
            vec![
                ScriptStep::Call {
                    entry: "Pay".into(),
                    args: vec![Value::Int(25)],
                },
                ScriptStep::Call {
                    entry: "Enter".into(),
                    args: vec![],
                },
            ],
        ));
    }
    let sys = MonitorSystem::new(prog);

    // Significant objects: the credit increment is the Coin (carrying the
    // amount through the monitor-variable value is wrong — it is the
    // credit total — so map the Begin of Pay with no params and assert
    // fare via the Coin amount of the assignment inside Pay? The assign
    // carries the new credit; instead use the Pay-entry assign and map no
    // params, then drop exact-fare... keep it simple: map Coin from the
    // Pay assigns and give the spec the observed value 25.)
    let ps = problem.structure();
    let gate_el = ps.element("gate").unwrap();
    let corr = Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element("credit"))
                .with_param(1, "Pay"),
            gate_el,
            ps.class("Coin").unwrap(),
            &[(0, 0)],
        )
        .map(
            EventSel::of_class(sys.class("End")).at(sys.entry_element("Enter")),
            gate_el,
            ps.class("Push").unwrap(),
        );
    let outcome = verify_system(
        &sys,
        &problem,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    // The first patron's Pay assigns credit 25 (== fare); if both pay
    // before anyone enters, the second assign is 50 and exact-fare fails
    // on those schedules — which is exactly what the checker must report.
    assert!(!outcome.ok());
    assert!(outcome
        .failures
        .iter()
        .all(|f| f.violated.iter().any(|v| v == "exact-fare")));
    // The prerequisite itself holds everywhere: no failure names it.
    assert!(outcome
        .failures
        .iter()
        .all(|f| !f.violated.iter().any(|v| v == "coin-then-push")));
}

/// The facade re-exports compose: build with gem::core, reason with
/// gem::logic, no substrate involved.
#[test]
fn facade_layers_compose() {
    let mut s = gem::core::Structure::new();
    let ping = s.add_class("Ping", &[]).unwrap();
    let pong = s.add_class("Pong", &[]).unwrap();
    let a = s.add_element("A", &[ping]).unwrap();
    let b = s.add_element("B", &[pong]).unwrap();
    let mut builder = ComputationBuilder::new(s);
    let mut last: Option<gem::core::EventId> = None;
    for i in 0..3 {
        let p = builder.add_event(a, ping, vec![]).unwrap();
        let q = builder.add_event(b, pong, vec![]).unwrap();
        builder.enable(p, q).unwrap();
        if let Some(prev) = last {
            builder.enable(prev, p).unwrap();
        }
        last = Some(q);
        let _ = i;
    }
    let c = builder.seal().unwrap();
    assert!(check_legality(&c).is_empty());
    let f = Formula::forall(
        "q",
        EventSel::of_class(pong),
        Formula::exists("p", EventSel::of_class(ping), Formula::enables("p", "q")),
    );
    let report = check(&f, &c, Strategy::default()).unwrap();
    assert!(report.holds && report.exhaustive);
}

/// The §8.2 *nondeterministic prerequisite* on a real CSP merger: the
/// merger's receive completions are enabled by the output request of
/// either producer — exactly one each.
#[test]
fn nondet_prerequisite_on_csp_merger() {
    use gem::lang::csp::{AltBranch, Comm, CspProcess, CspProgram, CspStmt, CspSystem};
    use gem::logic::holds_on_computation;
    use gem::spec::nondet_prerequisite;

    let merger = CspProcess::new(
        "m",
        vec![CspStmt::Alt(vec![
            AltBranch {
                guard: None,
                comm: Comm::Recv {
                    from: "p1".into(),
                    var: "x".into(),
                },
                body: vec![CspStmt::recv("p2", "y")],
            },
            AltBranch {
                guard: None,
                comm: Comm::Recv {
                    from: "p2".into(),
                    var: "y".into(),
                },
                body: vec![CspStmt::recv("p1", "x")],
            },
        ])],
    )
    .local("x", 0i64)
    .local("y", 0i64);
    let prog = CspProgram::new()
        .process(merger)
        .process(CspProcess::new(
            "p1",
            vec![CspStmt::send("m", Expr::int(1))],
        ))
        .process(CspProcess::new(
            "p2",
            vec![CspStmt::send("m", Expr::int(2))],
        ));
    let sys = CspSystem::new(prog);
    // {p1's OutReq, p2's OutReq} → m's InEnd.
    let sources = vec![
        EventSel::of_class(sys.class("OutReq")).at(sys.out_element(1)),
        EventSel::of_class(sys.class("OutReq")).at(sys.out_element(2)),
    ];
    let target = EventSel::of_class(sys.class("InEnd")).at(sys.in_element(0));
    let f = nondet_prerequisite(&sources, &target);
    let mut runs = 0;
    Explorer::default().for_each_run(&sys, |state, _| {
        runs += 1;
        let c = sys.computation(state).unwrap();
        assert!(holds_on_computation(&f, &c).unwrap());
        ControlFlow::Continue(())
    });
    assert_eq!(runs, 2, "either producer may win the alternative");
}

/// Explorer statistics are consistent with the monitor substrate across
/// the facade.
#[test]
fn explorer_facade_consistency() {
    let monitor = MonitorDef::new("M").var("x", 0i64).entry(
        "Touch",
        &[],
        vec![Stmt::assign("x", Expr::var("x").add(Expr::int(1)))],
    );
    let prog = MonitorProgram::new(monitor)
        .process(ProcessDef::new(
            "p",
            vec![ScriptStep::Call {
                entry: "Touch".into(),
                args: vec![],
            }],
        ))
        .process(ProcessDef::new(
            "q",
            vec![ScriptStep::Call {
                entry: "Touch".into(),
                args: vec![],
            }],
        ));
    let sys = MonitorSystem::new(prog);
    let mut runs = 0;
    let stats = Explorer::default().for_each_run(&sys, |state, _| {
        runs += 1;
        assert!(sys.is_complete(state));
        ControlFlow::Continue(())
    });
    assert_eq!(stats.runs, runs);
    assert!(stats.steps >= stats.runs);
}
