//! Differential harness: compiled step execution must be observationally
//! invisible.
//!
//! `--compile auto|on` replaces the tree-walking statement/expression
//! interpreter in the substrate simulators with slot-resolved
//! environments and a flat Code IR — but verdicts, failure details,
//! deadlock counts, artifacts, and the exploration-level counters of
//! `--stats-json` must be byte-identical to `--compile off` across every
//! substrate (monitor, CSP, ADA), worker count, reduction strategy, and
//! incremental-check mode, on holding, failing, and deadlocking
//! instances alike. Only `code.*` and `explore.compile_ns` (emitted by
//! the CLI when compilation is on) may differ: they describe the
//! compiled programs themselves.

use std::collections::BTreeMap;
use std::sync::Arc;

use gem::core::Computation;
use gem::lang::monitor::readers_writers_monitor;
use gem::lang::{Explorer, System};
use gem::obs::StatsProbe;
use gem::problems::readers_writers::{
    rw_correspondence, rw_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem::problems::{bounded, one_slot, philosophers};
use gem::spec::Specification;
use gem::verify::{verify_system, Correspondence, IncrCheck, VerifyOptions, VerifyOutcome};

/// One probed sweep with the given knobs.
#[allow(clippy::too_many_arguments)] // differential-matrix row, not an API
fn sweep<S>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> Computation,
    jobs: usize,
    dedup: bool,
    por: bool,
    incr: IncrCheck,
) -> (VerifyOutcome, gem::obs::Report)
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let probe = Arc::new(StatsProbe::new());
    let outcome = verify_system(
        sys,
        spec,
        corr,
        extract,
        &VerifyOptions {
            probe: probe.clone(),
            explorer: Explorer {
                jobs,
                split_depth: 3,
                reduce: por,
                dedup_computations: dedup,
                ..Explorer::default()
            },
            incr_check: incr,
            ..VerifyOptions::default()
        },
    )
    .expect("projection");
    (outcome, probe.report())
}

/// The counters that must be invariant under compiled execution:
/// everything the explorer reports, plus the deadlock tally. (The
/// library sweeps here never emit `code.*`/`explore.compile_ns` — those
/// are CLI-level telemetry — so no exclusion is needed.)
fn curated(report: &gem::obs::Report) -> BTreeMap<String, u64> {
    report
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("explore.") || *k == "verify.deadlocks")
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// True when CI widens this suite's matrix (`GEM_TEST_COMPILE=1`): the
/// strategy grid gains the combined dedup+por mode and the worker sweep
/// gains jobs=2. Mirrors `GEM_TEST_INCR` / `GEM_TEST_JOBS` / etc.
fn compile_env() -> bool {
    std::env::var("GEM_TEST_COMPILE").is_ok_and(|v| v.trim() == "1")
}

/// Asserts the compiled system agrees with the interpreted one on
/// outcome and curated counters across reduction strategies,
/// incremental-check modes, and worker counts.
#[allow(clippy::too_many_arguments)] // differential-matrix row, not an API
fn assert_equiv<S>(
    on: &S,
    off: &S,
    spec: &Specification,
    corr_on: &Correspondence,
    corr_off: &Correspondence,
    extract: impl Fn(&S, &S::State) -> Computation + Copy,
    what: &str,
    jobs_list: &[usize],
) where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
{
    let mut rows = vec![
        (false, false, IncrCheck::Auto),
        (true, false, IncrCheck::Auto),
        (false, true, IncrCheck::Auto),
        (false, false, IncrCheck::On),
        (false, false, IncrCheck::Off),
    ];
    let mut jobs_sweep = jobs_list.to_vec();
    if compile_env() {
        rows.push((true, true, IncrCheck::Auto));
        if jobs_list.len() > 1 && !jobs_sweep.contains(&2) {
            jobs_sweep.push(2);
        }
    }
    for (dedup, por, incr) in rows {
        for &jobs in &jobs_sweep {
            let (out_off, rep_off) = sweep(
                off,
                spec,
                corr_off,
                |s| extract(off, s),
                jobs,
                dedup,
                por,
                incr,
            );
            let (out_on, rep_on) = sweep(
                on,
                spec,
                corr_on,
                |s| extract(on, s),
                jobs,
                dedup,
                por,
                incr,
            );
            assert_eq!(
                out_off, out_on,
                "{what}: outcome diverges at jobs={jobs} dedup={dedup} por={por} {incr:?}"
            );
            assert_eq!(
                curated(&rep_off),
                curated(&rep_on),
                "{what}: counters diverge at jobs={jobs} dedup={dedup} por={por} {incr:?}"
            );
        }
    }
}

#[test]
fn monitor_holding_instance_agrees() {
    let on = rw_program(readers_writers_monitor(), 1, 1, false);
    let off = rw_program(readers_writers_monitor(), 1, 1, false).with_compile(false);
    let spec = rw_spec(2, false, RwVariant::MutexOnly);
    let corr_on = rw_correspondence(&on, &spec, false);
    let corr_off = rw_correspondence(&off, &spec, false);
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        |sys, s| sys.computation(s).expect("acyclic"),
        "rw 1r1w mutex",
        &[1, 4],
    );
}

#[test]
fn monitor_failing_instance_agrees() {
    // Readers-priority monitor checked against the writers-priority spec:
    // the sweep FAILS, and the failure list (run indices, violated
    // restriction names, rendered details) must be identical.
    let on = rw_program(readers_writers_monitor(), 1, 2, false);
    let off = rw_program(readers_writers_monitor(), 1, 2, false).with_compile(false);
    let spec = rw_spec(3, false, RwVariant::WritersPriority);
    let corr_on = rw_correspondence(&on, &spec, false);
    let corr_off = rw_correspondence(&off, &spec, false);
    let extract =
        |sys: &gem::lang::monitor::MonitorSystem, s: &_| sys.computation(s).expect("acyclic");
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        extract,
        "rw 1r2w writers",
        &[1, 4],
    );
    let (outcome, _) = sweep(
        &on,
        &spec,
        &corr_on,
        |s| extract(&on, s),
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert!(!outcome.ok(), "{outcome}");
    assert!(!outcome.failures.is_empty());
}

#[test]
fn monitor_wait_signal_heavy_instance_agrees() {
    // The writers-priority monitor against the readers-priority spec:
    // exercises Hoare signal chains, urgent-queue handoff, and condition
    // queues through the compiled entry programs.
    let on = rw_program(writers_priority_monitor(), 2, 1, false);
    let off = rw_program(writers_priority_monitor(), 2, 1, false).with_compile(false);
    let spec = rw_spec(3, false, RwVariant::ReadersPriority);
    let corr_on = rw_correspondence(&on, &spec, false);
    let corr_off = rw_correspondence(&off, &spec, false);
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        |sys, s| sys.computation(s).expect("acyclic"),
        "rw 2r1w readers-on-writers",
        &[1, 4],
    );
}

#[test]
fn csp_substrate_agrees() {
    let items: Vec<i64> = vec![1, 2];
    let spec = bounded::bounded_spec(items.len(), 1);
    let on = bounded::csp_solution(&items, 1);
    let off = bounded::csp_solution(&items, 1).with_compile(false);
    let corr_on = bounded::csp_correspondence(&on, &spec, 1);
    let corr_off = bounded::csp_correspondence(&off, &spec, 1);
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        |sys, s| sys.computation(s).expect("acyclic"),
        "bounded csp",
        &[1, 4],
    );
}

#[test]
fn ada_substrate_agrees() {
    let items: Vec<i64> = vec![10, 20];
    let spec = one_slot::one_slot_spec();
    let on = one_slot::ada_solution(&items);
    let off = one_slot::ada_solution(&items).with_compile(false);
    let corr_on = one_slot::ada_correspondence(&on, &spec);
    let corr_off = one_slot::ada_correspondence(&off, &spec);
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        |sys, s| sys.computation(s).expect("acyclic"),
        "one-slot ada",
        &[1, 4],
    );
}

#[test]
fn deadlocking_instance_agrees() {
    // Naive-order philosophers deadlock; truncated runs and the deadlock
    // tally must match between execution modes.
    let on = philosophers::philosophers_program(2, 1, philosophers::ForkOrder::Naive);
    let off = philosophers::philosophers_program(2, 1, philosophers::ForkOrder::Naive)
        .with_compile(false);
    let spec = philosophers::philosophers_spec(2);
    let corr_on = philosophers::philosophers_correspondence(&on, &spec, 2);
    let corr_off = philosophers::philosophers_correspondence(&off, &spec, 2);
    let extract = |sys: &gem::lang::ada::AdaSystem, s: &_| sys.computation(s).expect("acyclic");
    assert_equiv(
        &on,
        &off,
        &spec,
        &corr_on,
        &corr_off,
        extract,
        "philosophers naive",
        &[1, 4],
    );
    let (outcome, _) = sweep(
        &on,
        &spec,
        &corr_on,
        |s| extract(&on, s),
        1,
        false,
        false,
        IncrCheck::Auto,
    );
    assert!(outcome.deadlocks > 0, "{outcome}");
}

#[test]
fn cli_artifacts_and_stats_agree_across_modes() {
    // Full CLI path on the failing instance with artifacts: stdout, every
    // counterexample artifact file, and the stats report (minus timers,
    // `code.*`, and `explore.compile_ns`) must match `--compile off`.
    let dir = std::env::temp_dir().join(format!("gem-compile-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run_mode = |mode: &str| -> (String, String, BTreeMap<String, String>) {
        let art = dir.join(format!("artifacts-{mode}"));
        let stats = dir.join(format!("stats-{mode}.json"));
        let args: Vec<String> = [
            "verify",
            "rw",
            "readers=1",
            "writers=2",
            "variant=writers",
            "--compile",
            mode,
            "--artifacts",
            art.to_str().expect("utf-8"),
            "--stats-json",
            stats.to_str().expect("utf-8"),
            "--heartbeat",
            "0",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        // Artifact paths differ per mode; normalise them out of stdout.
        let stdout = gem_cli::run(&args)
            .expect("cli run")
            .replace(art.to_str().expect("utf-8"), "<artifacts>");
        let report =
            gem::obs::Report::from_json(&std::fs::read_to_string(&stats).expect("stats written"))
                .expect("valid report");
        // `code.*` describes the compiled programs and only exists when
        // compilation is on; everything else must match `off` exactly.
        // (`explore.compile_ns` is a `_ns` histogram, not a counter, so
        // it never enters this map.)
        let kept: BTreeMap<String, u64> = report
            .counters
            .iter()
            .filter(|(k, _)| !k.starts_with("code."))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let mut files = BTreeMap::new();
        for entry in std::fs::read_dir(&art).expect("artifact dir") {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            files.insert(
                name,
                std::fs::read_to_string(entry.path()).expect("artifact file"),
            );
        }
        (stdout, format!("{kept:?}"), files)
    };
    let (off_out, off_counters, off_files) = run_mode("off");
    for mode in ["auto", "on"] {
        let (out, counters, files) = run_mode(mode);
        assert_eq!(off_out, out, "stdout diverges in mode {mode}");
        assert_eq!(off_counters, counters, "counters diverge in mode {mode}");
        assert_eq!(
            off_files.keys().collect::<Vec<_>>(),
            files.keys().collect::<Vec<_>>(),
            "artifact file set diverges in mode {mode}"
        );
        for (name, body) in &off_files {
            assert_eq!(
                body, &files[name],
                "artifact {name} diverges in mode {mode}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_substrates_agree_across_modes() {
    // Verdict lines on CSP and ADA instances must not depend on the
    // compile mode either.
    for problem in [
        vec!["verify", "bounded", "items=2", "cap=1", "substrate=csp"],
        vec!["verify", "one-slot", "items=2", "substrate=ada"],
    ] {
        let run_mode = |mode: &str| {
            let mut args: Vec<String> = problem.iter().map(|s| (*s).to_owned()).collect();
            args.extend([
                "--compile".to_owned(),
                mode.to_owned(),
                "--heartbeat".to_owned(),
                "0".to_owned(),
            ]);
            gem_cli::run(&args).expect("cli run")
        };
        let off = run_mode("off");
        assert_eq!(off, run_mode("auto"), "{problem:?}");
        assert_eq!(off, run_mode("on"), "{problem:?}");
    }
}

mod expr_codegen {
    //! Property: for random expressions (well-typed or not), compiling
    //! into the postfix Code IR and evaluating over slots produces
    //! exactly `Expr::eval`'s result — value *and* error alike.

    use gem::core::Value;
    use gem::lang::code::{ExprPool, SlotLayout};
    use gem::lang::{Expr, VarStore};
    use proptest::prelude::*;

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-4i64..5).prop_map(Expr::int),
            any::<bool>().prop_map(Expr::bool),
            prop_oneof![Just("s1"), Just("s2")].prop_map(Expr::str),
            // `u` stays unbound, exercising UndefinedVariable parity.
            prop_oneof![Just("a"), Just("b"), Just("c"), Just("u")].prop_map(Expr::var),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0usize..13).prop_map(|(l, r, op)| match op {
                    0 => l.add(r),
                    1 => l.sub(r),
                    2 => l.mul(r),
                    3 => l.div(r),
                    4 => l.rem(r),
                    5 => l.eq(r),
                    6 => l.ne(r),
                    7 => l.lt(r),
                    8 => l.le(r),
                    9 => l.gt(r),
                    10 => l.ge(r),
                    11 => l.and(r),
                    _ => l.or(r),
                }),
                inner.clone().prop_map(|e| e.not()),
                inner.prop_map(|e| e.neg()),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn compiled_eval_matches_interpreter(e in arb_expr()) {
            let mut store = VarStore::new();
            store.set("a", Value::Int(3));
            store.set("b", Value::Bool(true));
            store.set("c", Value::Str("s1".into()));
            let mut locals = SlotLayout::new();
            for n in ["a", "b", "c", "u"] {
                locals.intern(n);
            }
            let lslots = vec![
                Some(Value::Int(3)),
                Some(Value::Bool(true)),
                Some(Value::Str("s1".into())),
                None,
            ];
            let globals = SlotLayout::new();
            let mut pool = ExprPool::new();
            let id = pool.compile(&e, &locals, &globals);
            prop_assert_eq!(pool.eval(id, &[], &lslots), e.eval(&store));
        }

        #[test]
        fn globals_show_through_unbound_locals(e in arb_expr()) {
            // Locals shadow globals, but an unbound local slot falls
            // through: compile against a layout where `a` is a local yet
            // only the global scope binds it.
            let mut store = VarStore::new();
            store.set("a", Value::Int(7));
            store.set("b", Value::Bool(false));
            store.set("c", Value::Str("s2".into()));
            let mut locals = SlotLayout::new();
            locals.intern("a");
            let mut globals = SlotLayout::new();
            for n in ["a", "b", "c"] {
                globals.intern(n);
            }
            let gslots = vec![
                Value::Int(7),
                Value::Bool(false),
                Value::Str("s2".into()),
            ];
            let lslots = vec![None]; // `a` declared locally, never bound
            let mut pool = ExprPool::new();
            let id = pool.compile(&e, &locals, &globals);
            prop_assert_eq!(pool.eval(id, &gslots, &lslots), e.eval(&store));
        }
    }
}
