//! The docs/TUTORIAL.md walkthrough, compiled and asserted — if the
//! tutorial's code rots, this test fails.

use gem::logic::{CmpOp, EventSel, Formula, ValueTerm};
use gem::spec::{render_specification, ElementType, SpecBuilder, Specification};

use gem::lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem::lang::Expr;
use gem::verify::{verify_system, Correspondence, VerifyOptions};

fn dispenser_spec() -> Specification {
    let dispenser = ElementType::new("Dispenser")
        .event("Take", &["number"])
        .restriction("numbers-strictly-increase", |inst, _s| {
            Formula::forall(
                "a",
                inst.sel("Take"),
                Formula::forall(
                    "b",
                    inst.sel("Take"),
                    Formula::element_precedes("a", "b").implies(Formula::value_cmp(
                        CmpOp::Lt,
                        ValueTerm::param("a", "number"),
                        ValueTerm::param("b", "number"),
                    )),
                ),
            )
        });
    let mut sb = SpecBuilder::new("TicketDispenser");
    sb.instantiate_element(&dispenser, "disp").unwrap();
    sb.finish()
}

fn dispenser_program(customers: usize) -> MonitorSystem {
    let monitor = MonitorDef::new("Tickets").var("next", 0i64).entry(
        "Take",
        &[],
        vec![Stmt::assign("next", Expr::var("next").add(Expr::int(1)))],
    );
    let mut prog = MonitorProgram::new(monitor);
    for i in 0..customers {
        prog = prog.process(ProcessDef::new(
            format!("cust{i}"),
            vec![ScriptStep::Call {
                entry: "Take".into(),
                args: vec![],
            }],
        ));
    }
    MonitorSystem::new(prog)
}

fn correspondence(sys: &MonitorSystem, spec: &Specification) -> Correspondence {
    let ps = spec.structure();
    Correspondence::new().map_with_params(
        EventSel::of_class(sys.class("Assign"))
            .at(sys.var_element("next"))
            .with_param(1, "Take"),
        ps.element("disp").unwrap(),
        ps.class("Take").unwrap(),
        &[(0, 0)],
    )
}

#[test]
fn tutorial_verifies() {
    let sys = dispenser_program(3);
    let spec = dispenser_spec();
    let corr = correspondence(&sys, &spec);
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(outcome.ok(), "{outcome}");
    assert!(outcome.exhaustive());
    // The rendered spec mentions the restriction.
    let text = render_specification(&spec);
    assert!(text.contains("numbers-strictly-increase"));
}

#[test]
fn tutorial_break_it_variant_fails() {
    // "Break it": each customer stamps its own constant ticket — numbers
    // repeat, violating strict increase.
    let monitor = MonitorDef::new("Tickets").entry("Noop", &[], vec![]);
    let mut prog = MonitorProgram::new(monitor).shared_var("next", 0i64);
    for i in 0..2 {
        prog = prog.process(ProcessDef::new(
            format!("cust{i}"),
            vec![ScriptStep::WriteShared {
                var: "next".into(),
                value: Expr::int(1), // everyone claims ticket 1
            }],
        ));
    }
    let sys = MonitorSystem::new(prog);
    let spec = dispenser_spec();
    let ps = spec.structure();
    // Shared writes carry entry "" as parameter 1.
    let corr = Correspondence::new().map_with_params(
        EventSel::of_class(sys.class("Assign"))
            .at(sys.var_element("next"))
            .with_param(1, ""),
        ps.element("disp").unwrap(),
        ps.class("Take").unwrap(),
        &[(0, 0)],
    );
    let outcome = verify_system(
        &sys,
        &spec,
        &corr,
        |s| sys.computation(s).unwrap(),
        &VerifyOptions::default(),
    )
    .unwrap();
    assert!(
        !outcome.ok(),
        "racing increments must violate strict increase: {outcome}"
    );
}
