//! Formula blame: *why* did a restriction fail on this sequence?
//!
//! [`check`](crate::check) reports that some valid history sequence
//! falsifies a restriction, but the formula is a tree of quantifiers and
//! connectives — the user still has to re-derive which subformula, which
//! binding, and which events broke it. [`blame_on_sequence`] re-runs the
//! evaluator along the *falsifying path* only: at each node it records a
//! [`BlameFrame`] naming the subformula, what it was expected to be, and
//! the witness binding that decided the outcome (the failing `FORALL`
//! candidate, the failing conjunct index, the suffix where a `◻` broke).
//! The chain from root to leaf is the machine-readable core of a
//! counterexample artifact's `blame.json`, and the collected witness
//! events drive blamed-event highlighting in the dot export.

use gem_core::{Computation, EventId, History};

use crate::eval::{eval, Env, EvalError};
use crate::Formula;

/// One step of the falsification path, from the root restriction down to
/// the deciding atom.
#[derive(Clone, Debug)]
pub struct BlameFrame {
    /// Node kind (`forall`, `and`, `henceforth`, `atom`, …).
    pub kind: &'static str,
    /// The subformula at this node, rendered against the structure
    /// (truncated if very large).
    pub node: String,
    /// The truth value this node was required to have on the blamed path.
    pub expect: bool,
    /// Why the node misses its expectation: which conjunct, which
    /// candidate, which suffix.
    pub note: String,
    /// Bindings introduced or implicated at this node, as
    /// `(variable, event)` pairs.
    pub witnesses: Vec<(String, EventId)>,
}

/// The falsification path of one restriction on one history sequence.
#[derive(Clone, Debug)]
pub struct Blame {
    /// Frames from the root formula down to the deciding leaf.
    pub frames: Vec<BlameFrame>,
}

impl Blame {
    /// All witness events implicated anywhere on the path, deduplicated
    /// in first-seen order — the set to highlight in a counterexample
    /// rendering.
    pub fn witness_events(&self) -> Vec<EventId> {
        let mut out = Vec::new();
        for frame in &self.frames {
            for &(_, e) in &frame.witnesses {
                if !out.contains(&e) {
                    out.push(e);
                }
            }
        }
        out
    }
}

/// Truncation bound for rendered subformulae in frames: blame output is
/// for humans and diffs, not a parser.
const NODE_RENDER_MAX: usize = 240;

fn rendered(f: &Formula, computation: &Computation) -> String {
    let mut text = f.render(computation.structure());
    if text.chars().count() > NODE_RENDER_MAX {
        let cut: String = text.chars().take(NODE_RENDER_MAX).collect();
        text = format!("{cut}…");
    }
    text
}

/// Explains why `formula` fails on `seq`: `Ok(None)` when it holds,
/// otherwise the root-to-leaf falsification path.
///
/// # Errors
///
/// Propagates [`EvalError`] for malformed formulae or an empty sequence.
pub fn blame_on_sequence(
    formula: &Formula,
    computation: &Computation,
    seq: &[History],
) -> Result<Option<Blame>, EvalError> {
    if seq.is_empty() {
        return Err(EvalError::EmptySequence);
    }
    let mut env = Env::default();
    if eval(formula, computation, seq, &mut env)? {
        return Ok(None);
    }
    let mut frames = Vec::new();
    descend(formula, computation, seq, &mut env, true, &mut frames)?;
    Ok(Some(Blame { frames }))
}

/// Explains why `formula` fails on the complete computation (the full
/// history as a one-element sequence), the reading used for
/// computation-level restrictions.
///
/// # Errors
///
/// Propagates [`EvalError`] for malformed formulae.
pub fn blame_on_computation(
    formula: &Formula,
    computation: &Computation,
) -> Result<Option<Blame>, EvalError> {
    blame_on_sequence(formula, computation, &[History::full(computation)])
}

/// Walks the falsifying path of `formula`, which is known to evaluate to
/// `!expect`, appending one frame per node.
fn descend(
    formula: &Formula,
    computation: &Computation,
    seq: &[History],
    env: &mut Env,
    expect: bool,
    frames: &mut Vec<BlameFrame>,
) -> Result<(), EvalError> {
    let mut frame = BlameFrame {
        kind: "?",
        node: rendered(formula, computation),
        expect,
        note: String::new(),
        witnesses: Vec::new(),
    };
    macro_rules! leaf {
        ($kind:expr, $note:expr) => {{
            frame.kind = $kind;
            frame.note = $note;
            frames.push(frame);
            return Ok(());
        }};
    }
    let label = |e: EventId| computation.event_label(e);
    match formula {
        Formula::True => leaf!("true", "the literal true (was required false)".into()),
        Formula::False => leaf!("false", "the literal false (was required true)".into()),
        Formula::Atom(_) => {
            // The deciding leaf: record the bindings in scope so the
            // atom's variables are resolvable to concrete events.
            frame.witnesses = env.bindings.clone();
            let bound = if env.bindings.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> = env
                    .bindings
                    .iter()
                    .map(|(v, e)| format!("{v} = {}", label(*e)))
                    .collect();
                format!(" under [{}]", pairs.join(", "))
            };
            leaf!(
                "atom",
                format!(
                    "atom evaluates to {}{bound}",
                    if expect { "false" } else { "true" }
                )
            );
        }
        Formula::Not(inner) => {
            frame.kind = "not";
            frame.note = format!(
                "negation: operand must be shown {}",
                if expect { "true" } else { "false" }
            );
            frames.push(frame);
            descend(inner, computation, seq, env, !expect, frames)
        }
        Formula::And(fs) => {
            if expect {
                for (i, f) in fs.iter().enumerate() {
                    if !eval(f, computation, seq, env)? {
                        frame.kind = "and";
                        frame.note = format!("conjunct {}/{} fails", i + 1, fs.len());
                        frames.push(frame);
                        return descend(f, computation, seq, env, true, frames);
                    }
                }
                leaf!(
                    "and",
                    "no failing conjunct found (evaluation raced?)".into()
                );
            }
            leaf!("and", format!("all {} conjuncts hold", fs.len()));
        }
        Formula::Or(fs) => {
            if expect {
                frame.kind = "or";
                frame.note = format!("all {} disjuncts fail; expanding the first", fs.len());
                frames.push(frame);
                match fs.first() {
                    Some(f) => descend(f, computation, seq, env, true, frames),
                    None => Ok(()),
                }
            } else {
                for (i, f) in fs.iter().enumerate() {
                    if eval(f, computation, seq, env)? {
                        frame.kind = "or";
                        frame.note = format!("disjunct {}/{} holds", i + 1, fs.len());
                        frames.push(frame);
                        return descend(f, computation, seq, env, false, frames);
                    }
                }
                leaf!("or", "no holding disjunct found (evaluation raced?)".into());
            }
        }
        Formula::Implies(a, b) => {
            if expect {
                frame.kind = "implies";
                frame.note = "antecedent holds but consequent fails".into();
                frames.push(frame);
                descend(b, computation, seq, env, true, frames)
            } else {
                // The implication holds: either the antecedent fails or
                // the consequent holds.
                if !eval(a, computation, seq, env)? {
                    frame.kind = "implies";
                    frame.note = "holds vacuously: antecedent fails".into();
                    frames.push(frame);
                    descend(a, computation, seq, env, true, frames)
                } else {
                    frame.kind = "implies";
                    frame.note = "holds: consequent holds".into();
                    frames.push(frame);
                    descend(b, computation, seq, env, false, frames)
                }
            }
        }
        Formula::Iff(a, b) => {
            let va = eval(a, computation, seq, env)?;
            let vb = eval(b, computation, seq, env)?;
            if expect {
                frame.kind = "iff";
                frame.note = format!("sides disagree: lhs is {va}, rhs is {vb}");
                frames.push(frame);
                // Expand the false side: showing why it fails pins the
                // disagreement.
                if va {
                    descend(b, computation, seq, env, true, frames)
                } else {
                    descend(a, computation, seq, env, true, frames)
                }
            } else {
                leaf!("iff", format!("sides agree: both are {va}"));
            }
        }
        Formula::ForAll(var, sel, body) => {
            if expect {
                let candidates: Vec<EventId> = sel.select(computation).collect();
                let total = candidates.len();
                for e in candidates {
                    env.bindings.push((var.clone(), e));
                    let ok = eval(body, computation, seq, env)?;
                    if !ok {
                        frame.kind = "forall";
                        frame.note =
                            format!("fails for {var} = {} (of {total} candidates)", label(e));
                        frame.witnesses.push((var.clone(), e));
                        frames.push(frame);
                        let result = descend(body, computation, seq, env, true, frames);
                        env.bindings.pop();
                        return result;
                    }
                    env.bindings.pop();
                }
                leaf!(
                    "forall",
                    "no failing candidate found (evaluation raced?)".into()
                );
            }
            let total = sel.select(computation).count();
            leaf!("forall", format!("holds for all {total} candidates"));
        }
        Formula::Exists(var, sel, body) => {
            if expect {
                let total = sel.select(computation).count();
                leaf!("exists", format!("no witness among {total} candidates"));
            }
            let candidates: Vec<EventId> = sel.select(computation).collect();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                if ok {
                    frame.kind = "exists";
                    frame.note = format!("witness {var} = {}", label(e));
                    frame.witnesses.push((var.clone(), e));
                    frames.push(frame);
                    let result = descend(body, computation, seq, env, false, frames);
                    env.bindings.pop();
                    return result;
                }
                env.bindings.pop();
            }
            leaf!("exists", "no witness found (evaluation raced?)".into());
        }
        Formula::ExistsUnique(var, sel, body) | Formula::AtMostOne(var, sel, body) => {
            let unique = matches!(formula, Formula::ExistsUnique(..));
            let kind = if unique {
                "exists_unique"
            } else {
                "at_most_one"
            };
            let candidates: Vec<EventId> = sel.select(computation).collect();
            let total = candidates.len();
            let mut witnesses = Vec::new();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                env.bindings.pop();
                if ok {
                    witnesses.push(e);
                    if witnesses.len() > 2 {
                        break;
                    }
                }
            }
            frame
                .witnesses
                .extend(witnesses.iter().map(|&e| (var.clone(), e)));
            let shown: Vec<String> = witnesses.iter().map(|&e| label(e)).collect();
            if expect {
                if witnesses.len() >= 2 {
                    leaf!(
                        kind,
                        format!(
                            "{} witnesses among {total} candidates (first two: {})",
                            witnesses.len(),
                            shown.join(", ")
                        )
                    );
                }
                leaf!(kind, format!("no witness among {total} candidates"));
            }
            leaf!(
                kind,
                format!("holds with witness(es): [{}]", shown.join(", "))
            );
        }
        Formula::Henceforth(inner) => {
            if expect {
                for i in 0..seq.len() {
                    if !eval(inner, computation, &seq[i..], env)? {
                        frame.kind = "henceforth";
                        frame.note = format!(
                            "fails at suffix {i} of {} (history sizes {:?})",
                            seq.len(),
                            suffix_sizes(seq, i)
                        );
                        frames.push(frame);
                        return descend(inner, computation, &seq[i..], env, true, frames);
                    }
                }
                leaf!(
                    "henceforth",
                    "no failing suffix found (evaluation raced?)".into()
                );
            }
            leaf!(
                "henceforth",
                format!("holds at every of {} suffixes", seq.len())
            );
        }
        Formula::Eventually(inner) => {
            if expect {
                frame.kind = "eventually";
                frame.note = format!(
                    "body fails at every of {} suffixes; expanding suffix 0",
                    seq.len()
                );
                frames.push(frame);
                descend(inner, computation, seq, env, true, frames)
            } else {
                for i in 0..seq.len() {
                    if eval(inner, computation, &seq[i..], env)? {
                        frame.kind = "eventually";
                        frame.note = format!("holds at suffix {i} of {}", seq.len());
                        frames.push(frame);
                        return descend(inner, computation, &seq[i..], env, false, frames);
                    }
                }
                leaf!(
                    "eventually",
                    "no holding suffix found (evaluation raced?)".into()
                );
            }
        }
    }
}

/// History sizes of the first few steps from `i`, for suffix notes.
fn suffix_sizes(seq: &[History], i: usize) -> Vec<usize> {
    seq[i..].iter().take(4).map(History::len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventSel, ValueTerm};
    use gem_core::{ComputationBuilder, HistorySequence, Structure, Value};

    /// Variable computation with a *wrong* read: Assign(1) ⊳ Getval(7).
    fn bad_var_comp() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let getval = s.add_class("Getval", &["oldval"]).unwrap();
        let var = s.add_element("Var", &[assign, getval]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let e2 = b.add_event(var, getval, vec![Value::Int(7)]).unwrap();
        b.enable(e1, e2).unwrap();
        (b.seal().unwrap(), vec![e1, e2])
    }

    fn read_correctness(c: &Computation) -> Formula {
        let s = c.structure();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        Formula::forall(
            "a",
            EventSel::of_class(assign),
            Formula::forall(
                "g",
                EventSel::of_class(getval),
                Formula::enables("a", "g").implies(Formula::value_eq(
                    ValueTerm::param("a", "newval"),
                    ValueTerm::param("g", "oldval"),
                )),
            ),
        )
    }

    #[test]
    fn holds_means_no_blame() {
        let (c, e) = bad_var_comp();
        let blame = blame_on_computation(&Formula::occurred(e[0]), &c).unwrap();
        assert!(blame.is_none());
    }

    #[test]
    fn forall_blame_names_the_failing_bindings() {
        let (c, e) = bad_var_comp();
        let f = read_correctness(&c);
        let blame = blame_on_computation(&f, &c).unwrap().expect("fails");
        let kinds: Vec<&str> = blame.frames.iter().map(|fr| fr.kind).collect();
        assert_eq!(kinds, ["forall", "forall", "implies", "atom"], "{blame:#?}");
        assert!(
            blame.frames[0].note.contains("a = Var.Assign^0"),
            "{blame:#?}"
        );
        assert!(
            blame.frames[1].note.contains("g = Var.Getval^1"),
            "{blame:#?}"
        );
        // Both bound events are implicated.
        let witnesses = blame.witness_events();
        assert!(
            witnesses.contains(&e[0]) && witnesses.contains(&e[1]),
            "{witnesses:?}"
        );
        // The leaf atom carries the full binding context.
        let leaf = blame.frames.last().unwrap();
        assert!(leaf.note.contains("a = Var.Assign^0"), "{leaf:?}");
        assert!(leaf.note.contains("g = Var.Getval^1"), "{leaf:?}");
    }

    #[test]
    fn negation_flips_expectation() {
        let (c, e) = bad_var_comp();
        // NOT occurred(e1) fails because occurred(e1) holds.
        let f = Formula::occurred(e[0]).not();
        let blame = blame_on_computation(&f, &c).unwrap().expect("fails");
        assert_eq!(blame.frames[0].kind, "not");
        let leaf = blame.frames.last().unwrap();
        assert_eq!(leaf.kind, "atom");
        assert!(!leaf.expect, "atom was required false");
        assert!(leaf.note.contains("evaluates to true"), "{leaf:?}");
    }

    #[test]
    fn exists_blame_reports_candidate_count() {
        let (c, _) = bad_var_comp();
        let s = c.structure();
        let assign = s.class("Assign").unwrap();
        // No Assign writes 9.
        let f = Formula::exists(
            "a",
            EventSel::of_class(assign),
            Formula::value_eq(ValueTerm::param("a", "newval"), ValueTerm::lit(9i64)),
        );
        let blame = blame_on_computation(&f, &c).unwrap().expect("fails");
        assert_eq!(blame.frames.len(), 1);
        assert!(
            blame.frames[0]
                .note
                .contains("no witness among 1 candidates"),
            "{blame:#?}"
        );
    }

    #[test]
    fn henceforth_blame_points_at_the_suffix() {
        let (c, e) = bad_var_comp();
        let seq = HistorySequence::from_linearization(&c, &[e[0], e[1]]);
        // ◻ ¬occurred(getval): fails at the suffix where e2 appears.
        let f = Formula::occurred(e[1]).not().henceforth();
        let blame = blame_on_sequence(&f, &c, seq.histories())
            .unwrap()
            .expect("fails");
        assert_eq!(blame.frames[0].kind, "henceforth");
        assert!(
            blame.frames[0].note.contains("fails at suffix"),
            "{blame:#?}"
        );
    }

    #[test]
    fn at_most_one_blame_shows_two_witnesses() {
        let (c, _) = bad_var_comp();
        let s = c.structure();
        let any = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        let f = Formula::at_most_one("x", EventSel::any(), Formula::occurred("x"));
        let blame = blame_on_computation(&f, &c).unwrap().expect("fails");
        let frame = &blame.frames[0];
        assert_eq!(frame.kind, "at_most_one");
        assert_eq!(frame.witnesses.len(), 2, "{frame:?}");
        let _ = (any, getval);
    }
}
