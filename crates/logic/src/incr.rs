//! Incremental restriction evaluation along a growing computation prefix.
//!
//! The batch checkers ([`check`](crate::check) / [`check_many`]) decide a
//! temporal restriction by enumerating history sequences of a *finished*
//! computation — O(sequences × formula) per run. During state-space
//! exploration the runs share prefixes along the DFS tree, and almost all
//! of that work is repeated. This module compiles a restriction into an
//! **incremental evaluator**: processing each event once, as it is
//! emitted, in O(formula) — so a whole DFS subtree pays for its common
//! prefix once.
//!
//! ## The compilation contract
//!
//! Three shapes are supported (everything else falls back to batch):
//!
//! 1. **Leaf** — non-temporal restrictions. These are immediate
//!    assertions evaluated on the single full history
//!    (`Strategy::Complete` semantics), so nothing per-prefix is needed:
//!    [`eval_full`] decides them structurally at the leaf from the
//!    incremental projection state, skipping seal/projection entirely.
//! 2. **Box** — `◻ ∀x̄ · body` with a quantifier-free (after rewriting)
//!    body. The negated body is put in disjunctive normal form; each
//!    conjunct is a set of *In* events (must have occurred), *Out*
//!    events (must not have), frozen static literals, and *All-out* sets
//!    (no matching event may have occurred). A violation exists iff some
//!    binding makes a conjunct *realizable*: statics hold and no
//!    Out/All-out event lies in the downward closure of the In events —
//!    the minimal witness downset.
//! 3. **BoxBox** — `◻ ∀x̄ (γ ⊃ ◻ δ)` (the `priority`/`fcfs`
//!    abbreviations). Falsified iff some binding admits a pair of
//!    downsets `D₁ ⊆ D₂` with `γ` at `D₁` and `¬δ` at `D₂`; the minimal
//!    witnesses are `down(In₁)` and `down(In₁ ∪ In₂)`.
//!
//! ## Why once-per-event is enough
//!
//! For simulation-grown computations every edge targets the newest
//! event, so (a) the temporal order between two existing events is
//! final, (b) the truth of a quantifier-free body at a *fixed* downset
//! never changes as the computation grows, and (c) a binding's
//! realizability is final the moment its last event is emitted: later
//! events can never precede existing ones, so they neither enter the
//! witness downsets nor break them. Each binding is therefore checked
//! exactly once — when its newest event arrives — and violations are
//! sticky for the whole DFS subtree below that point.
//!
//! Unsupported constructs inside a temporal body (positive `∃`, inner
//! `∀`/`◇`, `new`/`potential`, non-variable event terms, thread-instance
//! selectors, order atoms under an `∃`) make the truth of a fixed-downset
//! body time-dependent or require re-visiting old bindings; [`compile`]
//! rejects them with a [`FallbackReason`] and the caller keeps using the
//! batch checker for that restriction.

use std::fmt;

use gem_core::{ClassId, ElementId, ThreadTypeId, Value};

use crate::{Atom, CmpOp, EventSel, EventTerm, Formula, ParamRef, ValueTerm};

/// The oracle an incremental evaluator reads: a view of the (projected)
/// computation built so far. Implemented by the verification driver over
/// its prefix-synchronised projection state.
///
/// Events are addressed by dense indices in emission order. All order
/// queries must be final for already-emitted pairs (true for
/// simulation-grown computations, where every edge targets the newest
/// event).
pub trait IncrWorld {
    /// Number of events emitted so far.
    fn event_count(&self) -> usize;
    /// Element of event `e`.
    fn element_of(&self, e: usize) -> ElementId;
    /// Class of event `e`.
    fn class_of(&self, e: usize) -> ClassId;
    /// Occurrence number of `e` at its element.
    fn seq_of(&self, e: usize) -> u32;
    /// Parameters of event `e`.
    fn params_of(&self, e: usize) -> &[Value];
    /// The canonical instance of the unique thread tag of type `ty` on
    /// `e`, if any. The driver must guarantee at most one tag per type
    /// (falling back otherwise), so instance equality is well defined.
    fn thread_instance(&self, e: usize, ty: ThreadTypeId) -> Option<u32>;
    /// Temporal order (final for emitted pairs).
    fn precedes(&self, a: usize, b: usize) -> bool;
    /// Direct enable edge.
    fn enables(&self, a: usize, b: usize) -> bool;
    /// Events directly enabled by `e` (emitted so far).
    fn enabled_from(&self, e: usize) -> &[u32];
    /// The `i`-th event at `element`, if emitted.
    fn nth_at(&self, element: ElementId, i: usize) -> Option<usize>;
    /// Positional index of named parameter `name` in `class`.
    fn param_index(&self, class: ClassId, name: &str) -> Option<usize>;
}

/// Why a restriction could not be compiled incrementally. Recorded per
/// restriction under `logic.incr.*` so fallbacks are attributable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FallbackReason {
    /// Temporal structure other than `◻∀*(body)` / `◻∀*(γ ⊃ ◻δ)` — e.g.
    /// `◇`, nested quantifier/temporal mixes.
    TemporalShape,
    /// A positive existential (or negated universal) inside a temporal
    /// body — would require re-checking old bindings as witnesses arrive.
    PositiveExists,
    /// `new` / `potential` — time-dependent at a fixed downset.
    TimeDependentAtom,
    /// A non-variable event term (`EL^i` / fixed id) inside a temporal
    /// body — its resolution changes as events arrive.
    NonVariableTerm,
    /// A selector constrains a concrete thread instance, whose numbering
    /// is assignment-dependent.
    ThreadInstanceSel,
    /// An unbound event variable (the batch checker reports an
    /// evaluation error; keep that behavior).
    UnboundVariable,
    /// Disjunctive normal form exceeded the compilation budget.
    Budget,
    /// An order atom under an existential quantifier.
    OrderAtomUnderExists,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FallbackReason::TemporalShape => "temporal-shape",
            FallbackReason::PositiveExists => "positive-exists",
            FallbackReason::TimeDependentAtom => "time-dependent-atom",
            FallbackReason::NonVariableTerm => "non-variable-term",
            FallbackReason::ThreadInstanceSel => "thread-instance-selector",
            FallbackReason::UnboundVariable => "unbound-variable",
            FallbackReason::Budget => "dnf-budget",
            FallbackReason::OrderAtomUnderExists => "order-atom-under-exists",
        };
        f.write_str(s)
    }
}

/// Evaluation failed at run time (parameter reference errors — exactly
/// the conditions under which the batch evaluator raises
/// [`EvalError`](crate::EvalError)). The caller falls back to batch for
/// the run so error reporting stays identical.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IncrEvalError;

/// A compiled restriction.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// Non-temporal: evaluate the original formula at the leaf with
    /// [`eval_full`].
    Leaf,
    /// `◻∀*` shape: check bindings incrementally with
    /// [`BoxShape::check_event`].
    Boxed(BoxShape),
}

impl Compiled {
    /// True for the non-temporal leaf shape.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Compiled::Leaf)
    }
}

/// A quantified variable of the `∀` prefix.
#[derive(Clone, Debug)]
pub struct QVar {
    /// Variable name (for diagnostics).
    pub name: String,
    /// Candidate selector.
    pub sel: EventSel,
}

/// The compiled form of `◻∀x̄·body` / `◻∀x̄(γ ⊃ ◻δ)`.
///
/// `pairs` enumerates the ways the restriction can be falsified: for the
/// single-box shape each pair's second conjunct is empty (trivially
/// realizable); for the double-box shape the first conjunct comes from
/// `DNF(γ)` and the second from `DNF(¬δ)`.
#[derive(Clone, Debug)]
pub struct BoxShape {
    /// The `∀` prefix, outermost first.
    pub vars: Vec<QVar>,
    pairs: Vec<(Conjunct, Conjunct)>,
}

/// Index of a bound variable; `FRESH` refers to an All-out set's local
/// candidate variable.
type VarIx = u8;
const FRESH: VarIx = u8::MAX;

/// A frozen (history-independent, time-final) literal over a binding.
#[derive(Clone, Debug)]
enum StaticLit {
    /// Order relation between two bound events — final once both exist.
    /// `neg` asserts the relation itself is absent (occurrence is
    /// handled separately by the DNF split).
    Rel {
        kind: RelKind,
        a: VarIx,
        b: VarIx,
        neg: bool,
    },
    /// `samethread`/`distinctthreads` — tags are assignment-final.
    Thread {
        same: bool,
        a: VarIx,
        b: VarIx,
        ty: ThreadTypeId,
        neg: bool,
    },
    /// Event identity.
    Eq { a: VarIx, b: VarIx, neg: bool },
    /// Element/class/selector membership.
    Shape { a: VarIx, sel: EventSel, neg: bool },
    /// Value comparison over parameters/occurrence numbers.
    Cmp {
        op: CmpOp,
        lhs: VTerm,
        rhs: VTerm,
        neg: bool,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RelKind {
    Enables,
    ElementPrecedes,
    TemporallyPrecedes,
    Concurrent,
}

/// A value term restricted to bound variables.
#[derive(Clone, Debug)]
enum VTerm {
    Const(Value),
    Param(VarIx, ParamRef),
    SeqOf(VarIx),
}

/// A set of events none of which may have occurred in the witness
/// downset.
#[derive(Clone, Debug)]
enum AllOut {
    /// From `¬∃y:sel (statics ∧ occurred(y))`: every event matching
    /// `sel` and the statics (with `FRESH` bound to the candidate).
    NoMatch {
        sel: EventSel,
        statics: Vec<StaticLit>,
    },
    /// From `x at sel` (§8.2): every event enabled by `x` that matches
    /// `sel`.
    Control { var: VarIx, sel: EventSel },
}

/// One falsifying conjunct: statics must hold, In events are in the
/// witness downset, Out events and All-out candidates must stay outside
/// it.
#[derive(Clone, Debug, Default)]
struct Conjunct {
    ins: Vec<VarIx>,
    outs: Vec<VarIx>,
    statics: Vec<StaticLit>,
    all_outs: Vec<AllOut>,
}

/// Budget on the number of DNF conjuncts (and pair products) per
/// restriction; beyond this the compiler falls back.
const DNF_BUDGET: usize = 128;

/// Compiles a restriction formula into an incremental evaluator, or
/// explains why it must stay on the batch path.
///
/// # Errors
///
/// Returns the [`FallbackReason`] for unsupported shapes; the caller
/// records it and keeps using `check`/`check_many` for this restriction.
pub fn compile(formula: &Formula) -> Result<Compiled, FallbackReason> {
    if !formula.is_temporal() {
        check_leaf_supported(formula, &mut Vec::new())?;
        return Ok(Compiled::Leaf);
    }
    let Formula::Henceforth(body) = formula else {
        return Err(FallbackReason::TemporalShape);
    };
    // Peel the ∀ prefix.
    let mut vars: Vec<QVar> = Vec::new();
    let mut rest: &Formula = body;
    while let Formula::ForAll(name, sel, inner) = rest {
        if sel.thread.is_some() {
            return Err(FallbackReason::ThreadInstanceSel);
        }
        if vars.len() >= usize::from(FRESH) - 1 {
            return Err(FallbackReason::Budget);
        }
        vars.push(QVar {
            name: name.clone(),
            sel: sel.clone(),
        });
        rest = inner;
    }
    let names: Vec<&str> = vars.iter().map(|v| v.name.as_str()).collect();
    let pairs = match rest {
        Formula::Implies(guard, boxed) if !guard.is_temporal() => {
            if let Formula::Henceforth(delta) = &**boxed {
                if delta.is_temporal() {
                    return Err(FallbackReason::TemporalShape);
                }
                let firsts = to_dnf(guard, true, &names)?;
                let seconds = to_dnf(delta, false, &names)?;
                if firsts.len() * seconds.len() > DNF_BUDGET {
                    return Err(FallbackReason::Budget);
                }
                let mut pairs = Vec::new();
                for c1 in &firsts {
                    for c2 in &seconds {
                        pairs.push((c1.clone(), c2.clone()));
                    }
                }
                pairs
            } else if boxed.is_temporal() {
                return Err(FallbackReason::TemporalShape);
            } else {
                to_dnf(rest, false, &names)?
                    .into_iter()
                    .map(|c| (c, Conjunct::default()))
                    .collect()
            }
        }
        rest if !rest.is_temporal() => to_dnf(rest, false, &names)?
            .into_iter()
            .map(|c| (c, Conjunct::default()))
            .collect(),
        _ => return Err(FallbackReason::TemporalShape),
    };
    Ok(Compiled::Boxed(BoxShape { vars, pairs }))
}

/// Rejects leaf (non-temporal) formulas the structural evaluator cannot
/// reproduce exactly: unbound variables (batch raises an error),
/// thread-instance selectors (instance numbering is assignment-local),
/// and fixed event ids (global numbering is world-dependent).
fn check_leaf_supported<'a>(
    f: &'a Formula,
    bound: &mut Vec<&'a str>,
) -> Result<(), FallbackReason> {
    let check_term = |t: &EventTerm, bound: &Vec<&str>| match t {
        EventTerm::Var(v) if !bound.iter().any(|b| b == v) => Err(FallbackReason::UnboundVariable),
        // Fixed ids name events of one concrete computation; an
        // incremental world's global numbering need not coincide with the
        // sealed projection's, so their resolution is not reproducible.
        EventTerm::Fixed(_) => Err(FallbackReason::NonVariableTerm),
        _ => Ok(()),
    };
    let check_sel = |sel: &EventSel| {
        if sel.thread.is_some() {
            Err(FallbackReason::ThreadInstanceSel)
        } else {
            Ok(())
        }
    };
    match f {
        Formula::True | Formula::False => Ok(()),
        Formula::Atom(a) => {
            match a {
                Atom::Occurred(t) | Atom::New(t) | Atom::Potential(t) => check_term(t, bound)?,
                Atom::AtElement(t, _) | Atom::InClass(t, _) => check_term(t, bound)?,
                Atom::Matches(t, sel) | Atom::AtControlPoint(t, sel) => {
                    check_term(t, bound)?;
                    check_sel(sel)?;
                }
                Atom::Enables(a1, a2)
                | Atom::ElementPrecedes(a1, a2)
                | Atom::TemporallyPrecedes(a1, a2)
                | Atom::Concurrent(a1, a2)
                | Atom::EventEq(a1, a2) => {
                    check_term(a1, bound)?;
                    check_term(a2, bound)?;
                }
                Atom::SameThread(a1, a2, _) | Atom::DistinctThreads(a1, a2, _) => {
                    check_term(a1, bound)?;
                    check_term(a2, bound)?;
                }
                Atom::ValueCmp(_, v1, v2) => {
                    for v in [v1, v2] {
                        if let ValueTerm::Param(t, _) | ValueTerm::SeqOf(t) = v {
                            check_term(t, bound)?;
                        }
                    }
                }
            }
            Ok(())
        }
        Formula::Not(g) | Formula::Henceforth(g) | Formula::Eventually(g) => {
            check_leaf_supported(g, bound)
        }
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().try_for_each(|g| check_leaf_supported(g, bound))
        }
        Formula::Implies(a, b) | Formula::Iff(a, b) => {
            check_leaf_supported(a, bound)?;
            check_leaf_supported(b, bound)
        }
        Formula::ForAll(v, sel, g)
        | Formula::Exists(v, sel, g)
        | Formula::ExistsUnique(v, sel, g)
        | Formula::AtMostOne(v, sel, g) => {
            check_sel(sel)?;
            bound.push(v);
            let r = check_leaf_supported(g, bound);
            bound.pop();
            r
        }
    }
}

fn var_index(name: &str, names: &[&str]) -> Result<VarIx, FallbackReason> {
    names
        .iter()
        .rposition(|n| *n == name)
        .map(|i| i as VarIx)
        .ok_or(FallbackReason::UnboundVariable)
}

fn var_term(t: &EventTerm, names: &[&str]) -> Result<VarIx, FallbackReason> {
    match t {
        EventTerm::Var(v) => var_index(v, names),
        _ => Err(FallbackReason::NonVariableTerm),
    }
}

/// Literal-level normal form: each leaf either constrains occurrence
/// (In/Out), is frozen (Static), or excludes a set (AllOut).
#[derive(Clone, Debug)]
enum Nnf {
    True,
    False,
    In(VarIx),
    Out(VarIx),
    Static(StaticLit),
    AllOut(AllOut),
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
}

/// Rewrites `f` (negated unless `positive`) into [`Nnf`].
fn to_nnf(f: &Formula, positive: bool, names: &[&str]) -> Result<Nnf, FallbackReason> {
    Ok(match f {
        Formula::True => {
            if positive {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        Formula::False => {
            if positive {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Formula::Not(g) => to_nnf(g, !positive, names)?,
        Formula::And(fs) => {
            let parts = fs
                .iter()
                .map(|g| to_nnf(g, positive, names))
                .collect::<Result<Vec<_>, _>>()?;
            if positive {
                Nnf::And(parts)
            } else {
                Nnf::Or(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs
                .iter()
                .map(|g| to_nnf(g, positive, names))
                .collect::<Result<Vec<_>, _>>()?;
            if positive {
                Nnf::Or(parts)
            } else {
                Nnf::And(parts)
            }
        }
        Formula::Implies(a, b) => {
            let (na, nb) = (to_nnf(a, !positive, names)?, to_nnf(b, positive, names)?);
            if positive {
                Nnf::Or(vec![na, nb])
            } else {
                // ¬(a ⊃ b) = a ∧ ¬b; note `na` above was built with the
                // flipped polarity, which is what both cases need.
                Nnf::And(vec![na, nb])
            }
        }
        Formula::Iff(a, b) => {
            // a ⟺ b  =  (a ∧ b) ∨ (¬a ∧ ¬b); negation flips one side.
            let pp = Nnf::And(vec![to_nnf(a, true, names)?, to_nnf(b, positive, names)?]);
            let nn = Nnf::And(vec![to_nnf(a, false, names)?, to_nnf(b, !positive, names)?]);
            Nnf::Or(vec![pp, nn])
        }
        Formula::Exists(v, sel, inner) => {
            if positive {
                return Err(FallbackReason::PositiveExists);
            }
            if sel.thread.is_some() {
                return Err(FallbackReason::ThreadInstanceSel);
            }
            Nnf::AllOut(parse_all_out(v, sel, inner, names)?)
        }
        Formula::ForAll(..) => Err(if positive {
            // An inner ∀ ranges over future events too; its truth at a
            // fixed downset is not final.
            FallbackReason::TemporalShape
        } else {
            FallbackReason::PositiveExists
        })?,
        Formula::ExistsUnique(..) | Formula::AtMostOne(..) => Err(FallbackReason::TemporalShape)?,
        Formula::Henceforth(_) | Formula::Eventually(_) => Err(FallbackReason::TemporalShape)?,
        Formula::Atom(atom) => atom_nnf(atom, positive, names)?,
    })
}

/// `¬∃v:sel(body)` with `body` a conjunction of `occurred(v)` and frozen
/// statics becomes an All-out set.
fn parse_all_out(
    var: &str,
    sel: &EventSel,
    body: &Formula,
    names: &[&str],
) -> Result<AllOut, FallbackReason> {
    let mut statics = Vec::new();
    let mut occurred = false;
    let mut stack: Vec<&Formula> = vec![body];
    while let Some(f) = stack.pop() {
        match f {
            Formula::And(fs) => stack.extend(fs.iter()),
            Formula::True => {}
            Formula::Atom(Atom::Occurred(EventTerm::Var(v))) if v == var => occurred = true,
            Formula::Atom(a) => {
                statics.push(static_atom(a, false, &with_fresh(names, var), Some(var))?)
            }
            Formula::Not(inner) => match &**inner {
                Formula::Atom(a) => {
                    statics.push(static_atom(a, true, &with_fresh(names, var), Some(var))?)
                }
                _ => return Err(FallbackReason::PositiveExists),
            },
            _ => return Err(FallbackReason::PositiveExists),
        }
    }
    if !occurred {
        // Without `occurred(v)` the ∃ ranges over all events of the final
        // computation — time-dependent at a fixed downset.
        return Err(FallbackReason::TimeDependentAtom);
    }
    Ok(AllOut::NoMatch {
        sel: sel.clone(),
        statics,
    })
}

/// Variable scope inside an All-out body: outer names plus the fresh
/// candidate variable (mapped to [`FRESH`] by `static_atom`).
fn with_fresh<'a>(names: &[&'a str], fresh: &'a str) -> Vec<&'a str> {
    let mut v = names.to_vec();
    v.push(fresh);
    v
}

/// Classifies an atom (under `neg`ation) as a frozen static literal.
/// `fresh` names the All-out candidate variable, if inside one.
fn static_atom(
    atom: &Atom,
    neg: bool,
    names: &[&str],
    fresh: Option<&str>,
) -> Result<StaticLit, FallbackReason> {
    let ix = |t: &EventTerm| -> Result<VarIx, FallbackReason> {
        let i = var_term(t, names)?;
        Ok(match fresh {
            Some(_) if usize::from(i) == names.len() - 1 => FRESH,
            _ => i,
        })
    };
    Ok(match atom {
        Atom::SameThread(a, b, ty) => StaticLit::Thread {
            same: true,
            a: ix(a)?,
            b: ix(b)?,
            ty: *ty,
            neg,
        },
        Atom::DistinctThreads(a, b, ty) => StaticLit::Thread {
            same: false,
            a: ix(a)?,
            b: ix(b)?,
            ty: *ty,
            neg,
        },
        Atom::EventEq(a, b) => StaticLit::Eq {
            a: ix(a)?,
            b: ix(b)?,
            neg,
        },
        Atom::AtElement(t, el) => StaticLit::Shape {
            a: ix(t)?,
            sel: EventSel::at_element(*el),
            neg,
        },
        Atom::InClass(t, c) => StaticLit::Shape {
            a: ix(t)?,
            sel: EventSel::of_class(*c),
            neg,
        },
        Atom::Matches(t, sel) => {
            if sel.thread.is_some() {
                return Err(FallbackReason::ThreadInstanceSel);
            }
            StaticLit::Shape {
                a: ix(t)?,
                sel: sel.clone(),
                neg,
            }
        }
        Atom::ValueCmp(op, l, r) => {
            let conv = |t: &ValueTerm| -> Result<VTerm, FallbackReason> {
                Ok(match t {
                    ValueTerm::Const(v) => VTerm::Const(v.clone()),
                    ValueTerm::Param(e, p) => VTerm::Param(ix(e)?, p.clone()),
                    ValueTerm::SeqOf(e) => VTerm::SeqOf(ix(e)?),
                })
            };
            StaticLit::Cmp {
                op: *op,
                lhs: conv(l)?,
                rhs: conv(r)?,
                neg,
            }
        }
        // Order atoms require both events to have occurred — inside an
        // All-out body that couples the candidate's exclusion to another
        // event's occurrence, which the single-set model cannot express.
        Atom::Enables(..)
        | Atom::ElementPrecedes(..)
        | Atom::TemporallyPrecedes(..)
        | Atom::Concurrent(..)
            if fresh.is_some() =>
        {
            return Err(FallbackReason::OrderAtomUnderExists)
        }
        Atom::New(_) | Atom::Potential(_) => return Err(FallbackReason::TimeDependentAtom),
        _ => return Err(FallbackReason::TemporalShape),
    })
}

/// Atom → NNF at the given polarity (outside any All-out body).
fn atom_nnf(atom: &Atom, positive: bool, names: &[&str]) -> Result<Nnf, FallbackReason> {
    let rel = |kind: RelKind, a: &EventTerm, b: &EventTerm| -> Result<Nnf, FallbackReason> {
        let (ia, ib) = (var_term(a, names)?, var_term(b, names)?);
        Ok(if positive {
            Nnf::And(vec![
                Nnf::In(ia),
                Nnf::In(ib),
                Nnf::Static(StaticLit::Rel {
                    kind,
                    a: ia,
                    b: ib,
                    neg: false,
                }),
            ])
        } else {
            // ¬(occ(a) ∧ occ(b) ∧ rel) — the relation itself is frozen,
            // so the split is exact.
            Nnf::Or(vec![
                Nnf::Out(ia),
                Nnf::Out(ib),
                Nnf::Static(StaticLit::Rel {
                    kind,
                    a: ia,
                    b: ib,
                    neg: true,
                }),
            ])
        })
    };
    Ok(match atom {
        Atom::Occurred(t) => {
            let i = var_term(t, names)?;
            if positive {
                Nnf::In(i)
            } else {
                Nnf::Out(i)
            }
        }
        Atom::Enables(a, b) => rel(RelKind::Enables, a, b)?,
        Atom::ElementPrecedes(a, b) => rel(RelKind::ElementPrecedes, a, b)?,
        Atom::TemporallyPrecedes(a, b) => rel(RelKind::TemporallyPrecedes, a, b)?,
        Atom::Concurrent(a, b) => rel(RelKind::Concurrent, a, b)?,
        Atom::AtControlPoint(t, sel) => {
            if !positive {
                // ¬(x at sel) = ¬occ(x) ∨ ∃ enabled match — a positive
                // existential witness.
                return Err(FallbackReason::PositiveExists);
            }
            if sel.thread.is_some() {
                return Err(FallbackReason::ThreadInstanceSel);
            }
            let i = var_term(t, names)?;
            Nnf::And(vec![
                Nnf::In(i),
                Nnf::AllOut(AllOut::Control {
                    var: i,
                    sel: sel.clone(),
                }),
            ])
        }
        Atom::New(_) | Atom::Potential(_) => return Err(FallbackReason::TimeDependentAtom),
        a => Nnf::Static(static_atom(a, !positive, names, None)?),
    })
}

/// Expands NNF into DNF conjuncts under [`DNF_BUDGET`].
fn to_dnf(f: &Formula, positive: bool, names: &[&str]) -> Result<Vec<Conjunct>, FallbackReason> {
    let nnf = to_nnf(f, positive, names)?;
    let mut out: Vec<Conjunct> = Vec::new();
    expand(&nnf, Conjunct::default(), &mut out)?;
    Ok(out)
}

fn expand(n: &Nnf, acc: Conjunct, out: &mut Vec<Conjunct>) -> Result<(), FallbackReason> {
    match n {
        Nnf::False => Ok(()),
        Nnf::True => push_conjunct(acc, out),
        Nnf::In(v) => {
            let mut acc = acc;
            if !acc.ins.contains(v) {
                acc.ins.push(*v);
            }
            push_conjunct(acc, out)
        }
        Nnf::Out(v) => {
            let mut acc = acc;
            if !acc.outs.contains(v) {
                acc.outs.push(*v);
            }
            push_conjunct(acc, out)
        }
        Nnf::Static(s) => {
            let mut acc = acc;
            acc.statics.push(s.clone());
            push_conjunct(acc, out)
        }
        Nnf::AllOut(a) => {
            let mut acc = acc;
            acc.all_outs.push(a.clone());
            push_conjunct(acc, out)
        }
        Nnf::And(parts) => {
            // Fold left: conjunction distributes by expanding each part
            // against every partial conjunct accumulated so far.
            let mut partials = vec![acc];
            for p in parts {
                let mut next = Vec::new();
                for acc in partials.drain(..) {
                    expand(p, acc, &mut next)?;
                    if next.len() > DNF_BUDGET {
                        return Err(FallbackReason::Budget);
                    }
                }
                partials = next;
            }
            for acc in partials {
                push_conjunct(acc, out)?;
            }
            Ok(())
        }
        Nnf::Or(parts) => {
            for p in parts {
                expand(p, acc.clone(), out)?;
            }
            Ok(())
        }
    }
}

fn push_conjunct(c: Conjunct, out: &mut Vec<Conjunct>) -> Result<(), FallbackReason> {
    if out.len() >= DNF_BUDGET {
        return Err(FallbackReason::Budget);
    }
    out.push(c);
    Ok(())
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

impl BoxShape {
    /// Checks every binding whose newest bound event is `n` (all other
    /// variables range over events `≤ n`) and reports whether any
    /// falsifies the restriction. Call once per emitted event, in order;
    /// violations are final and sticky for the subtree below.
    ///
    /// # Errors
    ///
    /// [`IncrEvalError`] mirrors the batch evaluator's parameter errors;
    /// the caller should fall back to batch for this run.
    pub fn check_event(&self, world: &impl IncrWorld, n: usize) -> Result<bool, IncrEvalError> {
        let mut binding = vec![0usize; self.vars.len()];
        if self.vars.is_empty() {
            // No prefix: the body is variable-free; check it once, at the
            // first event (downsets exist from the empty history on, and
            // variable-free realizability never changes).
            return if n == 0 {
                self.check_binding(world, &binding)
            } else {
                Ok(false)
            };
        }
        self.enumerate(world, n, 0, false, &mut binding)
    }

    fn enumerate(
        &self,
        world: &impl IncrWorld,
        n: usize,
        depth: usize,
        used_n: bool,
        binding: &mut Vec<usize>,
    ) -> Result<bool, IncrEvalError> {
        if depth == self.vars.len() {
            return if used_n {
                self.check_binding(world, binding)
            } else {
                Ok(false)
            };
        }
        let sel = &self.vars[depth].sel;
        let must_use_n = !used_n && depth + 1 == self.vars.len();
        let lo = if must_use_n { n } else { 0 };
        for e in lo..=n {
            if !sel_matches(world, sel, e) {
                continue;
            }
            binding[depth] = e;
            if self.enumerate(world, n, depth + 1, used_n || e == n, binding)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn check_binding(
        &self,
        world: &impl IncrWorld,
        binding: &[usize],
    ) -> Result<bool, IncrEvalError> {
        if gem_obs::ambient::active() {
            gem_obs::ambient::add("logic.incr.bindings_checked", 1);
        }
        for (c1, c2) in &self.pairs {
            if self.pair_realizable(world, binding, c1, c2)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Is the falsification `(c1 at D₁, c2 at D₂)` realizable with the
    /// minimal witnesses `D₁ = down(In₁)`, `D₂ = down(In₁ ∪ In₂)`?
    fn pair_realizable(
        &self,
        world: &impl IncrWorld,
        binding: &[usize],
        c1: &Conjunct,
        c2: &Conjunct,
    ) -> Result<bool, IncrEvalError> {
        for s in c1.statics.iter().chain(&c2.statics) {
            if !eval_static(world, s, binding, None)? {
                return Ok(false);
            }
        }
        // `in_down(e, vars)` ⟺ e ∈ down({binding[v]}) — membership in the
        // downward closure of the In events.
        let in_down = |e: usize, ins: &[&[VarIx]]| {
            ins.iter().flat_map(|s| s.iter()).any(|&v| {
                let i = binding[usize::from(v)];
                e == i || world.precedes(e, i)
            })
        };
        let d1: &[&[VarIx]] = &[&c1.ins];
        let d2: &[&[VarIx]] = &[&c1.ins, &c2.ins];
        for &o in &c1.outs {
            if in_down(binding[usize::from(o)], d1) {
                return Ok(false);
            }
        }
        for &o in &c2.outs {
            if in_down(binding[usize::from(o)], d2) {
                return Ok(false);
            }
        }
        for (ao, down) in c1
            .all_outs
            .iter()
            .map(|a| (a, d1))
            .chain(c2.all_outs.iter().map(|a| (a, d2)))
        {
            match ao {
                AllOut::Control { var, sel } => {
                    let x = binding[usize::from(*var)];
                    for &y in world.enabled_from(x) {
                        let y = y as usize;
                        if sel_matches(world, sel, y) && in_down(y, down) {
                            return Ok(false);
                        }
                    }
                }
                AllOut::NoMatch { sel, statics } => {
                    for y in 0..world.event_count() {
                        if !sel_matches(world, sel, y) || !in_down(y, down) {
                            continue;
                        }
                        let mut all = true;
                        for s in statics {
                            if !eval_static(world, s, binding, Some(y))? {
                                all = false;
                                break;
                            }
                        }
                        if all {
                            return Ok(false);
                        }
                    }
                }
            }
        }
        Ok(true)
    }
}

fn sel_matches(world: &impl IncrWorld, sel: &EventSel, e: usize) -> bool {
    sel.element.is_none_or(|el| world.element_of(e) == el)
        && sel.class.is_none_or(|c| world.class_of(e) == c)
        && sel
            .params
            .iter()
            .all(|(i, v)| world.params_of(e).get(*i).is_some_and(|p| p == v))
    // sel.thread is rejected at compile time.
}

fn eval_static(
    world: &impl IncrWorld,
    lit: &StaticLit,
    binding: &[usize],
    fresh: Option<usize>,
) -> Result<bool, IncrEvalError> {
    let ev = |v: VarIx| -> usize {
        if v == FRESH {
            fresh.expect("fresh var only inside All-out bodies")
        } else {
            binding[usize::from(v)]
        }
    };
    let raw = match lit {
        StaticLit::Rel { kind, a, b, neg } => {
            let (a, b) = (ev(*a), ev(*b));
            let holds = match kind {
                RelKind::Enables => world.enables(a, b),
                RelKind::ElementPrecedes => {
                    world.element_of(a) == world.element_of(b) && world.seq_of(a) < world.seq_of(b)
                }
                RelKind::TemporallyPrecedes => world.precedes(a, b),
                RelKind::Concurrent => !world.precedes(a, b) && !world.precedes(b, a),
            };
            holds != *neg
        }
        StaticLit::Thread {
            same,
            a,
            b,
            ty,
            neg,
        } => {
            let (ta, tb) = (
                world.thread_instance(ev(*a), *ty),
                world.thread_instance(ev(*b), *ty),
            );
            let holds = match (ta, tb) {
                (Some(x), Some(y)) => {
                    if *same {
                        x == y
                    } else {
                        x != y
                    }
                }
                _ => false,
            };
            holds != *neg
        }
        StaticLit::Eq { a, b, neg } => (ev(*a) == ev(*b)) != *neg,
        StaticLit::Shape { a, sel, neg } => sel_matches(world, sel, ev(*a)) != *neg,
        StaticLit::Cmp { op, lhs, rhs, neg } => {
            let resolve = |t: &VTerm| -> Result<Value, IncrEvalError> {
                Ok(match t {
                    VTerm::Const(v) => v.clone(),
                    VTerm::SeqOf(v) => Value::Int(i64::from(world.seq_of(ev(*v)))),
                    VTerm::Param(v, p) => {
                        let e = ev(*v);
                        let idx = match p {
                            ParamRef::Index(i) => *i,
                            ParamRef::Named(name) => world
                                .param_index(world.class_of(e), name)
                                .ok_or(IncrEvalError)?,
                        };
                        world.params_of(e).get(idx).cloned().ok_or(IncrEvalError)?
                    }
                })
            };
            (op.apply(&resolve(lhs)?, &resolve(rhs)?)) != *neg
        }
    };
    Ok(raw)
}

// ---------------------------------------------------------------------------
// Leaf (non-temporal) evaluation on the full history
// ---------------------------------------------------------------------------

/// Evaluates a non-temporal restriction on the *complete* computation —
/// the [`Strategy::Complete`](crate::Strategy::Complete) semantics —
/// structurally from the incremental world, with no sealing or
/// projection. Exact mirror of the batch evaluator on the full history:
/// unresolvable terms make atoms false, parameter errors become
/// [`IncrEvalError`] (the batch path raises
/// [`EvalError`](crate::EvalError) in the same situations).
///
/// # Errors
///
/// [`IncrEvalError`] on parameter-reference errors; the caller falls
/// back to batch so error reporting is identical.
pub fn eval_full(formula: &Formula, world: &impl IncrWorld) -> Result<bool, IncrEvalError> {
    let mut env: Vec<(String, usize)> = Vec::new();
    eval_full_rec(formula, world, &mut env)
}

fn resolve_full(
    t: &EventTerm,
    world: &impl IncrWorld,
    env: &[(String, usize)],
) -> Result<Option<usize>, IncrEvalError> {
    Ok(match t {
        EventTerm::Var(name) => Some(
            env.iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|&(_, e)| e)
                .ok_or(IncrEvalError)?,
        ),
        EventTerm::Fixed(id) => {
            if id.index() < world.event_count() {
                Some(id.index())
            } else {
                None
            }
        }
        EventTerm::NthAt(el, i) => world.nth_at(*el, *i),
    })
}

fn eval_full_rec(
    f: &Formula,
    world: &impl IncrWorld,
    env: &mut Vec<(String, usize)>,
) -> Result<bool, IncrEvalError> {
    Ok(match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Not(g) => !eval_full_rec(g, world, env)?,
        Formula::And(fs) => {
            for g in fs {
                if !eval_full_rec(g, world, env)? {
                    return Ok(false);
                }
            }
            true
        }
        Formula::Or(fs) => {
            for g in fs {
                if eval_full_rec(g, world, env)? {
                    return Ok(true);
                }
            }
            false
        }
        Formula::Implies(a, b) => !eval_full_rec(a, world, env)? || eval_full_rec(b, world, env)?,
        Formula::Iff(a, b) => eval_full_rec(a, world, env)? == eval_full_rec(b, world, env)?,
        // On a single history the temporal operators degenerate (the
        // compiler only emits Leaf for non-temporal formulas; this keeps
        // the mirror total).
        Formula::Henceforth(g) | Formula::Eventually(g) => eval_full_rec(g, world, env)?,
        Formula::ForAll(var, sel, body) => {
            for e in 0..world.event_count() {
                if !sel_full_matches(world, sel, e) {
                    continue;
                }
                env.push((var.clone(), e));
                let ok = eval_full_rec(body, world, env)?;
                env.pop();
                if !ok {
                    return Ok(false);
                }
            }
            true
        }
        Formula::Exists(var, sel, body) => {
            for e in 0..world.event_count() {
                if !sel_full_matches(world, sel, e) {
                    continue;
                }
                env.push((var.clone(), e));
                let ok = eval_full_rec(body, world, env)?;
                env.pop();
                if ok {
                    return Ok(true);
                }
            }
            false
        }
        Formula::ExistsUnique(var, sel, body) | Formula::AtMostOne(var, sel, body) => {
            let unique = matches!(f, Formula::ExistsUnique(..));
            let mut count = 0usize;
            for e in 0..world.event_count() {
                if !sel_full_matches(world, sel, e) {
                    continue;
                }
                env.push((var.clone(), e));
                let ok = eval_full_rec(body, world, env)?;
                env.pop();
                if ok {
                    count += 1;
                    if count > 1 {
                        return Ok(false);
                    }
                }
            }
            if unique {
                count == 1
            } else {
                true
            }
        }
        Formula::Atom(atom) => eval_atom_full(atom, world, env)?,
    })
}

/// Selector match for leaf evaluation. `sel.thread` is rejected at
/// compile time (instance numbering is assignment-local).
fn sel_full_matches(world: &impl IncrWorld, sel: &EventSel, e: usize) -> bool {
    sel_matches(world, sel, e)
}

fn eval_atom_full(
    atom: &Atom,
    world: &impl IncrWorld,
    env: &[(String, usize)],
) -> Result<bool, IncrEvalError> {
    macro_rules! ev {
        ($t:expr) => {
            match resolve_full($t, world, env)? {
                Some(e) => e,
                None => return Ok(false),
            }
        };
    }
    Ok(match atom {
        // Full history: every emitted event has occurred.
        Atom::Occurred(t) => {
            let _ = ev!(t);
            true
        }
        Atom::AtElement(t, el) => world.element_of(ev!(t)) == *el,
        Atom::InClass(t, c) => world.class_of(ev!(t)) == *c,
        Atom::Matches(t, sel) => sel_full_matches(world, sel, ev!(t)),
        Atom::Enables(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            world.enables(a, b)
        }
        Atom::ElementPrecedes(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            world.element_of(a) == world.element_of(b) && world.seq_of(a) < world.seq_of(b)
        }
        Atom::TemporallyPrecedes(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            world.precedes(a, b)
        }
        Atom::Concurrent(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            !world.precedes(a, b) && !world.precedes(b, a)
        }
        Atom::EventEq(t1, t2) => ev!(t1) == ev!(t2),
        Atom::AtControlPoint(t, sel) => {
            let e = ev!(t);
            !world
                .enabled_from(e)
                .iter()
                .any(|&s| sel_full_matches(world, sel, s as usize))
        }
        // Full history: `new(e)` ⟺ e is temporally maximal.
        Atom::New(t) => {
            let e = ev!(t);
            !(0..world.event_count()).any(|s| world.precedes(e, s))
        }
        // Full history contains every event, so nothing is potential.
        Atom::Potential(t) => {
            let _ = ev!(t);
            false
        }
        Atom::SameThread(t1, t2, ty) | Atom::DistinctThreads(t1, t2, ty) => {
            let same = matches!(atom, Atom::SameThread(..));
            let (a, b) = (ev!(t1), ev!(t2));
            match (world.thread_instance(a, *ty), world.thread_instance(b, *ty)) {
                (Some(x), Some(y)) => {
                    if same {
                        x == y
                    } else {
                        x != y
                    }
                }
                _ => false,
            }
        }
        Atom::ValueCmp(op, v1, v2) => {
            let resolve = |t: &ValueTerm| -> Result<Option<Value>, IncrEvalError> {
                Ok(match t {
                    ValueTerm::Const(v) => Some(v.clone()),
                    ValueTerm::SeqOf(e) => resolve_full(e, world, env)?
                        .map(|id| Value::Int(i64::from(world.seq_of(id)))),
                    ValueTerm::Param(e, p) => match resolve_full(e, world, env)? {
                        None => None,
                        Some(id) => {
                            let idx = match p {
                                ParamRef::Index(i) => *i,
                                ParamRef::Named(name) => world
                                    .param_index(world.class_of(id), name)
                                    .ok_or(IncrEvalError)?,
                            };
                            Some(world.params_of(id).get(idx).cloned().ok_or(IncrEvalError)?)
                        }
                    },
                })
            };
            let (Some(a), Some(b)) = (resolve(v1)?, resolve(v2)?) else {
                return Ok(false);
            };
            op.apply(&a, &b)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{Computation, ComputationBuilder, EventId, Structure};
    use std::collections::HashMap;

    /// A test world backed by a sealed computation (tags included), so
    /// incremental verdicts can be compared against the batch evaluator.
    struct CompWorld<'a> {
        c: &'a Computation,
        enabled: Vec<Vec<u32>>,
        /// Canonical thread instances: (ty, instance) → arbitrary-but-
        /// consistent canonical id.
        canon: HashMap<(ThreadTypeId, u32), u32>,
    }

    impl<'a> CompWorld<'a> {
        fn new(c: &'a Computation) -> Self {
            let enabled = (0..c.event_count())
                .map(|e| {
                    c.enabled_from(EventId::from_raw(e as u32))
                        .iter()
                        .map(|id| id.index() as u32)
                        .collect()
                })
                .collect();
            let mut canon = HashMap::new();
            for ev in c.events() {
                for t in ev.threads() {
                    let next = canon.len() as u32;
                    canon.entry((t.thread_type(), t.instance())).or_insert(next);
                }
            }
            Self { c, enabled, canon }
        }
    }

    impl IncrWorld for CompWorld<'_> {
        fn event_count(&self) -> usize {
            self.c.event_count()
        }
        fn element_of(&self, e: usize) -> ElementId {
            self.c.event(EventId::from_raw(e as u32)).element()
        }
        fn class_of(&self, e: usize) -> ClassId {
            self.c.event(EventId::from_raw(e as u32)).class()
        }
        fn seq_of(&self, e: usize) -> u32 {
            self.c.event(EventId::from_raw(e as u32)).seq()
        }
        fn params_of(&self, e: usize) -> &[Value] {
            self.c.event(EventId::from_raw(e as u32)).params()
        }
        fn thread_instance(&self, e: usize, ty: ThreadTypeId) -> Option<u32> {
            self.c
                .event(EventId::from_raw(e as u32))
                .thread_of_type(ty)
                .map(|t| self.canon[&(ty, t.instance())])
        }
        fn precedes(&self, a: usize, b: usize) -> bool {
            self.c
                .temporally_precedes(EventId::from_raw(a as u32), EventId::from_raw(b as u32))
        }
        fn enables(&self, a: usize, b: usize) -> bool {
            self.c
                .enables(EventId::from_raw(a as u32), EventId::from_raw(b as u32))
        }
        fn enabled_from(&self, e: usize) -> &[u32] {
            &self.enabled[e]
        }
        fn nth_at(&self, el: ElementId, i: usize) -> Option<usize> {
            self.c.nth_at(el, i).map(|id| id.index())
        }
        fn param_index(&self, class: ClassId, name: &str) -> Option<usize> {
            self.c.structure().class_info(class).param_index(name)
        }
    }

    /// Feed every event through a BoxShape in emission order; true if
    /// any violation is found.
    fn replay(shape: &BoxShape, world: &CompWorld<'_>) -> bool {
        (0..world.event_count()).any(|n| shape.check_event(world, n).unwrap())
    }

    /// Two users with Req → Start → End chains, tagged by inference-like
    /// canonical instances; `interleave` controls whether user 2 starts
    /// before user 1 ends.
    fn two_user_comp(interleave: bool) -> Computation {
        use gem_core::ThreadTag;
        let mut s = Structure::new();
        let req = s.add_class("Req", &[]).unwrap();
        let start = s.add_class("Start", &[]).unwrap();
        let end = s.add_class("End", &[]).unwrap();
        let u1 = s.add_element("U1", &[req, start, end]).unwrap();
        let u2 = s.add_element("U2", &[req, start, end]).unwrap();
        let ty = ThreadTypeId::from_raw(0);
        let mut b = ComputationBuilder::new(s);
        let add = |b: &mut ComputationBuilder, el, cls, inst, prev: Option<EventId>| {
            let e = b.add_event(el, cls, vec![]).unwrap();
            b.tag_thread(e, ThreadTag::new(ty, inst)).unwrap();
            if let Some(p) = prev {
                b.enable(p, e).unwrap();
            }
            e
        };
        if interleave {
            let r1 = add(&mut b, u1, req, 0, None);
            let s1 = add(&mut b, u1, start, 0, Some(r1));
            let r2 = add(&mut b, u2, req, 1, None);
            let s2 = add(&mut b, u2, start, 1, Some(r2));
            let _e1 = add(&mut b, u1, end, 0, Some(s1));
            let _e2 = add(&mut b, u2, end, 1, Some(s2));
        } else {
            let r1 = add(&mut b, u1, req, 0, None);
            let s1 = add(&mut b, u1, start, 0, Some(r1));
            let e1 = add(&mut b, u1, end, 0, Some(s1));
            let r2 = add(&mut b, u2, req, 1, None);
            // Serialise: user 2 starts only after user 1 ended.
            let s2 = b.add_event(u2, start, vec![]).unwrap();
            b.tag_thread(s2, ThreadTag::new(ty, 1)).unwrap();
            b.enable(r2, s2).unwrap();
            b.enable(e1, s2).unwrap();
            let _e2 = add(&mut b, u2, end, 1, Some(s2));
        }
        b.seal().unwrap()
    }

    fn mutual_exclusion_formula(c: &Computation) -> Formula {
        let s = c.structure();
        let (start, end) = (s.class("Start").unwrap(), s.class("End").unwrap());
        let ty = ThreadTypeId::from_raw(0);
        let in_progress = |v: &str, end_var: &str| {
            Formula::occurred(v).and(
                Formula::exists(
                    end_var,
                    EventSel::of_class(end),
                    Formula::same_thread(v, end_var, ty).and(Formula::occurred(end_var)),
                )
                .not(),
            )
        };
        Formula::forall(
            "s1",
            EventSel::of_class(start),
            Formula::forall(
                "s2",
                EventSel::of_class(start),
                Formula::distinct_threads("s1", "s2", ty)
                    .implies(in_progress("s1", "e1").and(in_progress("s2", "e2")).not()),
            ),
        )
        .henceforth()
    }

    #[test]
    fn mutual_exclusion_compiles_to_box() {
        let c = two_user_comp(false);
        let f = mutual_exclusion_formula(&c);
        let compiled = compile(&f).unwrap();
        let Compiled::Boxed(shape) = &compiled else {
            panic!("expected Box shape");
        };
        assert_eq!(shape.vars.len(), 2);
    }

    #[test]
    fn mutual_exclusion_verdict_matches_batch() {
        for interleave in [false, true] {
            let c = two_user_comp(interleave);
            let f = mutual_exclusion_formula(&c);
            let Compiled::Boxed(shape) = compile(&f).unwrap() else {
                panic!("expected Box shape");
            };
            let world = CompWorld::new(&c);
            let incr_violated = replay(&shape, &world);
            let batch =
                crate::check(&f, &c, crate::Strategy::Linearizations { limit: 100_000 }).unwrap();
            assert_eq!(
                incr_violated, !batch.holds,
                "interleave={interleave}: incr and batch disagree"
            );
        }
    }

    #[test]
    fn priority_shape_compiles_and_matches_batch() {
        // ◻∀ra∀rb∀sb (occurred(ra) ∧ occurred(rb) ∧ samethread(rb,sb) ⊃
        //              ◻(occurred(sb) ⊃ ∃sa: samethread(ra,sa) ∧ occurred(sa)))
        // Over the serialised computation user 1 always starts first, so
        // with ra:=Req@U1 this "u1 requests are serviced before u2
        // starts" priority holds; over the interleaved one it fails.
        let ty = ThreadTypeId::from_raw(0);
        for (interleave, expect_holds) in [(false, true), (true, false)] {
            let c = two_user_comp(interleave);
            let s = c.structure();
            let (req, start) = (s.class("Req").unwrap(), s.class("Start").unwrap());
            let (u1, u2) = (s.element("U1").unwrap(), s.element("U2").unwrap());
            let f = Formula::forall(
                "ra",
                EventSel::of_class(req).at(u1),
                Formula::forall(
                    "rb",
                    EventSel::of_class(req).at(u2),
                    Formula::forall(
                        "sb",
                        EventSel::of_class(start).at(u2),
                        Formula::occurred("ra")
                            .and(Formula::occurred("rb"))
                            .and(Formula::same_thread("rb", "sb", ty))
                            .implies(
                                Formula::occurred("sb")
                                    .implies(Formula::exists(
                                        "sa",
                                        EventSel::of_class(start).at(u1),
                                        Formula::same_thread("ra", "sa", ty)
                                            .and(Formula::occurred("sa")),
                                    ))
                                    .henceforth(),
                            ),
                    ),
                ),
            )
            .henceforth();
            let Compiled::Boxed(shape) = compile(&f).unwrap() else {
                panic!("expected Box shape");
            };
            let world = CompWorld::new(&c);
            let incr_violated = replay(&shape, &world);
            let batch =
                crate::check(&f, &c, crate::Strategy::Linearizations { limit: 100_000 }).unwrap();
            assert_eq!(
                batch.holds, expect_holds,
                "batch sanity, interleave={interleave}"
            );
            assert_eq!(incr_violated, !batch.holds, "interleave={interleave}");
        }
    }

    #[test]
    fn non_temporal_compiles_to_leaf_and_matches_complete() {
        let c = two_user_comp(false);
        let s = c.structure();
        let (req, start) = (s.class("Req").unwrap(), s.class("Start").unwrap());
        // prerequisite: every Start has exactly one enabling Req.
        let f = Formula::forall(
            "t",
            EventSel::of_class(start),
            Formula::occurred("t").implies(Formula::exists_unique(
                "s",
                EventSel::of_class(req),
                Formula::enables("s", "t"),
            )),
        );
        let compiled = compile(&f).unwrap();
        assert!(compiled.is_leaf());
        let world = CompWorld::new(&c);
        let incr = eval_full(&f, &world).unwrap();
        let batch = crate::check(&f, &c, crate::Strategy::Complete).unwrap();
        assert_eq!(incr, batch.holds);
        assert!(incr);
    }

    #[test]
    fn eventually_falls_back() {
        let f = Formula::occurred("e").eventually();
        assert!(matches!(
            compile(&Formula::forall("e", EventSel::any(), f).henceforth()),
            Err(FallbackReason::TemporalShape)
        ));
    }

    #[test]
    fn positive_exists_falls_back() {
        // A body-level ∃ is *negated* into an All-out set and compiles;
        // the genuinely positive case — ¬∃ in the body, so the ∃ stays
        // positive in the falsifying conjuncts — must fall back.
        let f = Formula::forall(
            "x",
            EventSel::any(),
            Formula::exists("y", EventSel::any(), Formula::occurred("y")).not(),
        )
        .henceforth();
        assert!(matches!(compile(&f), Err(FallbackReason::PositiveExists)));
        let g = Formula::forall(
            "x",
            EventSel::any(),
            Formula::exists("y", EventSel::any(), Formula::occurred("y")),
        )
        .henceforth();
        assert!(matches!(compile(&g), Ok(Compiled::Boxed(_))));
    }

    #[test]
    fn unbound_variable_falls_back() {
        let f = Formula::occurred("ghost");
        assert!(matches!(compile(&f), Err(FallbackReason::UnboundVariable)));
        let g = Formula::forall("x", EventSel::any(), Formula::occurred("ghost")).henceforth();
        assert!(matches!(compile(&g), Err(FallbackReason::UnboundVariable)));
    }

    #[test]
    fn new_and_potential_fall_back_in_temporal_bodies() {
        let f = Formula::forall("x", EventSel::any(), Formula::is_new("x")).henceforth();
        assert!(matches!(
            compile(&f),
            Err(FallbackReason::TimeDependentAtom)
        ));
        // But they are fine in leaf shapes.
        let g = Formula::forall("x", EventSel::any(), Formula::is_new("x").or(Formula::True));
        assert!(compile(&g).unwrap().is_leaf());
    }

    #[test]
    fn negated_order_atom_splits_exactly() {
        // ◻∀a∀b ¬(a ⇒ b): violated iff some downset contains an ordered
        // pair — i.e. iff any order pair exists at all.
        let c = two_user_comp(false);
        let f = Formula::forall(
            "a",
            EventSel::any(),
            Formula::forall("b", EventSel::any(), Formula::precedes("a", "b").not()),
        )
        .henceforth();
        let Compiled::Boxed(shape) = compile(&f).unwrap() else {
            panic!("expected Box shape");
        };
        let world = CompWorld::new(&c);
        let incr_violated = replay(&shape, &world);
        let batch =
            crate::check(&f, &c, crate::Strategy::Linearizations { limit: 100_000 }).unwrap();
        assert_eq!(incr_violated, !batch.holds);
        assert!(incr_violated, "chains exist, so some downset orders a pair");
    }

    #[test]
    fn fallback_reason_display() {
        assert_eq!(FallbackReason::Budget.to_string(), "dnf-budget");
        assert_eq!(
            FallbackReason::PositiveExists.to_string(),
            "positive-exists"
        );
    }
}
