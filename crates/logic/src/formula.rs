//! Restriction formulae (§8): first-order logic over GEM predicates plus
//! the temporal operators henceforth (`◻`) and eventually (`◇`).
//!
//! Restrictions are built programmatically with the constructors on
//! [`Formula`]; the [`Formula::render`] method pretty-prints them with
//! names resolved against a [`Structure`].

use std::fmt::Write as _;

use gem_core::{ClassId, ElementId, Structure, ThreadTypeId};

use crate::{CmpOp, EventSel, EventTerm, ParamRef, ValueTerm};

/// An atomic GEM predicate (§8.1), interpreted relative to a history.
#[derive(Clone, PartialEq, Debug)]
pub enum Atom {
    /// `occurred(e)`: the event has occurred in the current history.
    Occurred(EventTerm),
    /// `e @ EL`: the event occurs at element `EL` (history-independent).
    AtElement(EventTerm, ElementId),
    /// `e : E`: the event belongs to event class `E` (history-independent).
    InClass(EventTerm, ClassId),
    /// The event satisfies all constraints of the selector
    /// (history-independent).
    Matches(EventTerm, EventSel),
    /// `e1 ⊳ e2`: `e1` enables `e2`, both occurred.
    Enables(EventTerm, EventTerm),
    /// `e1 ⇒ₑ e2`: element order, both occurred.
    ElementPrecedes(EventTerm, EventTerm),
    /// `e1 ⇒ e2`: temporal order, both occurred.
    TemporallyPrecedes(EventTerm, EventTerm),
    /// `e1` and `e2` are potentially concurrent, both occurred.
    Concurrent(EventTerm, EventTerm),
    /// The two terms denote the same event (history-independent).
    EventEq(EventTerm, EventTerm),
    /// `e at E` (§8.2): `e` occurred and has not enabled an event matching
    /// the selector within the current history.
    AtControlPoint(EventTerm, EventSel),
    /// `new(e)` (§8.2): `e` occurred and no occurred event observably
    /// follows it.
    New(EventTerm),
    /// `potential(e)` (§9): `e` has not occurred but all its temporal
    /// predecessors have — it could legally extend the history.
    Potential(EventTerm),
    /// Both events carry the same instance of thread type `ty` (§8.3).
    SameThread(EventTerm, EventTerm, ThreadTypeId),
    /// Both events carry *different* instances of thread type `ty`.
    DistinctThreads(EventTerm, EventTerm, ThreadTypeId),
    /// Value comparison between two value terms.
    ValueCmp(CmpOp, ValueTerm, ValueTerm),
}

/// A restriction formula.
///
/// Quantified variables range over *all* events of the computation under
/// evaluation (whether occurred or not); use [`Atom::Occurred`] — or the
/// selector argument, which filters by class/element/thread — to restrict
/// attention to occurred events.
///
/// # Examples
///
/// The Variable restriction of §8.2 ("`Getval` yields the value last
/// assigned"):
///
/// ```
/// use gem_logic::{Formula, EventSel, ValueTerm};
/// # use gem_core::Structure;
/// # let mut s = Structure::new();
/// # let assign = s.add_class("Assign", &["newval"]).unwrap();
/// # let getval = s.add_class("Getval", &["oldval"]).unwrap();
/// let f = Formula::forall(
///     "a",
///     EventSel::of_class(assign),
///     Formula::forall(
///         "g",
///         EventSel::of_class(getval),
///         Formula::enables("a", "g").implies(Formula::value_eq(
///             ValueTerm::param("a", "newval"),
///             ValueTerm::param("g", "oldval"),
///         )),
///     ),
/// );
/// assert!(f.render(&s).contains("FORALL"));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// The always-true formula.
    True,
    /// The always-false formula.
    False,
    /// An atomic predicate.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of zero or more formulae (empty = true).
    And(Vec<Formula>),
    /// Disjunction of zero or more formulae (empty = false).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification over events matching the selector.
    ForAll(String, EventSel, Box<Formula>),
    /// Existential quantification over events matching the selector.
    Exists(String, EventSel, Box<Formula>),
    /// `∃!`: exactly one matching event satisfies the body.
    ExistsUnique(String, EventSel, Box<Formula>),
    /// "∃ at most one" (used by the prerequisite abbreviations of §8.2).
    AtMostOne(String, EventSel, Box<Formula>),
    /// `◻ p`: `p` holds of every tail of the history sequence.
    Henceforth(Box<Formula>),
    /// `◇ p`: `p` holds of some tail of the history sequence.
    Eventually(Box<Formula>),
}

impl Formula {
    // --- Atom constructors -------------------------------------------------

    /// `occurred(e)`.
    pub fn occurred(e: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::Occurred(e.into()))
    }

    /// `e @ EL`.
    pub fn at_element(e: impl Into<EventTerm>, el: ElementId) -> Self {
        Formula::Atom(Atom::AtElement(e.into(), el))
    }

    /// `e : C`.
    pub fn in_class(e: impl Into<EventTerm>, class: ClassId) -> Self {
        Formula::Atom(Atom::InClass(e.into(), class))
    }

    /// The event matches the selector.
    pub fn matches(e: impl Into<EventTerm>, sel: EventSel) -> Self {
        Formula::Atom(Atom::Matches(e.into(), sel))
    }

    /// `e1 ⊳ e2`.
    pub fn enables(e1: impl Into<EventTerm>, e2: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::Enables(e1.into(), e2.into()))
    }

    /// `e1 ⇒ₑ e2`.
    pub fn element_precedes(e1: impl Into<EventTerm>, e2: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::ElementPrecedes(e1.into(), e2.into()))
    }

    /// `e1 ⇒ e2`.
    pub fn precedes(e1: impl Into<EventTerm>, e2: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::TemporallyPrecedes(e1.into(), e2.into()))
    }

    /// `e1` and `e2` are potentially concurrent.
    pub fn concurrent(e1: impl Into<EventTerm>, e2: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::Concurrent(e1.into(), e2.into()))
    }

    /// `e1 = e2` (event identity).
    pub fn event_eq(e1: impl Into<EventTerm>, e2: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::EventEq(e1.into(), e2.into()))
    }

    /// `e at E` — intermediate control point (§8.2).
    pub fn at_control(e: impl Into<EventTerm>, sel: EventSel) -> Self {
        Formula::Atom(Atom::AtControlPoint(e.into(), sel))
    }

    /// `new(e)` (§8.2).
    pub fn is_new(e: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::New(e.into()))
    }

    /// `potential(e)` (§9).
    pub fn potential(e: impl Into<EventTerm>) -> Self {
        Formula::Atom(Atom::Potential(e.into()))
    }

    /// Both events carry the same instance of thread type `ty`.
    pub fn same_thread(
        e1: impl Into<EventTerm>,
        e2: impl Into<EventTerm>,
        ty: ThreadTypeId,
    ) -> Self {
        Formula::Atom(Atom::SameThread(e1.into(), e2.into(), ty))
    }

    /// Both events carry distinct instances of thread type `ty`.
    pub fn distinct_threads(
        e1: impl Into<EventTerm>,
        e2: impl Into<EventTerm>,
        ty: ThreadTypeId,
    ) -> Self {
        Formula::Atom(Atom::DistinctThreads(e1.into(), e2.into(), ty))
    }

    /// `v1 = v2` on values.
    pub fn value_eq(v1: ValueTerm, v2: ValueTerm) -> Self {
        Formula::Atom(Atom::ValueCmp(CmpOp::Eq, v1, v2))
    }

    /// General value comparison.
    pub fn value_cmp(op: CmpOp, v1: ValueTerm, v2: ValueTerm) -> Self {
        Formula::Atom(Atom::ValueCmp(op, v1, v2))
    }

    // --- Connectives --------------------------------------------------------

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Formula::Not(Box::new(self))
    }

    /// Binary conjunction (use [`Formula::And`] directly for n-ary).
    pub fn and(self, other: Formula) -> Self {
        match (self, other) {
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (f, g) => Formula::And(vec![f, g]),
        }
    }

    /// Binary disjunction.
    pub fn or(self, other: Formula) -> Self {
        match (self, other) {
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (f, g) => Formula::Or(vec![f, g]),
        }
    }

    /// Implication `self ⊃ other`.
    pub fn implies(self, other: Formula) -> Self {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Bi-implication.
    pub fn iff(self, other: Formula) -> Self {
        Formula::Iff(Box::new(self), Box::new(other))
    }

    // --- Quantifiers --------------------------------------------------------

    /// `∀ var : sel . body`.
    pub fn forall(var: impl Into<String>, sel: EventSel, body: Formula) -> Self {
        Formula::ForAll(var.into(), sel, Box::new(body))
    }

    /// `∃ var : sel . body`.
    pub fn exists(var: impl Into<String>, sel: EventSel, body: Formula) -> Self {
        Formula::Exists(var.into(), sel, Box::new(body))
    }

    /// `∃! var : sel . body`.
    pub fn exists_unique(var: impl Into<String>, sel: EventSel, body: Formula) -> Self {
        Formula::ExistsUnique(var.into(), sel, Box::new(body))
    }

    /// "∃ at most one `var : sel` with `body`".
    pub fn at_most_one(var: impl Into<String>, sel: EventSel, body: Formula) -> Self {
        Formula::AtMostOne(var.into(), sel, Box::new(body))
    }

    // --- Temporal operators -------------------------------------------------

    /// `◻ self` — henceforth.
    pub fn henceforth(self) -> Self {
        Formula::Henceforth(Box::new(self))
    }

    /// `◇ self` — eventually.
    pub fn eventually(self) -> Self {
        Formula::Eventually(Box::new(self))
    }

    /// True if the formula contains a temporal operator; temporal-free
    /// restrictions are *immediate assertions* (§7) evaluable on a single
    /// history.
    pub fn is_temporal(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => false,
            Formula::Not(f) => f.is_temporal(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(Formula::is_temporal),
            Formula::Implies(a, b) | Formula::Iff(a, b) => a.is_temporal() || b.is_temporal(),
            Formula::ForAll(_, _, f)
            | Formula::Exists(_, _, f)
            | Formula::ExistsUnique(_, _, f)
            | Formula::AtMostOne(_, _, f) => f.is_temporal(),
            Formula::Henceforth(_) | Formula::Eventually(_) => true,
        }
    }

    /// Pretty-prints the formula with names resolved against `structure`.
    pub fn render(&self, structure: &Structure) -> String {
        let mut out = String::new();
        self.render_into(structure, &mut out);
        out
    }

    fn render_into(&self, s: &Structure, out: &mut String) {
        match self {
            Formula::True => out.push_str("true"),
            Formula::False => out.push_str("false"),
            Formula::Atom(a) => render_atom(a, s, out),
            Formula::Not(f) => {
                out.push_str("NOT (");
                f.render_into(s, out);
                out.push(')');
            }
            Formula::And(fs) => render_nary("AND", fs, s, out),
            Formula::Or(fs) => render_nary("OR", fs, s, out),
            Formula::Implies(a, b) => {
                out.push('(');
                a.render_into(s, out);
                out.push_str(" => ");
                b.render_into(s, out);
                out.push(')');
            }
            Formula::Iff(a, b) => {
                out.push('(');
                a.render_into(s, out);
                out.push_str(" <=> ");
                b.render_into(s, out);
                out.push(')');
            }
            Formula::ForAll(v, sel, f) => render_quant("FORALL", v, sel, f, s, out),
            Formula::Exists(v, sel, f) => render_quant("EXISTS", v, sel, f, s, out),
            Formula::ExistsUnique(v, sel, f) => render_quant("EXISTS!", v, sel, f, s, out),
            Formula::AtMostOne(v, sel, f) => render_quant("ATMOSTONE", v, sel, f, s, out),
            Formula::Henceforth(f) => {
                out.push_str("[](");
                f.render_into(s, out);
                out.push(')');
            }
            Formula::Eventually(f) => {
                out.push_str("<>(");
                f.render_into(s, out);
                out.push(')');
            }
        }
    }
}

fn render_nary(op: &str, fs: &[Formula], s: &Structure, out: &mut String) {
    out.push('(');
    for (i, f) in fs.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, " {op} ");
        }
        f.render_into(s, out);
    }
    out.push(')');
}

fn render_quant(
    kw: &str,
    var: &str,
    sel: &EventSel,
    body: &Formula,
    s: &Structure,
    out: &mut String,
) {
    let _ = write!(out, "({kw} {var}");
    render_sel(sel, s, out);
    out.push_str(") ");
    body.render_into(s, out);
}

fn render_sel(sel: &EventSel, s: &Structure, out: &mut String) {
    if let Some(c) = sel.class {
        let _ = write!(out, " : {}", s.class_info(c).name());
    }
    if let Some(el) = sel.element {
        let _ = write!(out, " @ {}", s.element_info(el).name());
    }
    if let Some(t) = sel.thread {
        let _ = write!(out, " in {t}");
    }
}

fn render_term(t: &EventTerm, s: &Structure, out: &mut String) {
    match t {
        EventTerm::Var(v) => out.push_str(v),
        EventTerm::Fixed(id) => {
            let _ = write!(out, "{id}");
        }
        EventTerm::NthAt(el, i) => {
            let _ = write!(out, "{}^{i}", s.element_info(*el).name());
        }
    }
}

fn render_value_term(t: &ValueTerm, s: &Structure, out: &mut String) {
    match t {
        ValueTerm::Const(v) => {
            let _ = write!(out, "{v}");
        }
        ValueTerm::Param(e, p) => {
            render_term(e, s, out);
            match p {
                ParamRef::Index(i) => {
                    let _ = write!(out, ".par{i}");
                }
                ParamRef::Named(n) => {
                    let _ = write!(out, ".{n}");
                }
            }
        }
        ValueTerm::SeqOf(e) => {
            out.push_str("seq(");
            render_term(e, s, out);
            out.push(')');
        }
    }
}

fn render_atom(a: &Atom, s: &Structure, out: &mut String) {
    match a {
        Atom::Occurred(e) => {
            out.push_str("occurred(");
            render_term(e, s, out);
            out.push(')');
        }
        Atom::AtElement(e, el) => {
            render_term(e, s, out);
            let _ = write!(out, " @ {}", s.element_info(*el).name());
        }
        Atom::InClass(e, c) => {
            render_term(e, s, out);
            let _ = write!(out, " : {}", s.class_info(*c).name());
        }
        Atom::Matches(e, sel) => {
            render_term(e, s, out);
            render_sel(sel, s, out);
        }
        Atom::Enables(a1, a2) => {
            render_term(a1, s, out);
            out.push_str(" |> ");
            render_term(a2, s, out);
        }
        Atom::ElementPrecedes(a1, a2) => {
            render_term(a1, s, out);
            out.push_str(" =el=> ");
            render_term(a2, s, out);
        }
        Atom::TemporallyPrecedes(a1, a2) => {
            render_term(a1, s, out);
            out.push_str(" ==> ");
            render_term(a2, s, out);
        }
        Atom::Concurrent(a1, a2) => {
            out.push_str("concurrent(");
            render_term(a1, s, out);
            out.push_str(", ");
            render_term(a2, s, out);
            out.push(')');
        }
        Atom::EventEq(a1, a2) => {
            render_term(a1, s, out);
            out.push_str(" == ");
            render_term(a2, s, out);
        }
        Atom::AtControlPoint(e, sel) => {
            render_term(e, s, out);
            out.push_str(" at");
            render_sel(sel, s, out);
        }
        Atom::New(e) => {
            out.push_str("new(");
            render_term(e, s, out);
            out.push(')');
        }
        Atom::Potential(e) => {
            out.push_str("potential(");
            render_term(e, s, out);
            out.push(')');
        }
        Atom::SameThread(a1, a2, ty) => {
            out.push_str("samethread(");
            render_term(a1, s, out);
            out.push_str(", ");
            render_term(a2, s, out);
            let _ = write!(out, ", {ty})");
        }
        Atom::DistinctThreads(a1, a2, ty) => {
            out.push_str("distinctthreads(");
            render_term(a1, s, out);
            out.push_str(", ");
            render_term(a2, s, out);
            let _ = write!(out, ", {ty})");
        }
        Atom::ValueCmp(op, v1, v2) => {
            render_value_term(v1, s, out);
            let _ = write!(out, " {op} ");
            render_value_term(v2, s, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structure() -> Structure {
        let mut s = Structure::new();
        let a = s.add_class("Assign", &["newval"]).unwrap();
        let g = s.add_class("Getval", &["oldval"]).unwrap();
        s.add_element("Var", &[a, g]).unwrap();
        s
    }

    #[test]
    fn and_or_flatten() {
        let f = Formula::True.and(Formula::False).and(Formula::True);
        assert!(matches!(&f, Formula::And(v) if v.len() == 3));
        let g = Formula::True.or(Formula::False).or(Formula::True);
        assert!(matches!(&g, Formula::Or(v) if v.len() == 3));
        let mixed = Formula::True.and(Formula::False.or(Formula::True));
        assert!(matches!(&mixed, Formula::And(v) if v.len() == 2));
    }

    #[test]
    fn is_temporal_detection() {
        assert!(!Formula::occurred("e").is_temporal());
        assert!(Formula::occurred("e").henceforth().is_temporal());
        assert!(
            Formula::forall("e", EventSel::any(), Formula::occurred("e").eventually())
                .is_temporal()
        );
        assert!(!Formula::True.and(Formula::False).is_temporal());
        assert!(Formula::True.and(Formula::False.eventually()).is_temporal());
        assert!(Formula::occurred("e")
            .not()
            .implies(Formula::True.henceforth())
            .is_temporal());
    }

    #[test]
    fn render_readable() {
        let s = structure();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        let f = Formula::forall(
            "a",
            EventSel::of_class(assign),
            Formula::exists(
                "g",
                EventSel::of_class(getval),
                Formula::enables("a", "g").implies(Formula::value_eq(
                    ValueTerm::param("a", "newval"),
                    ValueTerm::param("g", "oldval"),
                )),
            ),
        );
        let r = f.render(&s);
        assert!(r.contains("FORALL a : Assign"));
        assert!(r.contains("EXISTS g : Getval"));
        assert!(r.contains("a |> g"));
        assert!(r.contains("a.newval = g.oldval"));
    }

    #[test]
    fn render_temporal_and_special_atoms() {
        let s = structure();
        let getval = s.class("Getval").unwrap();
        let f = Formula::at_control("e", EventSel::of_class(getval))
            .and(Formula::is_new("e"))
            .and(Formula::potential("x"))
            .henceforth()
            .eventually();
        let r = f.render(&s);
        assert!(r.contains("<>([]("));
        assert!(r.contains("e at : Getval"));
        assert!(r.contains("new(e)"));
        assert!(r.contains("potential(x)"));
    }

    #[test]
    fn render_terms_and_atoms() {
        use crate::{CmpOp, EventTerm, ValueTerm};
        use gem_core::EventId;
        let s = structure();
        let var = s.element("Var").unwrap();
        // Fixed event id, occurrence notation, seq(), positional params.
        let f = Formula::event_eq(
            EventTerm::Fixed(EventId::from_raw(3)),
            EventTerm::NthAt(var, 2),
        )
        .and(Formula::value_cmp(
            CmpOp::Lt,
            ValueTerm::SeqOf(EventTerm::var("e")),
            ValueTerm::param("e", 1usize),
        ))
        .and(Formula::element_precedes("a", "b"))
        .and(Formula::concurrent("a", "b"))
        .and(Formula::matches("a", EventSel::at_element(var)));
        let r = f.render(&s);
        assert!(r.contains("e3 == Var^2"), "{r}");
        assert!(r.contains("seq(e) < e.par1"), "{r}");
        assert!(r.contains("a =el=> b"), "{r}");
        assert!(r.contains("concurrent(a, b)"), "{r}");
        assert!(r.contains("a @ Var"), "{r}");
    }

    #[test]
    fn render_thread_atoms_and_iff() {
        use gem_core::ThreadTypeId;
        let s = structure();
        let f = Formula::same_thread("a", "b", ThreadTypeId::from_raw(2))
            .iff(Formula::distinct_threads("a", "b", ThreadTypeId::from_raw(2)).not());
        let r = f.render(&s);
        assert!(r.contains("samethread(a, b, pi2)"), "{r}");
        assert!(r.contains("<=>"), "{r}");
        assert!(r.contains("distinctthreads"), "{r}");
    }

    #[test]
    fn render_quantifier_variants() {
        let s = structure();
        let r1 = Formula::exists_unique("e", EventSel::any(), Formula::True).render(&s);
        assert!(r1.contains("EXISTS! e"));
        let r2 = Formula::at_most_one("e", EventSel::any(), Formula::True).render(&s);
        assert!(r2.contains("ATMOSTONE e"));
    }
}
