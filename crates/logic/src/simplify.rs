//! Formula simplification: constant folding and connective flattening.
//!
//! Generated restrictions (per-index conjunctions, instantiated
//! abbreviations) accumulate `true`/`false` leaves and nested
//! `And`/`Or` chains; [`simplify`] normalises them without changing
//! meaning (soundness is property-tested against random computations in
//! the integration suite). Temporal operators and quantifiers are
//! preserved — only propositional structure is folded:
//!
//! * `¬¬φ → φ`, `¬true → false`, `¬false → true`
//! * `And`/`Or` flattening, unit/absorbing-element elimination
//! * `true ⊃ φ → φ`, `false ⊃ φ → true`, `φ ⊃ true → true`
//! * `◻true → true`, `◇false → false` (constants are time-invariant)
//! * quantifiers over constant bodies: `∀x.true → true`, `∃x.false → false`

use crate::Formula;

/// Returns a logically equivalent, structurally smaller formula.
///
/// When an ambient probe is installed (`gem_obs::ambient`), records the
/// node counts before and after (`logic.simplify.size_before` /
/// `logic.simplify.size_after`), from which the saving follows.
pub fn simplify(formula: &Formula) -> Formula {
    let result = simplify_rec(formula);
    if gem_obs::ambient::active() {
        gem_obs::ambient::add("logic.simplify.calls", 1);
        gem_obs::ambient::add("logic.simplify.size_before", formula_size(formula) as u64);
        gem_obs::ambient::add("logic.simplify.size_after", formula_size(&result) as u64);
    }
    result
}

fn simplify_rec(formula: &Formula) -> Formula {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) => formula.clone(),
        Formula::Not(f) => match simplify_rec(f) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            g => Formula::Not(Box::new(g)),
        },
        Formula::And(fs) => {
            let mut parts = Vec::new();
            for f in fs {
                match simplify_rec(f) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => parts.extend(inner),
                    g => parts.push(g),
                }
            }
            match parts.len() {
                0 => Formula::True,
                1 => parts.pop().expect("len checked"),
                _ => Formula::And(parts),
            }
        }
        Formula::Or(fs) => {
            let mut parts = Vec::new();
            for f in fs {
                match simplify_rec(f) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => parts.extend(inner),
                    g => parts.push(g),
                }
            }
            match parts.len() {
                0 => Formula::False,
                1 => parts.pop().expect("len checked"),
                _ => Formula::Or(parts),
            }
        }
        Formula::Implies(a, b) => match (simplify_rec(a), simplify_rec(b)) {
            (Formula::True, g) => g,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (f, Formula::False) => simplify_rec(&Formula::Not(Box::new(f))),
            (f, g) => Formula::Implies(Box::new(f), Box::new(g)),
        },
        Formula::Iff(a, b) => match (simplify_rec(a), simplify_rec(b)) {
            (Formula::True, g) | (g, Formula::True) => g,
            (Formula::False, g) | (g, Formula::False) => simplify_rec(&Formula::Not(Box::new(g))),
            (f, g) => Formula::Iff(Box::new(f), Box::new(g)),
        },
        Formula::ForAll(v, sel, f) => match simplify_rec(f) {
            Formula::True => Formula::True,
            g => Formula::ForAll(v.clone(), sel.clone(), Box::new(g)),
        },
        Formula::Exists(v, sel, f) => match simplify_rec(f) {
            Formula::False => Formula::False,
            g => Formula::Exists(v.clone(), sel.clone(), Box::new(g)),
        },
        Formula::ExistsUnique(v, sel, f) => {
            Formula::ExistsUnique(v.clone(), sel.clone(), Box::new(simplify_rec(f)))
        }
        Formula::AtMostOne(v, sel, f) => match simplify_rec(f) {
            Formula::False => Formula::True, // zero matches ≤ 1
            g => Formula::AtMostOne(v.clone(), sel.clone(), Box::new(g)),
        },
        Formula::Henceforth(f) => match simplify_rec(f) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            g => Formula::Henceforth(Box::new(g)),
        },
        Formula::Eventually(f) => match simplify_rec(f) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            g => Formula::Eventually(Box::new(g)),
        },
    }
}

/// Structural size of a formula (nodes), for simplification metrics.
pub fn formula_size(formula: &Formula) -> usize {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) => 1,
        Formula::Not(f)
        | Formula::ForAll(_, _, f)
        | Formula::Exists(_, _, f)
        | Formula::ExistsUnique(_, _, f)
        | Formula::AtMostOne(_, _, f)
        | Formula::Henceforth(f)
        | Formula::Eventually(f) => 1 + formula_size(f),
        Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(formula_size).sum::<usize>(),
        Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + formula_size(a) + formula_size(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSel;

    fn atom() -> Formula {
        Formula::occurred("e")
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simplify(&Formula::True.not()), Formula::False);
        assert_eq!(simplify(&Formula::False.not()), Formula::True);
        assert_eq!(simplify(&atom().not().not()), atom());
        assert_eq!(simplify(&Formula::True.and(atom())), atom());
        assert_eq!(simplify(&Formula::False.and(atom())), Formula::False);
        assert_eq!(simplify(&Formula::False.or(atom())), atom());
        assert_eq!(simplify(&Formula::True.or(atom())), Formula::True);
        assert_eq!(simplify(&Formula::And(vec![])), Formula::True);
        assert_eq!(simplify(&Formula::Or(vec![])), Formula::False);
    }

    #[test]
    fn implication_and_iff() {
        assert_eq!(simplify(&Formula::True.implies(atom())), atom());
        assert_eq!(simplify(&Formula::False.implies(atom())), Formula::True);
        assert_eq!(simplify(&atom().implies(Formula::True)), Formula::True);
        assert_eq!(simplify(&atom().implies(Formula::False)), atom().not());
        assert_eq!(simplify(&atom().iff(Formula::True)), atom());
        assert_eq!(simplify(&atom().iff(Formula::False)), atom().not());
    }

    #[test]
    fn quantifiers_and_temporal() {
        assert_eq!(
            simplify(&Formula::forall("x", EventSel::any(), Formula::True)),
            Formula::True
        );
        assert_eq!(
            simplify(&Formula::exists("x", EventSel::any(), Formula::False)),
            Formula::False
        );
        assert_eq!(
            simplify(&Formula::at_most_one("x", EventSel::any(), Formula::False)),
            Formula::True
        );
        assert_eq!(simplify(&Formula::True.henceforth()), Formula::True);
        assert_eq!(simplify(&Formula::False.eventually()), Formula::False);
        // Non-constant bodies are preserved.
        let f = Formula::forall("x", EventSel::any(), atom().eventually());
        assert_eq!(simplify(&f), f);
    }

    #[test]
    fn flattening_reduces_size() {
        let f = Formula::And(vec![
            Formula::And(vec![atom(), Formula::True]),
            Formula::And(vec![Formula::And(vec![atom()]), Formula::True]),
        ]);
        let g = simplify(&f);
        assert!(matches!(&g, Formula::And(v) if v.len() == 2));
        assert!(formula_size(&g) < formula_size(&f));
    }

    #[test]
    fn exists_unique_body_simplified_but_kept() {
        // ∃! over `false` is genuinely false (no witness), but we keep
        // the quantifier rather than fold — ∃!x.false ≠ true/false per
        // domain… it is always false, actually, but conservatively the
        // body is simplified in place.
        let f = Formula::exists_unique("x", EventSel::any(), Formula::True.and(atom()));
        let g = simplify(&f);
        assert!(matches!(g, Formula::ExistsUnique(_, _, b) if *b == atom()));
    }
}
