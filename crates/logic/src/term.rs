//! Terms of the restriction language: event references, event selectors,
//! and value expressions.

use gem_core::{ClassId, Computation, ElementId, Event, EventId, ThreadTag, Value};

/// A term denoting an event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventTerm {
    /// A bound variable introduced by a quantifier.
    Var(String),
    /// A fixed event of the computation under evaluation.
    Fixed(EventId),
    /// The `i`-th event at an element — the paper's `EL^i` notation.
    NthAt(ElementId, usize),
}

impl EventTerm {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        EventTerm::Var(name.into())
    }
}

impl From<EventId> for EventTerm {
    fn from(id: EventId) -> Self {
        EventTerm::Fixed(id)
    }
}

impl From<&str> for EventTerm {
    fn from(name: &str) -> Self {
        EventTerm::Var(name.to_owned())
    }
}

/// A selector describing a class of events — the paper's `e : E` notation,
/// optionally narrowed to an element and/or a thread instance.
///
/// An empty selector matches every event.
///
/// # Examples
///
/// ```
/// use gem_logic::EventSel;
/// use gem_core::{ClassId, ElementId};
/// let sel = EventSel::of_class(ClassId::from_raw(0)).at(ElementId::from_raw(2));
/// assert!(sel.class.is_some() && sel.element.is_some());
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EventSel {
    /// Restrict to events at this element.
    pub element: Option<ElementId>,
    /// Restrict to events of this class.
    pub class: Option<ClassId>,
    /// Restrict to events carrying this thread tag.
    pub thread: Option<ThreadTag>,
    /// Restrict to events whose `i`-th parameter equals the given value,
    /// for each `(i, value)` pair (e.g. "the assignments made inside entry
    /// StartRead", when the substrate records the entry as a parameter).
    pub params: Vec<(usize, Value)>,
}

impl EventSel {
    /// The selector matching every event.
    pub fn any() -> Self {
        Self::default()
    }

    /// Selector for events of `class`.
    pub fn of_class(class: ClassId) -> Self {
        Self {
            class: Some(class),
            ..Self::default()
        }
    }

    /// Selector for events at `element`.
    pub fn at_element(element: ElementId) -> Self {
        Self {
            element: Some(element),
            ..Self::default()
        }
    }

    /// Narrows this selector to events at `element`.
    pub fn at(mut self, element: ElementId) -> Self {
        self.element = Some(element);
        self
    }

    /// Narrows this selector to events carrying `tag`.
    pub fn in_thread(mut self, tag: ThreadTag) -> Self {
        self.thread = Some(tag);
        self
    }

    /// Narrows this selector to events whose `index`-th parameter equals
    /// `value`.
    pub fn with_param(mut self, index: usize, value: impl Into<Value>) -> Self {
        self.params.push((index, value.into()));
        self
    }

    /// True if `event` satisfies every constraint of this selector.
    pub fn matches(&self, event: &Event) -> bool {
        self.element.is_none_or(|el| event.element() == el)
            && self.class.is_none_or(|c| event.class() == c)
            && self.thread.is_none_or(|t| event.in_thread(t))
            && self
                .params
                .iter()
                .all(|(i, v)| event.param(*i).is_some_and(|p| p == v))
    }

    /// Iterates over the ids of the computation's events matching this
    /// selector.
    pub fn select<'a>(
        &'a self,
        computation: &'a Computation,
    ) -> impl Iterator<Item = EventId> + 'a {
        computation
            .events()
            .iter()
            .filter(|e| self.matches(e))
            .map(|e| e.id())
    }
}

/// A reference to an event parameter, by position or by declared name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParamRef {
    /// Positional parameter index.
    Index(usize),
    /// Parameter name resolved against the event's class declaration.
    Named(String),
}

impl From<usize> for ParamRef {
    fn from(i: usize) -> Self {
        ParamRef::Index(i)
    }
}

impl From<&str> for ParamRef {
    fn from(s: &str) -> Self {
        ParamRef::Named(s.to_owned())
    }
}

/// A term denoting a data value.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueTerm {
    /// A literal value.
    Const(Value),
    /// A parameter of an event (`e.par`).
    Param(EventTerm, ParamRef),
    /// The occurrence number of an event at its element, as an integer.
    SeqOf(EventTerm),
}

impl ValueTerm {
    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        ValueTerm::Const(v.into())
    }

    /// Shorthand for `event.param`.
    pub fn param(event: impl Into<EventTerm>, param: impl Into<ParamRef>) -> Self {
        ValueTerm::Param(event.into(), param.into())
    }
}

/// Comparison operators between value terms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less (integers only; false otherwise).
    Lt,
    /// Less or equal (integers only; false otherwise).
    Le,
    /// Strictly greater (integers only; false otherwise).
    Gt,
    /// Greater or equal (integers only; false otherwise).
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two values.
    ///
    /// `Eq`/`Ne` compare any values structurally; the order comparisons
    /// are defined only between two integers and evaluate to `false`
    /// otherwise (`Ne` of mixed variants is `true`).
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (a.as_int(), b.as_int()) {
                (Some(x), Some(y)) => match self {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    _ => unreachable!(),
                },
                _ => false,
            },
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ComputationBuilder, Structure};

    #[test]
    fn cmp_op_semantics() {
        let one = Value::Int(1);
        let two = Value::Int(2);
        assert!(CmpOp::Eq.apply(&one, &one));
        assert!(CmpOp::Ne.apply(&one, &two));
        assert!(CmpOp::Lt.apply(&one, &two));
        assert!(CmpOp::Le.apply(&one, &one));
        assert!(CmpOp::Gt.apply(&two, &one));
        assert!(CmpOp::Ge.apply(&two, &two));
        // Order on non-integers is false; Ne across variants is true.
        assert!(!CmpOp::Lt.apply(&Value::from("a"), &Value::from("b")));
        assert!(CmpOp::Ne.apply(&Value::from("a"), &one));
        assert!(!CmpOp::Eq.apply(&Value::from("a"), &one));
    }

    #[test]
    fn selector_matching() {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let b_cls = s.add_class("B", &[]).unwrap();
        let p = s.add_element("P", &[a, b_cls]).unwrap();
        let q = s.add_element("Q", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![]).unwrap();
        let e2 = b.add_event(p, b_cls, vec![]).unwrap();
        let e3 = b.add_event(q, a, vec![]).unwrap();
        let c = b.seal().unwrap();

        assert_eq!(EventSel::any().select(&c).count(), 3);
        assert_eq!(
            EventSel::of_class(a).select(&c).collect::<Vec<_>>(),
            vec![e1, e3]
        );
        assert_eq!(
            EventSel::of_class(a).at(p).select(&c).collect::<Vec<_>>(),
            vec![e1]
        );
        assert_eq!(
            EventSel::at_element(p).select(&c).collect::<Vec<_>>(),
            vec![e1, e2]
        );
    }

    #[test]
    fn selector_thread_constraint() {
        use gem_core::{ThreadTag, ThreadTypeId};
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![]).unwrap();
        let e2 = b.add_event(p, a, vec![]).unwrap();
        let tag = ThreadTag::new(ThreadTypeId::from_raw(0), 7);
        b.tag_thread(e1, tag).unwrap();
        let c = b.seal().unwrap();
        let sel = EventSel::any().in_thread(tag);
        assert_eq!(sel.select(&c).collect::<Vec<_>>(), vec![e1]);
        assert!(!sel.matches(c.event(e2)));
    }

    #[test]
    fn selector_param_constraint() {
        let mut s = Structure::new();
        let a = s.add_class("A", &["x"]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![Value::Int(1)]).unwrap();
        let _e2 = b.add_event(p, a, vec![Value::Int(2)]).unwrap();
        let c = b.seal().unwrap();
        let sel = EventSel::of_class(a).with_param(0, 1i64);
        assert_eq!(sel.select(&c).collect::<Vec<_>>(), vec![e1]);
        // Out-of-range constraint matches nothing.
        let none = EventSel::of_class(a).with_param(3, 1i64);
        assert_eq!(none.select(&c).count(), 0);
    }

    #[test]
    fn term_conversions() {
        assert_eq!(EventTerm::from("x"), EventTerm::Var("x".into()));
        assert_eq!(
            EventTerm::from(EventId::from_raw(2)),
            EventTerm::Fixed(EventId::from_raw(2))
        );
        assert_eq!(ParamRef::from(1), ParamRef::Index(1));
        assert_eq!(ParamRef::from("loc"), ParamRef::Named("loc".into()));
        assert_eq!(ValueTerm::lit(5i64), ValueTerm::Const(Value::Int(5)));
    }
}
