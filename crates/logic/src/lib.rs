//! # gem-logic — GEM restriction logic
//!
//! The specification language of the GEM reproduction: first-order logic
//! over GEM predicates (`occurred`, `@`, `⊳`, `⇒ₑ`, `⇒`, parameter
//! comparison, `at`, `new`, `potential`, thread predicates) together with
//! the temporal operators **henceforth** (`◻`) and **eventually** (`◇`)
//! interpreted over valid history sequences (§7–§8 of Lansky & Owicki).
//!
//! * Build restrictions with the constructors on [`Formula`].
//! * Evaluate them with [`holds_on_computation`] (computation-level
//!   immediate assertions), [`holds_on_history`], or
//!   [`holds_on_sequence`].
//! * Decide whether a restriction holds of *all* history sequences of a
//!   computation with [`check`] under a [`Strategy`].
//!
//! ## Example: a safety restriction over all interleavings
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gem_core::{ComputationBuilder, Structure};
//! use gem_logic::{check, Formula, Strategy};
//!
//! let mut s = Structure::new();
//! let act = s.add_class("Act", &[])?;
//! let p = s.add_element("P", &[act])?;
//! let q = s.add_element("Q", &[act])?;
//! let mut b = ComputationBuilder::new(s);
//! let p1 = b.add_event(p, act, vec![])?;
//! let q1 = b.add_event(q, act, vec![])?;
//! b.enable(p1, q1)?; // P's event causes Q's
//! let c = b.seal()?;
//!
//! // Safety: q1 never occurs without p1 — true of every interleaving.
//! let f = Formula::occurred(q1).implies(Formula::occurred(p1)).henceforth();
//! assert!(check(&f, &c, Strategy::default())?.holds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blame;
mod eval;
mod formula;
pub mod incr;
mod simplify;
mod strategy;
mod term;

pub use blame::{blame_on_computation, blame_on_sequence, Blame, BlameFrame};
pub use eval::{holds_on_computation, holds_on_history, holds_on_sequence, EvalError};
pub use formula::{Atom, Formula};
pub use simplify::{formula_size, simplify};
pub use strategy::{
    check, check_many, random_linearization, CheckReport, Counterexample, MultiCheck, Strategy,
};
pub use term::{CmpOp, EventSel, EventTerm, ParamRef, ValueTerm};
