//! Evaluation of restriction formulae over computations, histories, and
//! history sequences.
//!
//! Semantics follow §7/§8 of the paper:
//!
//! * An *immediate assertion* is evaluated on a single history; a formula
//!   asserted of a history sequence holds iff it holds of the first
//!   history ( `S ⊨ ρ ⇔ α₀ ⊨ ρ` ).
//! * `◻ ρ` holds of `S` iff `ρ` holds of every tail of `S`; `◇ ρ` iff it
//!   holds of some tail.
//! * Quantified variables range over all events of the computation (the
//!   predicates `occurred`, `potential` etc. distinguish what has
//!   happened in the current history).

use std::fmt;

use gem_core::{Computation, EventId, History, Value};

use crate::{Atom, EventTerm, Formula, ParamRef, ValueTerm};

/// Errors raised during evaluation (programming errors in the formula, not
/// properties of the computation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A variable was used without an enclosing quantifier binding it.
    UnboundVariable(String),
    /// A named parameter is not declared by the event's class.
    UnknownParam {
        /// The parameter name used.
        name: String,
        /// The class the event belongs to (by name).
        class: String,
    },
    /// A positional parameter index exceeds the event's parameter list.
    ParamOutOfRange {
        /// The index used.
        index: usize,
        /// Number of parameters the event carries.
        arity: usize,
    },
    /// A formula was evaluated against an empty history sequence.
    EmptySequence,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound event variable {v:?}"),
            EvalError::UnknownParam { name, class } => {
                write!(f, "parameter {name:?} is not declared by class {class:?}")
            }
            EvalError::ParamOutOfRange { index, arity } => {
                write!(f, "parameter index {index} out of range (arity {arity})")
            }
            EvalError::EmptySequence => write!(f, "cannot evaluate over an empty sequence"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Variable bindings, innermost last.
#[derive(Clone, Debug, Default)]
pub(crate) struct Env {
    pub(crate) bindings: Vec<(String, EventId)>,
    /// Formula nodes visited; flushed to the ambient probe in one batch
    /// per evaluation, so the recursion itself stays probe-free.
    pub(crate) nodes: u64,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<EventId> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, e)| e)
    }
}

/// True if `formula` holds of the history sequence `seq` (interpreted as a
/// valid history sequence of `computation`).
///
/// # Errors
///
/// Returns [`EvalError`] for malformed formulae (unbound variables, bad
/// parameter references) or an empty `seq`.
pub fn holds_on_sequence(
    formula: &Formula,
    computation: &Computation,
    seq: &[History],
) -> Result<bool, EvalError> {
    if seq.is_empty() {
        return Err(EvalError::EmptySequence);
    }
    let mut env = Env::default();
    let result = eval(formula, computation, seq, &mut env);
    if gem_obs::ambient::active() {
        gem_obs::ambient::add("logic.eval.calls", 1);
        gem_obs::ambient::add("logic.eval.nodes", env.nodes);
    }
    result
}

/// True if `formula` holds of the single history `history` (as the
/// one-element sequence; `◻ρ`/`◇ρ` degenerate to `ρ`).
///
/// # Errors
///
/// Returns [`EvalError`] for malformed formulae.
pub fn holds_on_history(
    formula: &Formula,
    computation: &Computation,
    history: &History,
) -> Result<bool, EvalError> {
    holds_on_sequence(formula, computation, std::slice::from_ref(history))
}

/// True if `formula` holds of the *complete* computation — evaluation on
/// the full history. This is the interpretation of computation-level
/// (non-temporal) restrictions.
///
/// # Errors
///
/// Returns [`EvalError`] for malformed formulae.
pub fn holds_on_computation(
    formula: &Formula,
    computation: &Computation,
) -> Result<bool, EvalError> {
    holds_on_history(formula, computation, &History::full(computation))
}

fn resolve(
    term: &EventTerm,
    computation: &Computation,
    env: &Env,
) -> Result<Option<EventId>, EvalError> {
    match term {
        EventTerm::Var(name) => env
            .lookup(name)
            .map(Some)
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        EventTerm::Fixed(id) => Ok(if id.index() < computation.event_count() {
            Some(*id)
        } else {
            None
        }),
        EventTerm::NthAt(el, i) => Ok(computation.nth_at(*el, *i)),
    }
}

fn resolve_value(
    term: &ValueTerm,
    computation: &Computation,
    env: &Env,
) -> Result<Option<Value>, EvalError> {
    match term {
        ValueTerm::Const(v) => Ok(Some(v.clone())),
        ValueTerm::SeqOf(e) => Ok(resolve(e, computation, env)?
            .map(|id| Value::Int(i64::from(computation.event(id).seq())))),
        ValueTerm::Param(e, p) => {
            let Some(id) = resolve(e, computation, env)? else {
                return Ok(None);
            };
            let ev = computation.event(id);
            let index = match p {
                ParamRef::Index(i) => *i,
                ParamRef::Named(name) => {
                    let info = computation.structure().class_info(ev.class());
                    info.param_index(name)
                        .ok_or_else(|| EvalError::UnknownParam {
                            name: name.clone(),
                            class: info.name().to_owned(),
                        })?
                }
            };
            ev.param(index)
                .cloned()
                .map(Some)
                .ok_or(EvalError::ParamOutOfRange {
                    index,
                    arity: ev.params().len(),
                })
        }
    }
}

pub(crate) fn eval(
    formula: &Formula,
    computation: &Computation,
    seq: &[History],
    env: &mut Env,
) -> Result<bool, EvalError> {
    env.nodes += 1;
    match formula {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(a) => eval_atom(a, computation, &seq[0], env),
        Formula::Not(f) => Ok(!eval(f, computation, seq, env)?),
        Formula::And(fs) => {
            for f in fs {
                if !eval(f, computation, seq, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if eval(f, computation, seq, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => {
            Ok(!eval(a, computation, seq, env)? || eval(b, computation, seq, env)?)
        }
        Formula::Iff(a, b) => {
            Ok(eval(a, computation, seq, env)? == eval(b, computation, seq, env)?)
        }
        Formula::ForAll(var, sel, body) => {
            let candidates: Vec<EventId> = sel.select(computation).collect();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                env.bindings.pop();
                if !ok {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Exists(var, sel, body) => {
            let candidates: Vec<EventId> = sel.select(computation).collect();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                env.bindings.pop();
                if ok {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::ExistsUnique(var, sel, body) => {
            let mut count = 0usize;
            let candidates: Vec<EventId> = sel.select(computation).collect();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                env.bindings.pop();
                if ok {
                    count += 1;
                    if count > 1 {
                        return Ok(false);
                    }
                }
            }
            Ok(count == 1)
        }
        Formula::AtMostOne(var, sel, body) => {
            let mut count = 0usize;
            let candidates: Vec<EventId> = sel.select(computation).collect();
            for e in candidates {
                env.bindings.push((var.clone(), e));
                let ok = eval(body, computation, seq, env)?;
                env.bindings.pop();
                if ok {
                    count += 1;
                    if count > 1 {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        }
        Formula::Henceforth(f) => {
            for i in 0..seq.len() {
                if !eval(f, computation, &seq[i..], env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Eventually(f) => {
            for i in 0..seq.len() {
                if eval(f, computation, &seq[i..], env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

fn eval_atom(
    atom: &Atom,
    computation: &Computation,
    history: &History,
    env: &Env,
) -> Result<bool, EvalError> {
    // Helper: resolve or decide the atom is false.
    macro_rules! ev {
        ($t:expr) => {
            match resolve($t, computation, env)? {
                Some(id) => id,
                None => return Ok(false),
            }
        };
    }
    match atom {
        Atom::Occurred(t) => Ok(history.contains(ev!(t))),
        Atom::AtElement(t, el) => {
            let e = ev!(t);
            Ok(computation.event(e).element() == *el)
        }
        Atom::InClass(t, c) => {
            let e = ev!(t);
            Ok(computation.event(e).class() == *c)
        }
        Atom::Matches(t, sel) => {
            let e = ev!(t);
            Ok(sel.matches(computation.event(e)))
        }
        Atom::Enables(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            Ok(history.contains(a) && history.contains(b) && computation.enables(a, b))
        }
        Atom::ElementPrecedes(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            Ok(history.contains(a) && history.contains(b) && computation.element_precedes(a, b))
        }
        Atom::TemporallyPrecedes(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            Ok(history.contains(a) && history.contains(b) && computation.temporally_precedes(a, b))
        }
        Atom::Concurrent(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            Ok(history.contains(a) && history.contains(b) && computation.concurrent(a, b))
        }
        Atom::EventEq(t1, t2) => {
            let (a, b) = (ev!(t1), ev!(t2));
            Ok(a == b)
        }
        Atom::AtControlPoint(t, sel) => {
            let e = ev!(t);
            if !history.contains(e) {
                return Ok(false);
            }
            Ok(!computation
                .enabled_from(e)
                .iter()
                .any(|&s| history.contains(s) && sel.matches(computation.event(s))))
        }
        Atom::New(t) => {
            let e = ev!(t);
            if !history.contains(e) {
                return Ok(false);
            }
            Ok(!computation
                .closure()
                .successors(e)
                .iter()
                .any(|s| history.contains(EventId::from_raw(s as u32))))
        }
        Atom::Potential(t) => {
            let e = ev!(t);
            if history.contains(e) {
                return Ok(false);
            }
            Ok(computation
                .closure()
                .predecessors(e)
                .iter()
                .all(|p| history.contains(EventId::from_raw(p as u32))))
        }
        Atom::SameThread(t1, t2, ty) => {
            let (a, b) = (ev!(t1), ev!(t2));
            let (ta, tb) = (
                computation.event(a).thread_of_type(*ty),
                computation.event(b).thread_of_type(*ty),
            );
            Ok(matches!((ta, tb), (Some(x), Some(y)) if x == y))
        }
        Atom::DistinctThreads(t1, t2, ty) => {
            let (a, b) = (ev!(t1), ev!(t2));
            let (ta, tb) = (
                computation.event(a).thread_of_type(*ty),
                computation.event(b).thread_of_type(*ty),
            );
            Ok(matches!((ta, tb), (Some(x), Some(y)) if x != y))
        }
        Atom::ValueCmp(op, v1, v2) => {
            let (Some(a), Some(b)) = (
                resolve_value(v1, computation, env)?,
                resolve_value(v2, computation, env)?,
            ) else {
                return Ok(false);
            };
            Ok(op.apply(&a, &b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSel;
    use gem_core::{ComputationBuilder, HistorySequence, Structure, Value};

    /// Variable computation: Assign(1), Getval(1), Assign(2).
    fn var_comp() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let assign = s.add_class("Assign", &["newval"]).unwrap();
        let getval = s.add_class("Getval", &["oldval"]).unwrap();
        let var = s.add_element("Var", &[assign, getval]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(var, assign, vec![Value::Int(1)]).unwrap();
        let e2 = b.add_event(var, getval, vec![Value::Int(1)]).unwrap();
        let e3 = b.add_event(var, assign, vec![Value::Int(2)]).unwrap();
        b.enable(e1, e2).unwrap();
        (b.seal().unwrap(), vec![e1, e2, e3])
    }

    #[test]
    fn atoms_on_complete_computation() {
        let (c, e) = var_comp();
        assert!(holds_on_computation(&Formula::occurred(e[0]), &c).unwrap());
        assert!(holds_on_computation(&Formula::enables(e[0], e[1]), &c).unwrap());
        assert!(!holds_on_computation(&Formula::enables(e[1], e[2]), &c).unwrap());
        assert!(holds_on_computation(&Formula::element_precedes(e[1], e[2]), &c).unwrap());
        assert!(holds_on_computation(&Formula::precedes(e[0], e[2]), &c).unwrap());
        assert!(!holds_on_computation(&Formula::concurrent(e[0], e[2]), &c).unwrap());
        assert!(holds_on_computation(&Formula::event_eq(e[0], e[0]), &c).unwrap());
        assert!(!holds_on_computation(&Formula::event_eq(e[0], e[1]), &c).unwrap());
    }

    #[test]
    fn occurred_is_history_relative() {
        let (c, e) = var_comp();
        let h = History::from_events(&c, [e[0]]).unwrap();
        assert!(holds_on_history(&Formula::occurred(e[0]), &c, &h).unwrap());
        assert!(!holds_on_history(&Formula::occurred(e[1]), &c, &h).unwrap());
    }

    #[test]
    fn potential_and_new() {
        let (c, e) = var_comp();
        let h = History::from_events(&c, [e[0]]).unwrap();
        assert!(holds_on_history(&Formula::potential(e[1]), &c, &h).unwrap());
        assert!(
            !holds_on_history(&Formula::potential(e[0]), &c, &h).unwrap(),
            "occurred event is not potential"
        );
        assert!(holds_on_history(&Formula::is_new(e[0]), &c, &h).unwrap());
        let h2 = History::from_events(&c, [e[0], e[1]]).unwrap();
        assert!(!holds_on_history(&Formula::is_new(e[0]), &c, &h2).unwrap());
        assert!(holds_on_history(&Formula::is_new(e[1]), &c, &h2).unwrap());
    }

    #[test]
    fn at_control_point_is_history_relative() {
        let (c, e) = var_comp();
        let getval_sel = EventSel::of_class(c.structure().class("Getval").unwrap());
        // In the history containing only e1, e1 is still "at Getval".
        let h1 = History::from_events(&c, [e[0]]).unwrap();
        assert!(holds_on_history(&Formula::at_control(e[0], getval_sel.clone()), &c, &h1).unwrap());
        // Once e2 occurred, e1 has enabled a Getval.
        let h2 = History::from_events(&c, [e[0], e[1]]).unwrap();
        assert!(!holds_on_history(&Formula::at_control(e[0], getval_sel), &c, &h2).unwrap());
    }

    #[test]
    fn variable_semantics_restriction() {
        // Getval must yield the value last assigned — holds for our data.
        let (c, _) = var_comp();
        let s = c.structure();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        let f = Formula::forall(
            "a",
            EventSel::of_class(assign),
            Formula::forall(
                "g",
                EventSel::of_class(getval),
                Formula::enables("a", "g").implies(Formula::value_eq(
                    ValueTerm::param("a", "newval"),
                    ValueTerm::param("g", "oldval"),
                )),
            ),
        );
        assert!(holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn quantifier_semantics() {
        let (c, _) = var_comp();
        let s = c.structure();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        // Exactly one Getval event.
        assert!(holds_on_computation(
            &Formula::exists_unique("g", EventSel::of_class(getval), Formula::occurred("g")),
            &c
        )
        .unwrap());
        // Not exactly one Assign event (there are two).
        assert!(!holds_on_computation(
            &Formula::exists_unique("a", EventSel::of_class(assign), Formula::occurred("a")),
            &c
        )
        .unwrap());
        // At most one Getval: true; at most one Assign: false.
        assert!(holds_on_computation(
            &Formula::at_most_one("g", EventSel::of_class(getval), Formula::occurred("g")),
            &c
        )
        .unwrap());
        assert!(!holds_on_computation(
            &Formula::at_most_one("a", EventSel::of_class(assign), Formula::occurred("a")),
            &c
        )
        .unwrap());
    }

    #[test]
    fn temporal_operators_on_sequences() {
        let (c, e) = var_comp();
        let seq = HistorySequence::from_linearization(&c, &[e[0], e[1], e[2]]);
        // Eventually all three occurred.
        let all = Formula::occurred(e[0])
            .and(Formula::occurred(e[1]))
            .and(Formula::occurred(e[2]));
        assert!(holds_on_sequence(&all.clone().eventually(), &c, seq.histories()).unwrap());
        assert!(!holds_on_sequence(&all.clone().henceforth(), &c, seq.histories()).unwrap());
        // Henceforth: once e1 occurred it stays occurred (monotonicity).
        let stable = Formula::occurred(e[0])
            .implies(Formula::occurred(e[0]).henceforth())
            .henceforth();
        assert!(holds_on_sequence(&stable, &c, seq.histories()).unwrap());
        // ◻(occurred(e3) ⊃ occurred(e1)): e1 (same element) precedes e3.
        let prec = Formula::occurred(e[2])
            .implies(Formula::occurred(e[0]))
            .henceforth();
        assert!(holds_on_sequence(&prec, &c, seq.histories()).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let (c, _) = var_comp();
        let err = holds_on_computation(&Formula::occurred("ghost"), &c).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable(_)));
    }

    #[test]
    fn unknown_param_is_an_error() {
        let (c, e) = var_comp();
        let f = Formula::value_eq(ValueTerm::param(e[0], "missing"), ValueTerm::lit(1i64));
        assert!(matches!(
            holds_on_computation(&f, &c),
            Err(EvalError::UnknownParam { .. })
        ));
    }

    #[test]
    fn out_of_range_param_is_an_error() {
        let (c, e) = var_comp();
        let f = Formula::value_eq(ValueTerm::param(e[0], 5usize), ValueTerm::lit(1i64));
        assert!(matches!(
            holds_on_computation(&f, &c),
            Err(EvalError::ParamOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_sequence_is_an_error() {
        let (c, _) = var_comp();
        assert!(matches!(
            holds_on_sequence(&Formula::True, &c, &[]),
            Err(EvalError::EmptySequence)
        ));
    }

    #[test]
    fn nth_at_term_resolution() {
        let (c, e) = var_comp();
        let var = c.structure().element("Var").unwrap();
        // Var^0 is e1; Var^5 does not exist → atom false, not an error.
        assert!(
            holds_on_computation(&Formula::event_eq(EventTerm::NthAt(var, 0), e[0]), &c).unwrap()
        );
        assert!(!holds_on_computation(&Formula::occurred(EventTerm::NthAt(var, 5)), &c).unwrap());
    }

    #[test]
    fn seq_of_value_term() {
        let (c, e) = var_comp();
        let f = Formula::value_eq(
            ValueTerm::SeqOf(EventTerm::Fixed(e[2])),
            ValueTerm::lit(2i64),
        );
        assert!(holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn thread_atoms() {
        use gem_core::{ThreadTag, ThreadTypeId};
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let p = s.add_element("P", &[a]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(p, a, vec![]).unwrap();
        let e2 = b.add_event(p, a, vec![]).unwrap();
        let e3 = b.add_event(p, a, vec![]).unwrap();
        let ty = ThreadTypeId::from_raw(0);
        b.tag_thread(e1, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(e2, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(e3, ThreadTag::new(ty, 1)).unwrap();
        let c = b.seal().unwrap();
        assert!(holds_on_computation(&Formula::same_thread(e1, e2, ty), &c).unwrap());
        assert!(!holds_on_computation(&Formula::same_thread(e1, e3, ty), &c).unwrap());
        assert!(holds_on_computation(&Formula::distinct_threads(e1, e3, ty), &c).unwrap());
        assert!(!holds_on_computation(&Formula::distinct_threads(e1, e2, ty), &c).unwrap());
    }
}
