//! Checking strategies: deciding whether a restriction holds of *every*
//! valid history sequence of a computation.
//!
//! The paper's semantics quantifies restrictions over all valid history
//! sequences of a computation. The number of vhs is (doubly) exponential,
//! so [`check`] approximates the set by a [`Strategy`]:
//!
//! * [`Strategy::Complete`] — a single sequence containing the complete
//!   history. Exact for non-temporal (computation-level) restrictions.
//! * [`Strategy::Linearizations`] — every one-event-at-a-time vhs. Exact
//!   for `◻`-safety formulae (every history lies on some linearization,
//!   and every pair `α ⊑ β` lies on a common one).
//! * [`Strategy::StepSequences`] — every vhs with arbitrary antichain
//!   steps. Fully exact, but only feasible for very small computations.
//! * [`Strategy::RandomLinearizations`] — seeded sample of linearizations;
//!   sound for *refuting* (a found violation is real) but not exhaustive.
//! * [`Strategy::GreedySteps`] — the single maximal-parallelism vhs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gem_core::{
    for_each_linearization, for_each_step_sequence, Computation, EventId, History, HistorySequence,
};

use crate::{holds_on_sequence, EvalError, Formula};

/// How to enumerate the history sequences a formula is checked against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// The single sequence `[complete history]`.
    Complete,
    /// All linearizations (singleton-step vhs), up to `limit` sequences.
    Linearizations {
        /// Maximum number of sequences to check.
        limit: usize,
    },
    /// All antichain-step vhs, up to `limit` sequences.
    StepSequences {
        /// Maximum number of sequences to check.
        limit: usize,
    },
    /// `count` random linearizations drawn with the given seed.
    RandomLinearizations {
        /// Number of sampled schedules.
        count: usize,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
    /// The single greedy maximal-step sequence.
    GreedySteps,
}

impl Default for Strategy {
    /// Defaults to exhaustive linearizations with a generous limit.
    fn default() -> Self {
        Strategy::Linearizations { limit: 100_000 }
    }
}

/// A violating history sequence, recorded as the event sets of its
/// histories.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Each history of the violating sequence, as its event list.
    pub histories: Vec<Vec<EventId>>,
}

impl Counterexample {
    fn from_histories(seq: &[History]) -> Self {
        Self {
            histories: seq.iter().map(|h| h.iter().collect()).collect(),
        }
    }

    /// Renders the violating sequence with event names resolved against
    /// the computation.
    pub fn describe(&self, computation: &Computation) -> String {
        use std::fmt::Write as _;
        let s = computation.structure();
        let mut out = String::from("violating history sequence:\n");
        let mut prev: Vec<EventId> = Vec::new();
        for (i, h) in self.histories.iter().enumerate() {
            let added: Vec<String> = h
                .iter()
                .filter(|e| !prev.contains(e))
                .map(|&e| {
                    let ev = computation.event(e);
                    format!(
                        "{}.{}^{}",
                        s.element_info(ev.element()).name(),
                        s.class_info(ev.class()).name(),
                        ev.seq()
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  step {i}: +[{}] ({} events)",
                added.join(", "),
                h.len()
            );
            prev = h.clone();
        }
        out
    }
}

/// Result of checking a formula against a computation under a strategy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// True if no checked sequence violated the formula.
    pub holds: bool,
    /// Number of sequences evaluated.
    pub sequences_checked: usize,
    /// True if the strategy's family was fully enumerated (the limit was
    /// not hit). A `holds == true` report with `exhaustive == false` is
    /// only evidence, not proof.
    pub exhaustive: bool,
    /// A violating sequence, if one was found.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    fn passing(sequences_checked: usize, exhaustive: bool) -> Self {
        Self {
            holds: true,
            sequences_checked,
            exhaustive,
            counterexample: None,
        }
    }
}

/// Checks `formula` against `computation` under `strategy`: the formula
/// must hold of every generated history sequence.
///
/// # Errors
///
/// Returns [`EvalError`] if the formula is malformed (unbound variables,
/// bad parameter references).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{ComputationBuilder, Structure};
/// use gem_logic::{check, Formula, Strategy};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// let e = b.add_event(el, act, vec![])?;
/// let c = b.seal()?;
/// let report = check(&Formula::occurred(e).eventually(), &c, Strategy::default())?;
/// assert!(report.holds && report.exhaustive);
/// # Ok(())
/// # }
/// ```
pub fn check(
    formula: &Formula,
    computation: &Computation,
    strategy: Strategy,
) -> Result<CheckReport, EvalError> {
    // A temporal-free restriction is an *immediate assertion* about the
    // computation (§8): evaluating it at the front of every history
    // sequence would test the empty history. Dispatch it to the complete
    // computation regardless of the requested strategy; to assert an
    // immediate property of every history, wrap it in `◻` explicitly.
    let strategy = if formula.is_temporal() {
        strategy
    } else {
        Strategy::Complete
    };
    match strategy {
        Strategy::Complete => {
            let seq = [History::full(computation)];
            if holds_on_sequence(formula, computation, &seq)? {
                Ok(CheckReport::passing(1, true))
            } else {
                Ok(CheckReport {
                    holds: false,
                    sequences_checked: 1,
                    exhaustive: true,
                    counterexample: Some(Counterexample::from_histories(&seq)),
                })
            }
        }
        Strategy::GreedySteps => {
            let seq = HistorySequence::greedy_steps(computation);
            if holds_on_sequence(formula, computation, seq.histories())? {
                Ok(CheckReport::passing(1, true))
            } else {
                Ok(CheckReport {
                    holds: false,
                    sequences_checked: 1,
                    exhaustive: true,
                    counterexample: Some(Counterexample::from_histories(seq.histories())),
                })
            }
        }
        Strategy::Linearizations { limit } => {
            let mut checked = 0usize;
            let mut failure: Option<Counterexample> = None;
            let mut error: Option<EvalError> = None;
            let visited = for_each_linearization(computation, limit, |order| {
                checked += 1;
                let seq = HistorySequence::from_linearization(computation, order);
                match holds_on_sequence(formula, computation, seq.histories()) {
                    Ok(true) => std::ops::ControlFlow::Continue(()),
                    Ok(false) => {
                        failure = Some(Counterexample::from_histories(seq.histories()));
                        std::ops::ControlFlow::Break(())
                    }
                    Err(e) => {
                        error = Some(e);
                        std::ops::ControlFlow::Break(())
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            let exhaustive = failure.is_some() || visited < limit;
            Ok(CheckReport {
                holds: failure.is_none(),
                sequences_checked: checked,
                exhaustive,
                counterexample: failure,
            })
        }
        Strategy::StepSequences { limit } => {
            let mut checked = 0usize;
            let mut failure: Option<Counterexample> = None;
            let mut error: Option<EvalError> = None;
            let visited = for_each_step_sequence(computation, limit, |seq| {
                checked += 1;
                match holds_on_sequence(formula, computation, seq) {
                    Ok(true) => std::ops::ControlFlow::Continue(()),
                    Ok(false) => {
                        failure = Some(Counterexample::from_histories(seq));
                        std::ops::ControlFlow::Break(())
                    }
                    Err(e) => {
                        error = Some(e);
                        std::ops::ControlFlow::Break(())
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            let exhaustive = failure.is_some() || visited < limit;
            Ok(CheckReport {
                holds: failure.is_none(),
                sequences_checked: checked,
                exhaustive,
                counterexample: failure,
            })
        }
        Strategy::RandomLinearizations { count, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..count {
                let order = random_linearization(computation, &mut rng);
                let seq = HistorySequence::from_linearization(computation, &order);
                if !holds_on_sequence(formula, computation, seq.histories())? {
                    return Ok(CheckReport {
                        holds: false,
                        sequences_checked: i + 1,
                        exhaustive: false,
                        counterexample: Some(Counterexample::from_histories(seq.histories())),
                    });
                }
            }
            Ok(CheckReport::passing(count, false))
        }
    }
}

/// Per-formula outcome of [`check_many`].
#[derive(Debug)]
pub struct MultiCheck {
    /// The report (or error), exactly as [`check`] would have produced it.
    pub report: Result<CheckReport, EvalError>,
    /// Nanoseconds this formula spent in evaluation, for per-restriction
    /// timing attribution. Tracked only while an ambient probe is active;
    /// 0 otherwise.
    pub eval_ns: u64,
}

/// Checks several formulas against *one shared enumeration* of history
/// sequences.
///
/// [`check`]ing each restriction separately re-enumerates the same
/// linearizations and rebuilds the same prefix histories once per
/// formula; on check-dominated sweeps that enumeration is the hot path.
/// This variant walks the sequence space once, constructs each
/// [`HistorySequence`] once, and evaluates every still-undecided formula
/// on it. Each returned report is identical to what a standalone
/// [`check`] call would produce: the enumeration order is deterministic,
/// a formula stops counting at its first failing sequence, and a passing
/// formula sees the full enumeration.
///
/// Sharing applies to [`Strategy::Linearizations`] and
/// [`Strategy::StepSequences`] when every formula is temporal; any other
/// input falls back to per-formula [`check`] calls (still with faithful
/// reports — only the sharing is lost).
pub fn check_many(
    formulas: &[&Formula],
    computation: &Computation,
    strategy: Strategy,
) -> Vec<MultiCheck> {
    let sharable = formulas.len() > 1
        && formulas.iter().all(|f| f.is_temporal())
        && matches!(
            strategy,
            Strategy::Linearizations { .. } | Strategy::StepSequences { .. }
        );
    if !sharable {
        return formulas
            .iter()
            .map(|f| MultiCheck {
                report: check(f, computation, strategy),
                eval_ns: 0,
            })
            .collect();
    }

    let probing = gem_obs::ambient::active();
    let n = formulas.len();
    // A decided formula stops participating: either (sequences counted at
    // the failure, counterexample) or an evaluation error.
    let mut failures: Vec<Option<(usize, Counterexample)>> = vec![None; n];
    let mut errors: Vec<Option<EvalError>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut eval_ns = vec![0u64; n];
    let mut undecided = n;
    let mut checked = 0usize;

    // `◻ p` with an immediate (non-temporal) `p` — the shape of every
    // safety pattern (`mutual_exclusion`, `priority` bodies, …) — holds
    // on a sequence iff `p` holds at each of its histories, and `p`'s
    // verdict at a history is independent of the sequence around it. The
    // same few downsets recur across exponentially many sequences, so
    // those verdicts are memoized per history: the verdict, failing
    // sequence index, and counterexample stay byte-identical while the
    // evaluator runs once per *distinct history* instead of once per
    // sequence position.
    let body_if_safety: Vec<Option<&Formula>> = formulas
        .iter()
        .map(|f| match f {
            Formula::Henceforth(inner) if !inner.is_temporal() => Some(inner.as_ref()),
            _ => None,
        })
        .collect();
    let mut memo: Vec<std::collections::HashMap<History, bool>> =
        std::iter::repeat_with(std::collections::HashMap::new)
            .take(n)
            .collect();

    // Evaluates formula `i` on the current sequence: `seq()` materializes
    // the histories (cheap for step sequences, a prefix build for
    // linearizations); safety formulas walk `histories()` one at a time
    // through the memo instead.
    enum SeqVerdict {
        Holds,
        Fails,
        Error(EvalError),
    }
    let mut eval_formula =
        |i: usize, f: &Formula, body: Option<&Formula>, histories: &[History]| -> SeqVerdict {
            let started = probing.then(std::time::Instant::now);
            let verdict = match body {
                Some(p) => {
                    let mut verdict = SeqVerdict::Holds;
                    for h in histories {
                        let cached = memo[i].get(h).copied();
                        let v = match cached {
                            Some(v) => v,
                            None => match crate::holds_on_history(p, computation, h) {
                                Ok(v) => {
                                    memo[i].insert(h.clone(), v);
                                    v
                                }
                                Err(e) => {
                                    verdict = SeqVerdict::Error(e);
                                    break;
                                }
                            },
                        };
                        if !v {
                            verdict = SeqVerdict::Fails;
                            break;
                        }
                    }
                    verdict
                }
                None => match holds_on_sequence(f, computation, histories) {
                    Ok(true) => SeqVerdict::Holds,
                    Ok(false) => SeqVerdict::Fails,
                    Err(e) => SeqVerdict::Error(e),
                },
            };
            if let Some(started) = started {
                eval_ns[i] += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            verdict
        };

    let mut on_sequence = |histories: &[History]| {
        checked += 1;
        for (i, f) in formulas.iter().enumerate() {
            if failures[i].is_some() || errors[i].is_some() {
                continue;
            }
            match eval_formula(i, f, body_if_safety[i], histories) {
                SeqVerdict::Holds => {}
                SeqVerdict::Fails => {
                    failures[i] = Some((checked, Counterexample::from_histories(histories)));
                    undecided -= 1;
                }
                SeqVerdict::Error(e) => {
                    errors[i] = Some(e);
                    undecided -= 1;
                }
            }
        }
        if undecided == 0 {
            std::ops::ControlFlow::Break(())
        } else {
            std::ops::ControlFlow::Continue(())
        }
    };

    let (visited, limit) = match strategy {
        Strategy::Linearizations { limit } => (
            for_each_linearization(computation, limit, |order| {
                let seq = HistorySequence::from_linearization(computation, order);
                on_sequence(seq.histories())
            }),
            limit,
        ),
        Strategy::StepSequences { limit } => (
            for_each_step_sequence(computation, limit, |seq| on_sequence(seq)),
            limit,
        ),
        _ => unreachable!("sharable is limited to the enumerating strategies"),
    };

    if probing {
        gem_obs::ambient::add("logic.check_many.calls", 1);
        gem_obs::ambient::add("logic.check_many.formulas", n as u64);
        gem_obs::ambient::add("logic.check_many.sequences", checked as u64);
    }

    (0..n)
        .map(|i| {
            let report = if let Some(e) = errors[i].take() {
                Err(e)
            } else if let Some((at, cex)) = failures[i].take() {
                Ok(CheckReport {
                    holds: false,
                    sequences_checked: at,
                    exhaustive: true,
                    counterexample: Some(cex),
                })
            } else {
                Ok(CheckReport::passing(checked, visited < limit))
            };
            MultiCheck {
                report,
                eval_ns: eval_ns[i],
            }
        })
        .collect()
}

/// Draws one uniform-at-random-ish linearization (random frontier choice at
/// each step).
pub fn random_linearization(computation: &Computation, rng: &mut impl Rng) -> Vec<EventId> {
    let mut h = History::empty(computation);
    let mut order = Vec::with_capacity(computation.event_count());
    loop {
        let frontier = h.frontier(computation);
        if frontier.is_empty() {
            break;
        }
        let pick = frontier[rng.gen_range(0..frontier.len())];
        h.try_insert(computation, pick)
            .expect("frontier event is insertable");
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSel;
    use gem_core::{ComputationBuilder, Structure};

    /// Two concurrent chains: p1 → p2 and q1 → q2.
    fn two_chains() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p = s.add_element("P", &[act]).unwrap();
        let q = s.add_element("Q", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let p1 = b.add_event(p, act, vec![]).unwrap();
        let p2 = b.add_event(p, act, vec![]).unwrap();
        let q1 = b.add_event(q, act, vec![]).unwrap();
        let q2 = b.add_event(q, act, vec![]).unwrap();
        (b.seal().unwrap(), vec![p1, p2, q1, q2])
    }

    #[test]
    fn linearizations_check_safety() {
        let (c, e) = two_chains();
        // Safety: p2 never occurs before p1 — holds on all 6 interleavings.
        let f = Formula::occurred(e[1])
            .implies(Formula::occurred(e[0]))
            .henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(r.holds);
        assert!(r.exhaustive);
        assert_eq!(r.sequences_checked, 6);
    }

    #[test]
    fn violation_found_with_counterexample() {
        let (c, e) = two_chains();
        // False claim: q1 always occurs before p1.
        let f = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(!r.holds);
        let cex = r.counterexample.unwrap();
        let desc = cex.describe(&c);
        assert!(desc.contains("P.Act^0"), "{desc}");
    }

    #[test]
    fn complete_strategy_for_immediate_restrictions() {
        let (c, _) = two_chains();
        let act = c.structure().class("Act").unwrap();
        let f = Formula::forall("e", EventSel::of_class(act), Formula::occurred("e"));
        let r = check(&f, &c, Strategy::Complete).unwrap();
        assert!(r.holds && r.exhaustive);
        assert_eq!(r.sequences_checked, 1);
    }

    #[test]
    fn step_sequences_catch_simultaneity() {
        let (c, e) = two_chains();
        // "Some history separates p1 from q1" holds of every linearization
        // (one of them is added first) but fails on the step sequence where
        // p1 and q1 enter simultaneously (§7: events occurring "at the same
        // time").
        let p_first = Formula::occurred(e[0]).and(Formula::occurred(e[2]).not());
        let q_first = Formula::occurred(e[2]).and(Formula::occurred(e[0]).not());
        let f = p_first.eventually().or(q_first.eventually());
        let lin = check(&f, &c, Strategy::Linearizations { limit: 1000 }).unwrap();
        assert!(lin.holds, "every linearization separates them");
        let steps = check(&f, &c, Strategy::StepSequences { limit: 10_000 }).unwrap();
        assert!(!steps.holds, "a simultaneous step never separates them");
        assert!(steps.counterexample.is_some());
    }

    #[test]
    fn check_many_matches_individual_checks() {
        let (c, e) = two_chains();
        // A mix of verdicts: a holding safety formula, a failing one, and
        // a holding liveness formula — over both enumerating strategies.
        let holds_safety = Formula::occurred(e[1])
            .implies(Formula::occurred(e[0]))
            .henceforth();
        let fails = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let holds_liveness = Formula::occurred(e[3]).eventually();
        let formulas = [&holds_safety, &fails, &holds_liveness];
        for strategy in [
            Strategy::Linearizations { limit: 100 },
            Strategy::StepSequences { limit: 10_000 },
            // Non-sharing strategies exercise the fallback path.
            Strategy::GreedySteps,
            Strategy::Complete,
        ] {
            let many = check_many(&formulas, &c, strategy);
            for (f, outcome) in formulas.iter().zip(many) {
                let solo = check(f, &c, strategy).unwrap();
                let got = outcome.report.expect("well-formed formula");
                assert_eq!(solo.holds, got.holds, "{strategy:?}");
                assert_eq!(
                    solo.sequences_checked, got.sequences_checked,
                    "{strategy:?}"
                );
                assert_eq!(solo.exhaustive, got.exhaustive, "{strategy:?}");
                assert_eq!(solo.counterexample, got.counterexample, "{strategy:?}");
            }
        }
    }

    #[test]
    fn check_many_stops_enumerating_once_all_formulas_fail() {
        let (c, e) = two_chains();
        // Both fail on the very first linearization: enumeration must not
        // visit the remaining sequences.
        let f1 = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let f2 = Formula::occurred(e[1])
            .implies(Formula::occurred(e[3]))
            .henceforth();
        let many = check_many(&[&f1, &f2], &c, Strategy::Linearizations { limit: 100 });
        for outcome in many {
            let report = outcome.report.unwrap();
            assert!(!report.holds);
            assert_eq!(report.sequences_checked, 1);
            assert!(report.exhaustive);
        }
    }

    #[test]
    fn greedy_steps_single_sequence() {
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0]).eventually();
        let r = check(&f, &c, Strategy::GreedySteps).unwrap();
        assert!(r.holds);
        assert_eq!(r.sequences_checked, 1);
    }

    #[test]
    fn random_linearizations_reproducible() {
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let r1 = check(
            &f,
            &c,
            Strategy::RandomLinearizations { count: 50, seed: 7 },
        )
        .unwrap();
        let r2 = check(
            &f,
            &c,
            Strategy::RandomLinearizations { count: 50, seed: 7 },
        )
        .unwrap();
        assert_eq!(r1, r2, "same seed, same verdict");
        assert!(!r1.exhaustive);
        // With 50 samples over 6 interleavings a violation is all but
        // certain to be sampled.
        assert!(!r1.holds);
    }

    #[test]
    fn limit_marks_non_exhaustive() {
        let (c, _) = two_chains();
        let f = Formula::True.henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 2 }).unwrap();
        assert!(r.holds);
        assert!(!r.exhaustive);
        assert_eq!(r.sequences_checked, 2);
    }

    #[test]
    fn immediate_assertions_dispatch_to_complete() {
        // A temporal-free formula is a computation-level restriction: it
        // is evaluated once on the complete history even under a
        // sequence-producing strategy.
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0]);
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(r.holds);
        assert_eq!(r.sequences_checked, 1);
        assert!(r.exhaustive);
    }

    #[test]
    fn random_linearization_is_topological() {
        let (c, e) = two_chains();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let order = random_linearization(&c, &mut rng);
            assert_eq!(order.len(), 4);
            let p1 = order.iter().position(|&x| x == e[0]).unwrap();
            let p2 = order.iter().position(|&x| x == e[1]).unwrap();
            assert!(p1 < p2);
        }
    }
}
