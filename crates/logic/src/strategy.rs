//! Checking strategies: deciding whether a restriction holds of *every*
//! valid history sequence of a computation.
//!
//! The paper's semantics quantifies restrictions over all valid history
//! sequences of a computation. The number of vhs is (doubly) exponential,
//! so [`check`] approximates the set by a [`Strategy`]:
//!
//! * [`Strategy::Complete`] — a single sequence containing the complete
//!   history. Exact for non-temporal (computation-level) restrictions.
//! * [`Strategy::Linearizations`] — every one-event-at-a-time vhs. Exact
//!   for `◻`-safety formulae (every history lies on some linearization,
//!   and every pair `α ⊑ β` lies on a common one).
//! * [`Strategy::StepSequences`] — every vhs with arbitrary antichain
//!   steps. Fully exact, but only feasible for very small computations.
//! * [`Strategy::RandomLinearizations`] — seeded sample of linearizations;
//!   sound for *refuting* (a found violation is real) but not exhaustive.
//! * [`Strategy::GreedySteps`] — the single maximal-parallelism vhs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gem_core::{
    for_each_linearization, for_each_step_sequence, Computation, EventId, History, HistorySequence,
};

use crate::{holds_on_sequence, EvalError, Formula};

/// How to enumerate the history sequences a formula is checked against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// The single sequence `[complete history]`.
    Complete,
    /// All linearizations (singleton-step vhs), up to `limit` sequences.
    Linearizations {
        /// Maximum number of sequences to check.
        limit: usize,
    },
    /// All antichain-step vhs, up to `limit` sequences.
    StepSequences {
        /// Maximum number of sequences to check.
        limit: usize,
    },
    /// `count` random linearizations drawn with the given seed.
    RandomLinearizations {
        /// Number of sampled schedules.
        count: usize,
        /// RNG seed, for reproducibility.
        seed: u64,
    },
    /// The single greedy maximal-step sequence.
    GreedySteps,
}

impl Default for Strategy {
    /// Defaults to exhaustive linearizations with a generous limit.
    fn default() -> Self {
        Strategy::Linearizations { limit: 100_000 }
    }
}

/// A violating history sequence, recorded as the event sets of its
/// histories.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// Each history of the violating sequence, as its event list.
    pub histories: Vec<Vec<EventId>>,
}

impl Counterexample {
    fn from_histories(seq: &[History]) -> Self {
        Self {
            histories: seq.iter().map(|h| h.iter().collect()).collect(),
        }
    }

    /// Renders the violating sequence with event names resolved against
    /// the computation.
    pub fn describe(&self, computation: &Computation) -> String {
        use std::fmt::Write as _;
        let s = computation.structure();
        let mut out = String::from("violating history sequence:\n");
        let mut prev: Vec<EventId> = Vec::new();
        for (i, h) in self.histories.iter().enumerate() {
            let added: Vec<String> = h
                .iter()
                .filter(|e| !prev.contains(e))
                .map(|&e| {
                    let ev = computation.event(e);
                    format!(
                        "{}.{}^{}",
                        s.element_info(ev.element()).name(),
                        s.class_info(ev.class()).name(),
                        ev.seq()
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  step {i}: +[{}] ({} events)",
                added.join(", "),
                h.len()
            );
            prev = h.clone();
        }
        out
    }
}

/// Result of checking a formula against a computation under a strategy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// True if no checked sequence violated the formula.
    pub holds: bool,
    /// Number of sequences evaluated.
    pub sequences_checked: usize,
    /// True if the strategy's family was fully enumerated (the limit was
    /// not hit). A `holds == true` report with `exhaustive == false` is
    /// only evidence, not proof.
    pub exhaustive: bool,
    /// A violating sequence, if one was found.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    fn passing(sequences_checked: usize, exhaustive: bool) -> Self {
        Self {
            holds: true,
            sequences_checked,
            exhaustive,
            counterexample: None,
        }
    }
}

/// Checks `formula` against `computation` under `strategy`: the formula
/// must hold of every generated history sequence.
///
/// # Errors
///
/// Returns [`EvalError`] if the formula is malformed (unbound variables,
/// bad parameter references).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gem_core::{ComputationBuilder, Structure};
/// use gem_logic::{check, Formula, Strategy};
/// let mut s = Structure::new();
/// let act = s.add_class("Act", &[])?;
/// let el = s.add_element("P", &[act])?;
/// let mut b = ComputationBuilder::new(s);
/// let e = b.add_event(el, act, vec![])?;
/// let c = b.seal()?;
/// let report = check(&Formula::occurred(e).eventually(), &c, Strategy::default())?;
/// assert!(report.holds && report.exhaustive);
/// # Ok(())
/// # }
/// ```
pub fn check(
    formula: &Formula,
    computation: &Computation,
    strategy: Strategy,
) -> Result<CheckReport, EvalError> {
    // A temporal-free restriction is an *immediate assertion* about the
    // computation (§8): evaluating it at the front of every history
    // sequence would test the empty history. Dispatch it to the complete
    // computation regardless of the requested strategy; to assert an
    // immediate property of every history, wrap it in `◻` explicitly.
    let strategy = if formula.is_temporal() {
        strategy
    } else {
        Strategy::Complete
    };
    match strategy {
        Strategy::Complete => {
            let seq = [History::full(computation)];
            if holds_on_sequence(formula, computation, &seq)? {
                Ok(CheckReport::passing(1, true))
            } else {
                Ok(CheckReport {
                    holds: false,
                    sequences_checked: 1,
                    exhaustive: true,
                    counterexample: Some(Counterexample::from_histories(&seq)),
                })
            }
        }
        Strategy::GreedySteps => {
            let seq = HistorySequence::greedy_steps(computation);
            if holds_on_sequence(formula, computation, seq.histories())? {
                Ok(CheckReport::passing(1, true))
            } else {
                Ok(CheckReport {
                    holds: false,
                    sequences_checked: 1,
                    exhaustive: true,
                    counterexample: Some(Counterexample::from_histories(seq.histories())),
                })
            }
        }
        Strategy::Linearizations { limit } => {
            let mut checked = 0usize;
            let mut failure: Option<Counterexample> = None;
            let mut error: Option<EvalError> = None;
            let visited = for_each_linearization(computation, limit, |order| {
                checked += 1;
                let seq = HistorySequence::from_linearization(computation, order);
                match holds_on_sequence(formula, computation, seq.histories()) {
                    Ok(true) => std::ops::ControlFlow::Continue(()),
                    Ok(false) => {
                        failure = Some(Counterexample::from_histories(seq.histories()));
                        std::ops::ControlFlow::Break(())
                    }
                    Err(e) => {
                        error = Some(e);
                        std::ops::ControlFlow::Break(())
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            let exhaustive = failure.is_some() || visited < limit;
            Ok(CheckReport {
                holds: failure.is_none(),
                sequences_checked: checked,
                exhaustive,
                counterexample: failure,
            })
        }
        Strategy::StepSequences { limit } => {
            let mut checked = 0usize;
            let mut failure: Option<Counterexample> = None;
            let mut error: Option<EvalError> = None;
            let visited = for_each_step_sequence(computation, limit, |seq| {
                checked += 1;
                match holds_on_sequence(formula, computation, seq) {
                    Ok(true) => std::ops::ControlFlow::Continue(()),
                    Ok(false) => {
                        failure = Some(Counterexample::from_histories(seq));
                        std::ops::ControlFlow::Break(())
                    }
                    Err(e) => {
                        error = Some(e);
                        std::ops::ControlFlow::Break(())
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            let exhaustive = failure.is_some() || visited < limit;
            Ok(CheckReport {
                holds: failure.is_none(),
                sequences_checked: checked,
                exhaustive,
                counterexample: failure,
            })
        }
        Strategy::RandomLinearizations { count, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..count {
                let order = random_linearization(computation, &mut rng);
                let seq = HistorySequence::from_linearization(computation, &order);
                if !holds_on_sequence(formula, computation, seq.histories())? {
                    return Ok(CheckReport {
                        holds: false,
                        sequences_checked: i + 1,
                        exhaustive: false,
                        counterexample: Some(Counterexample::from_histories(seq.histories())),
                    });
                }
            }
            Ok(CheckReport::passing(count, false))
        }
    }
}

/// Draws one uniform-at-random-ish linearization (random frontier choice at
/// each step).
pub fn random_linearization(computation: &Computation, rng: &mut impl Rng) -> Vec<EventId> {
    let mut h = History::empty(computation);
    let mut order = Vec::with_capacity(computation.event_count());
    loop {
        let frontier = h.frontier(computation);
        if frontier.is_empty() {
            break;
        }
        let pick = frontier[rng.gen_range(0..frontier.len())];
        h.try_insert(computation, pick)
            .expect("frontier event is insertable");
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventSel;
    use gem_core::{ComputationBuilder, Structure};

    /// Two concurrent chains: p1 → p2 and q1 → q2.
    fn two_chains() -> (Computation, Vec<EventId>) {
        let mut s = Structure::new();
        let act = s.add_class("Act", &[]).unwrap();
        let p = s.add_element("P", &[act]).unwrap();
        let q = s.add_element("Q", &[act]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let p1 = b.add_event(p, act, vec![]).unwrap();
        let p2 = b.add_event(p, act, vec![]).unwrap();
        let q1 = b.add_event(q, act, vec![]).unwrap();
        let q2 = b.add_event(q, act, vec![]).unwrap();
        (b.seal().unwrap(), vec![p1, p2, q1, q2])
    }

    #[test]
    fn linearizations_check_safety() {
        let (c, e) = two_chains();
        // Safety: p2 never occurs before p1 — holds on all 6 interleavings.
        let f = Formula::occurred(e[1])
            .implies(Formula::occurred(e[0]))
            .henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(r.holds);
        assert!(r.exhaustive);
        assert_eq!(r.sequences_checked, 6);
    }

    #[test]
    fn violation_found_with_counterexample() {
        let (c, e) = two_chains();
        // False claim: q1 always occurs before p1.
        let f = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(!r.holds);
        let cex = r.counterexample.unwrap();
        let desc = cex.describe(&c);
        assert!(desc.contains("P.Act^0"), "{desc}");
    }

    #[test]
    fn complete_strategy_for_immediate_restrictions() {
        let (c, _) = two_chains();
        let act = c.structure().class("Act").unwrap();
        let f = Formula::forall("e", EventSel::of_class(act), Formula::occurred("e"));
        let r = check(&f, &c, Strategy::Complete).unwrap();
        assert!(r.holds && r.exhaustive);
        assert_eq!(r.sequences_checked, 1);
    }

    #[test]
    fn step_sequences_catch_simultaneity() {
        let (c, e) = two_chains();
        // "Some history separates p1 from q1" holds of every linearization
        // (one of them is added first) but fails on the step sequence where
        // p1 and q1 enter simultaneously (§7: events occurring "at the same
        // time").
        let p_first = Formula::occurred(e[0]).and(Formula::occurred(e[2]).not());
        let q_first = Formula::occurred(e[2]).and(Formula::occurred(e[0]).not());
        let f = p_first.eventually().or(q_first.eventually());
        let lin = check(&f, &c, Strategy::Linearizations { limit: 1000 }).unwrap();
        assert!(lin.holds, "every linearization separates them");
        let steps = check(&f, &c, Strategy::StepSequences { limit: 10_000 }).unwrap();
        assert!(!steps.holds, "a simultaneous step never separates them");
        assert!(steps.counterexample.is_some());
    }

    #[test]
    fn greedy_steps_single_sequence() {
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0]).eventually();
        let r = check(&f, &c, Strategy::GreedySteps).unwrap();
        assert!(r.holds);
        assert_eq!(r.sequences_checked, 1);
    }

    #[test]
    fn random_linearizations_reproducible() {
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0])
            .implies(Formula::occurred(e[2]))
            .henceforth();
        let r1 = check(
            &f,
            &c,
            Strategy::RandomLinearizations { count: 50, seed: 7 },
        )
        .unwrap();
        let r2 = check(
            &f,
            &c,
            Strategy::RandomLinearizations { count: 50, seed: 7 },
        )
        .unwrap();
        assert_eq!(r1, r2, "same seed, same verdict");
        assert!(!r1.exhaustive);
        // With 50 samples over 6 interleavings a violation is all but
        // certain to be sampled.
        assert!(!r1.holds);
    }

    #[test]
    fn limit_marks_non_exhaustive() {
        let (c, _) = two_chains();
        let f = Formula::True.henceforth();
        let r = check(&f, &c, Strategy::Linearizations { limit: 2 }).unwrap();
        assert!(r.holds);
        assert!(!r.exhaustive);
        assert_eq!(r.sequences_checked, 2);
    }

    #[test]
    fn immediate_assertions_dispatch_to_complete() {
        // A temporal-free formula is a computation-level restriction: it
        // is evaluated once on the complete history even under a
        // sequence-producing strategy.
        let (c, e) = two_chains();
        let f = Formula::occurred(e[0]);
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(r.holds);
        assert_eq!(r.sequences_checked, 1);
        assert!(r.exhaustive);
    }

    #[test]
    fn random_linearization_is_topological() {
        let (c, e) = two_chains();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let order = random_linearization(&c, &mut rng);
            assert_eq!(order.len(), 4);
            let p1 = order.iter().position(|&x| x == e[0]).unwrap();
            let p2 = order.iter().position(|&x| x == e[1]).unwrap();
            assert!(p1 < p2);
        }
    }
}
