//! The One-Slot Buffer problem (§1, §11) and its Monitor, CSP, and ADA
//! solutions.
//!
//! **Problem.** A producer deposits items into a single slot; a consumer
//! removes them. Deposits and removals alternate, every removal yields
//! the value last deposited, and each deposit is removed exactly once.
//!
//! The specification follows the paper's style: a `Buffer` element with
//! `Deposit(item)`/`Remove(item)` event classes, restricted over the
//! buffer's *element order* (alternation of deposits and removals, and
//! each removal yielding the latest preceding deposit's item). Phrasing
//! the restrictions over `⇒ₑ` — rather than the enable relation — keeps
//! them implementation-neutral: a monitor threads control through a lock,
//! CSP through rendezvous, ADA through entry queues, and all three
//! project onto the same totally-ordered buffer behaviour.

use gem_logic::{EventSel, Formula, ValueTerm};
use gem_spec::{ElementType, SpecBuilder, Specification};
use gem_verify::Correspondence;

use gem_core::Value;
use gem_lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem_lang::{
    ada::{AdaProgram, AdaStmt, AdaSystem, AdaTask},
    csp::{CspProcess, CspProgram, CspStmt, CspSystem},
    Expr,
};

/// The Buffer element type: `Deposit(item)` and `Remove(item)` events.
pub fn buffer_element_type() -> ElementType {
    ElementType::new("OneSlotBuffer")
        .event("Deposit", &["item"])
        .event("Remove", &["item"])
}

/// The One-Slot Buffer problem specification.
///
/// All buffer events occur at the single `buf` element, so the element
/// order `⇒ₑ` totally orders them (§4); the restrictions are phrased over
/// that order, which makes them insensitive to how an implementation
/// threads control between producer and consumer:
///
/// 1. `deposits-alternate` — between two deposits there is a removal.
/// 2. `removals-alternate` — between two removals there is a deposit.
/// 3. `remove-takes-last-deposit` — the latest deposit preceding each
///    removal carries the removed item (value transfer + "the slot holds
///    one item").
pub fn one_slot_spec() -> Specification {
    let mut sb = SpecBuilder::new("OneSlotBuffer");
    let buf = sb
        .instantiate_element(&buffer_element_type(), "buf")
        .expect("fresh spec");
    let dep = buf.sel("Deposit");
    let rem = buf.sel("Remove");
    sb.add_restriction(
        "deposits-alternate",
        Formula::forall(
            "d1",
            dep.clone(),
            Formula::forall(
                "d2",
                dep.clone(),
                Formula::element_precedes("d1", "d2").implies(Formula::exists(
                    "r",
                    rem.clone(),
                    Formula::element_precedes("d1", "r").and(Formula::element_precedes("r", "d2")),
                )),
            ),
        ),
    );
    sb.add_restriction(
        "removals-alternate",
        Formula::forall(
            "r1",
            rem.clone(),
            Formula::forall(
                "r2",
                rem.clone(),
                Formula::element_precedes("r1", "r2").implies(Formula::exists(
                    "d",
                    dep.clone(),
                    Formula::element_precedes("r1", "d").and(Formula::element_precedes("d", "r2")),
                )),
            ),
        ),
    );
    sb.add_restriction(
        "remove-takes-last-deposit",
        Formula::forall(
            "r",
            rem,
            Formula::exists(
                "d",
                dep.clone(),
                Formula::element_precedes("d", "r")
                    .and(Formula::value_eq(
                        ValueTerm::param("d", "item"),
                        ValueTerm::param("r", "item"),
                    ))
                    .and(
                        Formula::exists(
                            "d2",
                            dep.clone(),
                            Formula::element_precedes("d", "d2")
                                .and(Formula::element_precedes("d2", "r")),
                        )
                        .not(),
                    ),
            ),
        ),
    );
    sb.finish()
}

/// The Monitor solution: a one-slot buffer monitor with `Put`/`Take`
/// entries, plus a producer depositing `items` and a consumer taking as
/// many.
pub fn monitor_solution(items: &[i64]) -> MonitorSystem {
    let monitor = MonitorDef::new("Slot")
        .var("slot", 0i64)
        .var("full", Value::Bool(false))
        .var("taken", 0i64)
        .condition("nonempty")
        .condition("empty")
        .entry(
            "Put",
            &["v"],
            vec![
                Stmt::if_then(Expr::var("full"), vec![Stmt::wait("empty")]),
                Stmt::assign("slot", Expr::var("v")),
                Stmt::assign("full", Expr::bool(true)),
                Stmt::signal("nonempty"),
            ],
        )
        .entry(
            "Take",
            &[],
            vec![
                Stmt::if_then(Expr::var("full").not(), vec![Stmt::wait("nonempty")]),
                Stmt::assign("taken", Expr::var("slot")),
                Stmt::assign("full", Expr::bool(false)),
                Stmt::signal("empty"),
            ],
        );
    let producer = ProcessDef::new(
        "producer",
        items
            .iter()
            .map(|&v| ScriptStep::Call {
                entry: "Put".into(),
                args: vec![Value::Int(v)],
            })
            .collect(),
    );
    let consumer = ProcessDef::new(
        "consumer",
        items
            .iter()
            .map(|_| ScriptStep::Call {
                entry: "Take".into(),
                args: vec![],
            })
            .collect(),
    );
    MonitorSystem::new(
        MonitorProgram::new(monitor)
            .process(producer)
            .process(consumer),
    )
}

/// Significant objects for the monitor solution: the `slot` assignment
/// inside `Put` is a `Deposit`, the `taken` assignment inside `Take` is a
/// `Remove` (both carry the item as parameter 0).
pub fn monitor_correspondence(sys: &MonitorSystem, problem: &Specification) -> Correspondence {
    let ps = problem.structure();
    let buf = ps.element("buf").expect("buf element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element("slot"))
                .with_param(1, "Put"),
            buf,
            dep,
            &[(0, 0)],
        )
        .map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element("taken"))
                .with_param(1, "Take"),
            buf,
            rem,
            &[(0, 0)],
        )
}

/// The CSP solution: `producer → slot → consumer`, where the slot process
/// is the buffer (its `InEnd` is a `Deposit`, its `OutEnd` a `Remove`).
pub fn csp_solution(items: &[i64]) -> CspSystem {
    let mut producer_body = Vec::new();
    for &v in items {
        producer_body.push(CspStmt::send("slot", Expr::int(v)));
    }
    let mut slot_body = Vec::new();
    let mut consumer_body = Vec::new();
    for _ in items {
        slot_body.push(CspStmt::recv("producer", "x"));
        slot_body.push(CspStmt::send("consumer", Expr::var("x")));
        consumer_body.push(CspStmt::recv("slot", "got"));
    }
    CspSystem::new(
        CspProgram::new()
            .process(CspProcess::new("producer", producer_body))
            .process(CspProcess::new("slot", slot_body).local("x", 0i64))
            .process(CspProcess::new("consumer", consumer_body).local("got", 0i64)),
    )
}

/// Significant objects for the CSP solution.
pub fn csp_correspondence(sys: &CspSystem, problem: &Specification) -> Correspondence {
    let ps = problem.structure();
    let buf = ps.element("buf").expect("buf element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    let slot = sys.program().process_index("slot").expect("slot process");
    Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("InEnd")).at(sys.in_element(slot)),
            buf,
            dep,
            &[(0, 0)],
        )
        .map_with_params(
            EventSel::of_class(sys.class("OutEnd")).at(sys.out_element(slot)),
            buf,
            rem,
            &[(0, 0)],
        )
}

/// The ADA solution: a buffer task accepting `Put(v)` (stores into
/// `slot`) and `Take` (copies `slot` into `out`); the `slot` assignment is
/// the `Deposit`, the `out` assignment the `Remove`.
pub fn ada_solution(items: &[i64]) -> AdaSystem {
    let mut buffer_body = Vec::new();
    for _ in items {
        buffer_body.push(AdaStmt::accept_with(
            "Put",
            &["v"],
            vec![AdaStmt::assign("slot", Expr::var("v"))],
        ));
        buffer_body.push(AdaStmt::accept(
            "Take",
            vec![AdaStmt::assign("out", Expr::var("slot"))],
        ));
    }
    let buffer = AdaTask::new("buffer", buffer_body)
        .entry("Put")
        .entry("Take")
        .local("slot", 0i64)
        .local("out", 0i64);
    let producer = AdaTask::new(
        "producer",
        items
            .iter()
            .map(|&v| AdaStmt::call("buffer", "Put", vec![Expr::int(v)]))
            .collect(),
    );
    let consumer = AdaTask::new(
        "consumer",
        items
            .iter()
            .map(|_| AdaStmt::call("buffer", "Take", vec![]))
            .collect(),
    );
    AdaSystem::new(AdaProgram::new().task(buffer).task(producer).task(consumer))
}

/// Significant objects for the ADA solution.
pub fn ada_correspondence(sys: &AdaSystem, problem: &Specification) -> Correspondence {
    let ps = problem.structure();
    let buf = ps.element("buf").expect("buf element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    let s = sys.structure();
    let slot_el = s.element("buffer.var.slot").expect("slot var");
    let out_el = s.element("buffer.var.out").expect("out var");
    Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("Assign")).at(slot_el),
            buf,
            dep,
            &[(0, 0)],
        )
        .map_with_params(
            EventSel::of_class(sys.class("Assign")).at(out_el),
            buf,
            rem,
            &[(0, 0)],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::Explorer;
    use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};

    const ITEMS: &[i64] = &[10, 20, 30];

    #[test]
    fn spec_shape() {
        let spec = one_slot_spec();
        assert_eq!(spec.restrictions().len(), 3);
        assert!(spec.restriction("deposits-alternate").is_some());
    }

    #[test]
    fn monitor_satisfies_one_slot() {
        let sys = monitor_solution(ITEMS);
        let problem = one_slot_spec();
        let corr = monitor_correspondence(&sys, &problem);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
        assert!(outcome.runs >= 1);
    }

    #[test]
    fn csp_satisfies_one_slot() {
        let sys = csp_solution(ITEMS);
        let problem = one_slot_spec();
        let corr = csp_correspondence(&sys, &problem);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn ada_satisfies_one_slot() {
        let sys = ada_solution(ITEMS);
        let problem = one_slot_spec();
        let corr = ada_correspondence(&sys, &problem);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn solutions_deadlock_free() {
        assert!(assert_no_deadlock(&monitor_solution(ITEMS), &Explorer::default()).is_ok());
        assert!(assert_no_deadlock(&csp_solution(ITEMS), &Explorer::default()).is_ok());
        assert!(assert_no_deadlock(&ada_solution(ITEMS), &Explorer::default()).is_ok());
    }

    #[test]
    fn broken_monitor_fails_spec() {
        // Remove the full/empty synchronization: Put overwrites at will.
        let monitor = MonitorDef::new("Slot")
            .var("slot", 0i64)
            .var("taken", 0i64)
            .entry("Put", &["v"], vec![Stmt::assign("slot", Expr::var("v"))])
            .entry("Take", &[], vec![Stmt::assign("taken", Expr::var("slot"))]);
        let producer = ProcessDef::new(
            "producer",
            ITEMS
                .iter()
                .map(|&v| ScriptStep::Call {
                    entry: "Put".into(),
                    args: vec![Value::Int(v)],
                })
                .collect(),
        );
        let consumer = ProcessDef::new(
            "consumer",
            ITEMS
                .iter()
                .map(|_| ScriptStep::Call {
                    entry: "Take".into(),
                    args: vec![],
                })
                .collect(),
        );
        let sys = MonitorSystem::new(
            MonitorProgram::new(monitor)
                .process(producer)
                .process(consumer),
        );
        let problem = one_slot_spec();
        let corr = monitor_correspondence(&sys, &problem);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(!outcome.ok(), "unsynchronized slot must violate the spec");
    }
}
