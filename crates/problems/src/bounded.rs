//! The Bounded Buffer problem (§1, §11) and its Monitor, CSP, and ADA
//! solutions.
//!
//! **Problem.** A FIFO buffer of capacity `cap` between a producer and a
//! consumer. The specification uses two elements inside a `buf` group —
//! `inp` (the deposit side) and `outp` (the removal side) — so that the
//! `k`-th deposit and the `k`-th removal are directly addressable with
//! the paper's `EL^k` occurrence notation:
//!
//! * `fifo-values` — the `k`-th removal yields the `k`-th deposit's item;
//! * `remove-after-deposit` — `inp^k ⇒ outp^k`;
//! * `capacity` — `outp^{k-cap} ⇒ inp^k`: the `k`-th deposit can occur
//!   only after the `(k-cap)`-th removal freed a slot.
//!
//! The restrictions are generated per instance (`items` deposits), since
//! occurrence-indexed restrictions quantify over concrete indices.

use gem_core::Value;
use gem_logic::{EventSel, EventTerm, Formula, ValueTerm};
use gem_spec::{ElementType, GroupType, SpecBuilder, Specification};
use gem_verify::Correspondence;

use gem_lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem_lang::{
    ada::{AcceptArm, AdaProgram, AdaStmt, AdaSystem, AdaTask, SelectBranch},
    csp::{CspProcess, CspProgram, CspStmt, CspSystem},
    Expr,
};

/// The Bounded Buffer problem specification for `items` deposits through
/// a buffer of capacity `cap`.
///
/// # Panics
///
/// Panics if `cap == 0`.
pub fn bounded_spec(items: usize, cap: usize) -> Specification {
    assert!(cap > 0, "a buffer needs at least one slot");
    let inp_t = ElementType::new("BufferIn").event("Deposit", &["item"]);
    let outp_t = ElementType::new("BufferOut").event("Remove", &["item"]);
    let buf_t = GroupType::new("BoundedBuffer")
        .element_member("inp", inp_t)
        .element_member("outp", outp_t)
        .port("inp", "Deposit")
        .port("outp", "Remove");
    let mut sb = SpecBuilder::new("BoundedBuffer");
    let buf = sb
        .instantiate_group(&buf_t, "buf", &[])
        .expect("fresh spec");
    let inp = buf.element("inp").id();
    let outp = buf.element("outp").id();

    let mut fifo = Vec::new();
    let mut order = Vec::new();
    let mut capacity = Vec::new();
    for k in 0..items {
        let d_k = EventTerm::NthAt(inp, k);
        let r_k = EventTerm::NthAt(outp, k);
        fifo.push(
            Formula::occurred(r_k.clone()).implies(Formula::occurred(d_k.clone()).and(
                Formula::value_eq(
                    ValueTerm::param(d_k.clone(), "item"),
                    ValueTerm::param(r_k.clone(), "item"),
                ),
            )),
        );
        order.push(
            Formula::occurred(r_k.clone()).implies(Formula::precedes(d_k.clone(), r_k.clone())),
        );
        if k >= cap {
            let r_freed = EventTerm::NthAt(outp, k - cap);
            capacity.push(
                Formula::occurred(d_k.clone()).implies(Formula::precedes(r_freed, d_k.clone())),
            );
        }
    }
    sb.add_restriction("fifo-values", Formula::And(fifo));
    sb.add_restriction("remove-after-deposit", Formula::And(order));
    sb.add_restriction("capacity", Formula::And(capacity));
    sb.finish()
}

/// The Monitor solution: a classic circular-buffer monitor. Slots are
/// modelled as variables `slot0..slot{cap-1}` with IF-chains for
/// indexing (the statement language has no arrays).
pub fn monitor_solution(items: &[i64], cap: usize) -> MonitorSystem {
    assert!(cap > 0 && cap <= 8, "supported capacities: 1..=8");
    let mut monitor = MonitorDef::new("Bounded")
        .var("count", 0i64)
        .var("inx", 0i64)
        .var("outx", 0i64)
        .var("taken", 0i64)
        .condition("notfull")
        .condition("notempty");
    for i in 0..cap {
        monitor = monitor.var(format!("slot{i}"), 0i64);
    }
    // IF inx=0 THEN slot0 := v ELSE IF inx=1 THEN slot1 := v …
    fn index_chain(
        var_prefix: &str,
        index_var: &str,
        cap: usize,
        make: impl Fn(usize) -> Stmt,
    ) -> Stmt {
        let mut stmt = make(cap - 1);
        for i in (0..cap - 1).rev() {
            stmt = Stmt::If(
                Expr::var(index_var).eq(Expr::int(i as i64)),
                vec![make(i)],
                vec![stmt],
            );
        }
        let _ = var_prefix;
        stmt
    }
    let put_body = vec![
        Stmt::if_then(
            Expr::var("count").eq(Expr::int(cap as i64)),
            vec![Stmt::wait("notfull")],
        ),
        index_chain("slot", "inx", cap, |i| {
            Stmt::assign(format!("slot{i}"), Expr::var("v"))
        }),
        Stmt::assign(
            "inx",
            Expr::var("inx")
                .add(Expr::int(1))
                .rem(Expr::int(cap as i64)),
        ),
        Stmt::assign("count", Expr::var("count").add(Expr::int(1))),
        Stmt::signal("notempty"),
    ];
    let take_body = vec![
        Stmt::if_then(
            Expr::var("count").eq(Expr::int(0)),
            vec![Stmt::wait("notempty")],
        ),
        index_chain("slot", "outx", cap, |i| {
            Stmt::assign("taken", Expr::var(format!("slot{i}")))
        }),
        Stmt::assign(
            "outx",
            Expr::var("outx")
                .add(Expr::int(1))
                .rem(Expr::int(cap as i64)),
        ),
        Stmt::assign("count", Expr::var("count").sub(Expr::int(1))),
        Stmt::signal("notfull"),
    ];
    monitor = monitor
        .entry("Put", &["v"], put_body)
        .entry("Take", &[], take_body);
    let producer = ProcessDef::new(
        "producer",
        items
            .iter()
            .map(|&v| ScriptStep::Call {
                entry: "Put".into(),
                args: vec![Value::Int(v)],
            })
            .collect(),
    );
    let consumer = ProcessDef::new(
        "consumer",
        items
            .iter()
            .map(|_| ScriptStep::Call {
                entry: "Take".into(),
                args: vec![],
            })
            .collect(),
    );
    MonitorSystem::new(
        MonitorProgram::new(monitor)
            .process(producer)
            .process(consumer),
    )
}

/// Significant objects for the monitor solution: slot assignments inside
/// `Put` are deposits, `taken` assignments inside `Take` are removals.
pub fn monitor_correspondence(
    sys: &MonitorSystem,
    problem: &Specification,
    cap: usize,
) -> Correspondence {
    let ps = problem.structure();
    let inp = ps.element("buf.inp").expect("inp element");
    let outp = ps.element("buf.outp").expect("outp element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    let mut corr = Correspondence::new().map_with_params(
        EventSel::of_class(sys.class("Assign"))
            .at(sys.var_element("taken"))
            .with_param(1, "Take"),
        outp,
        rem,
        &[(0, 0)],
    );
    for i in 0..cap {
        corr = corr.map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(sys.var_element(&format!("slot{i}")))
                .with_param(1, "Put"),
            inp,
            dep,
            &[(0, 0)],
        );
    }
    corr
}

/// The CSP solution: a chain of `cap` one-slot cell processes between
/// producer and consumer — the classic CSP bounded buffer.
pub fn csp_solution(items: &[i64], cap: usize) -> CspSystem {
    assert!(cap > 0);
    let n = items.len();
    let mut prog = CspProgram::new();
    let mut producer_body = Vec::new();
    for &v in items {
        producer_body.push(CspStmt::send("cell0", Expr::int(v)));
    }
    prog = prog.process(CspProcess::new("producer", producer_body));
    for c in 0..cap {
        let upstream = if c == 0 {
            "producer".to_owned()
        } else {
            format!("cell{}", c - 1)
        };
        let downstream = if c == cap - 1 {
            "consumer".to_owned()
        } else {
            format!("cell{}", c + 1)
        };
        let mut body = Vec::new();
        for _ in 0..n {
            body.push(CspStmt::recv(upstream.clone(), "x"));
            body.push(CspStmt::send(downstream.clone(), Expr::var("x")));
        }
        prog = prog.process(CspProcess::new(format!("cell{c}"), body).local("x", 0i64));
    }
    let mut consumer_body = Vec::new();
    for _ in 0..n {
        consumer_body.push(CspStmt::recv(format!("cell{}", cap - 1), "got"));
    }
    prog = prog.process(CspProcess::new("consumer", consumer_body).local("got", 0i64));
    CspSystem::new(prog)
}

/// Significant objects for the CSP solution: the first cell's `InEnd` is
/// the deposit, the last cell's `OutEnd` the removal.
pub fn csp_correspondence(sys: &CspSystem, problem: &Specification, cap: usize) -> Correspondence {
    let ps = problem.structure();
    let inp = ps.element("buf.inp").expect("inp element");
    let outp = ps.element("buf.outp").expect("outp element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    let first = sys.program().process_index("cell0").expect("cell0");
    let last = sys
        .program()
        .process_index(&format!("cell{}", cap - 1))
        .expect("last cell");
    Correspondence::new()
        .map_with_params(
            EventSel::of_class(sys.class("InEnd")).at(sys.in_element(first)),
            inp,
            dep,
            &[(0, 0)],
        )
        .map_with_params(
            EventSel::of_class(sys.class("OutEnd")).at(sys.out_element(last)),
            outp,
            rem,
            &[(0, 0)],
        )
}

/// The ADA solution: a buffer task with a guarded select over `Put` and
/// `Take`, circular-buffer state in locals.
pub fn ada_solution(items: &[i64], cap: usize) -> AdaSystem {
    assert!(cap > 0 && cap <= 8, "supported capacities: 1..=8");
    let n = items.len() as i64;
    fn index_chain(index_var: &str, cap: usize, make: impl Fn(usize) -> AdaStmt) -> AdaStmt {
        let mut stmt = make(cap - 1);
        for i in (0..cap - 1).rev() {
            stmt = AdaStmt::If(
                Expr::var(index_var).eq(Expr::int(i as i64)),
                vec![make(i)],
                vec![stmt],
            );
        }
        stmt
    }
    let put_arm = AcceptArm {
        entry: "Put".into(),
        params: vec!["v".into()],
        body: vec![
            index_chain("inx", cap, |i| {
                AdaStmt::assign(format!("slot{i}"), Expr::var("v"))
            }),
            AdaStmt::assign(
                "inx",
                Expr::var("inx")
                    .add(Expr::int(1))
                    .rem(Expr::int(cap as i64)),
            ),
            AdaStmt::assign("count", Expr::var("count").add(Expr::int(1))),
            AdaStmt::assign("puts", Expr::var("puts").add(Expr::int(1))),
        ],
    };
    let take_arm = AcceptArm {
        entry: "Take".into(),
        params: vec![],
        body: vec![
            index_chain("outx", cap, |i| {
                AdaStmt::assign("out", Expr::var(format!("slot{i}")))
            }),
            AdaStmt::assign(
                "outx",
                Expr::var("outx")
                    .add(Expr::int(1))
                    .rem(Expr::int(cap as i64)),
            ),
            AdaStmt::assign("count", Expr::var("count").sub(Expr::int(1))),
            AdaStmt::assign("takes", Expr::var("takes").add(Expr::int(1))),
        ],
    };
    let loop_body = vec![AdaStmt::Select(vec![
        SelectBranch {
            guard: Some(
                Expr::var("count")
                    .lt(Expr::int(cap as i64))
                    .and(Expr::var("puts").lt(Expr::int(n))),
            ),
            accept: put_arm,
        },
        SelectBranch {
            guard: Some(Expr::var("count").gt(Expr::int(0))),
            accept: take_arm,
        },
    ])];
    let mut buffer = AdaTask::new(
        "buffer",
        vec![AdaStmt::While(
            Expr::var("puts")
                .lt(Expr::int(n))
                .or(Expr::var("takes").lt(Expr::int(n))),
            loop_body,
        )],
    )
    .entry("Put")
    .entry("Take")
    .local("count", 0i64)
    .local("inx", 0i64)
    .local("outx", 0i64)
    .local("out", 0i64)
    .local("puts", 0i64)
    .local("takes", 0i64);
    for i in 0..cap {
        buffer = buffer.local(format!("slot{i}"), 0i64);
    }
    let producer = AdaTask::new(
        "producer",
        items
            .iter()
            .map(|&v| AdaStmt::call("buffer", "Put", vec![Expr::int(v)]))
            .collect(),
    );
    let consumer = AdaTask::new(
        "consumer",
        items
            .iter()
            .map(|_| AdaStmt::call("buffer", "Take", vec![]))
            .collect(),
    );
    AdaSystem::new(AdaProgram::new().task(buffer).task(producer).task(consumer))
}

/// Significant objects for the ADA solution.
pub fn ada_correspondence(sys: &AdaSystem, problem: &Specification, cap: usize) -> Correspondence {
    let ps = problem.structure();
    let inp = ps.element("buf.inp").expect("inp element");
    let outp = ps.element("buf.outp").expect("outp element");
    let dep = ps.class("Deposit").expect("Deposit class");
    let rem = ps.class("Remove").expect("Remove class");
    let s = sys.structure();
    let mut corr = Correspondence::new().map_with_params(
        EventSel::of_class(sys.class("Assign")).at(s.element("buffer.var.out").expect("out var")),
        outp,
        rem,
        &[(0, 0)],
    );
    for i in 0..cap {
        corr = corr.map_with_params(
            EventSel::of_class(sys.class("Assign"))
                .at(s.element(&format!("buffer.var.slot{i}")).expect("slot var")),
            inp,
            dep,
            &[(0, 0)],
        );
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::Explorer;
    use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};

    const ITEMS: &[i64] = &[1, 2, 3, 4];
    const CAP: usize = 2;

    #[test]
    fn spec_shape() {
        let spec = bounded_spec(ITEMS.len(), CAP);
        assert_eq!(spec.restrictions().len(), 3);
        assert!(spec.restriction("capacity").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = bounded_spec(2, 0);
    }

    #[test]
    fn monitor_satisfies_bounded() {
        let sys = monitor_solution(ITEMS, CAP);
        let problem = bounded_spec(ITEMS.len(), CAP);
        let corr = monitor_correspondence(&sys, &problem, CAP);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn csp_satisfies_bounded() {
        let sys = csp_solution(ITEMS, CAP);
        let problem = bounded_spec(ITEMS.len(), CAP);
        let corr = csp_correspondence(&sys, &problem, CAP);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn ada_satisfies_bounded() {
        let sys = ada_solution(ITEMS, CAP);
        let problem = bounded_spec(ITEMS.len(), CAP);
        let corr = ada_correspondence(&sys, &problem, CAP);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn solutions_deadlock_free() {
        assert!(assert_no_deadlock(&monitor_solution(ITEMS, CAP), &Explorer::default()).is_ok());
        assert!(assert_no_deadlock(&csp_solution(ITEMS, CAP), &Explorer::default()).is_ok());
        assert!(assert_no_deadlock(&ada_solution(ITEMS, CAP), &Explorer::default()).is_ok());
    }

    #[test]
    fn capacity_violation_detected() {
        // A buffer claiming capacity 2 but holding 3 cells violates the
        // cap-2 capacity restriction (deposit 3 can occur before any
        // removal).
        let sys = csp_solution(ITEMS, 3);
        let problem = bounded_spec(ITEMS.len(), 2);
        let corr = csp_correspondence(&sys, &problem, 3);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(!outcome.ok(), "3 cells overflow a capacity-2 spec");
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.violated.iter().any(|v| v == "capacity")));
    }

    #[test]
    fn capacity_one_equals_one_slot_alternation() {
        let sys = monitor_solution(&[7, 8], 1);
        let problem = bounded_spec(2, 1);
        let corr = monitor_correspondence(&sys, &problem, 1);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
    }
}
