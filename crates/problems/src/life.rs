//! The asynchronous, distributed Game of Life (§1, §11 — the paper's
//! second distributed application, citing its reference \[29\]).
//!
//! Each grid cell is a CSP process; neighbour state flows through
//! one-slot *edge buffer* processes (one per directed neighbour edge), so
//! cells advance asynchronously: a cell may run ahead of its neighbours
//! by at most one generation (the buffers bound the skew), and a cell
//! computes generation `g+1` only after receiving all of its neighbours'
//! generation-`g` states — the defining constraint of asynchronous Life.
//!
//! The problem specification has one element per cell with
//! `Compute(state)` events (the cell's generation steps). Its
//! restrictions are generated per instance:
//!
//! * `neighbour-causality` — `cell^g` (the `g`-th compute of a cell) is
//!   temporally preceded by `nb^{g-1}` for every neighbour `nb`;
//! * `completeness` — every cell computes all `gens` generations;
//! * `functional` — the `g`-th compute of each cell carries exactly the
//!   state the synchronous reference evolution ([`sync_life`]) predicts.
//!   (Asynchronous Life is confluent: every schedule must produce the
//!   synchronous result.)

use gem_logic::{EventSel, EventTerm, Formula, ValueTerm};
use gem_spec::{ElementType, SpecBuilder, Specification};
use gem_verify::Correspondence;

use gem_lang::csp::{CspProcess, CspProgram, CspStmt, CspSystem};
use gem_lang::Expr;

/// A rectangular Life grid with dead cells beyond the boundary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grid {
    /// Width in cells.
    pub width: usize,
    /// Height in cells.
    pub height: usize,
    /// Row-major cell states (`true` = alive).
    pub cells: Vec<bool>,
}

impl Grid {
    /// Creates a grid from row-major states.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != width * height`.
    pub fn new(width: usize, height: usize, cells: Vec<bool>) -> Self {
        assert_eq!(cells.len(), width * height, "cell count mismatch");
        Self {
            width,
            height,
            cells,
        }
    }

    /// The state of cell `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.cells[y * self.width + x]
    }

    /// The Moore neighbours (up to 8) of `(x, y)` within the grid.
    pub fn neighbours(&self, x: usize, y: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                    out.push((nx as usize, ny as usize));
                }
            }
        }
        out
    }

    /// One synchronous Life step (B3/S23, dead boundary).
    pub fn step(&self) -> Grid {
        let mut next = self.cells.clone();
        for y in 0..self.height {
            for x in 0..self.width {
                let alive = self.get(x, y);
                let count = self
                    .neighbours(x, y)
                    .into_iter()
                    .filter(|&(nx, ny)| self.get(nx, ny))
                    .count();
                next[y * self.width + x] = count == 3 || (alive && count == 2);
            }
        }
        Grid {
            width: self.width,
            height: self.height,
            cells: next,
        }
    }
}

/// Runs the synchronous reference evolution: the grid after each of
/// `gens` steps (so the result has `gens` entries).
pub fn sync_life(initial: &Grid, gens: usize) -> Vec<Grid> {
    let mut out = Vec::with_capacity(gens);
    let mut g = initial.clone();
    for _ in 0..gens {
        g = g.step();
        out.push(g.clone());
    }
    out
}

fn cell_name(x: usize, y: usize) -> String {
    format!("cell_{x}_{y}")
}

fn buf_name(from: (usize, usize), to: (usize, usize)) -> String {
    format!("buf_{}_{}_to_{}_{}", from.0, from.1, to.0, to.1)
}

/// The asynchronous-Life problem specification for `initial` evolved
/// `gens` generations, including the expected per-generation states from
/// the synchronous reference.
#[allow(clippy::needless_range_loop)] // g indexes both events and reference states
pub fn life_spec(initial: &Grid, gens: usize) -> Specification {
    let cell_t = ElementType::new("LifeCell").event("Compute", &["state"]);
    let mut sb = SpecBuilder::new("AsyncLife");
    let mut cell_els = Vec::new();
    for y in 0..initial.height {
        for x in 0..initial.width {
            let inst = sb
                .instantiate_element(&cell_t, cell_name(x, y))
                .expect("fresh cell");
            cell_els.push(inst.id());
        }
    }
    let reference = sync_life(initial, gens);

    let mut causality = Vec::new();
    let mut completeness = Vec::new();
    let mut functional = Vec::new();
    for y in 0..initial.height {
        for x in 0..initial.width {
            let el = cell_els[y * initial.width + x];
            completeness.push(Formula::occurred(EventTerm::NthAt(el, gens - 1)));
            for g in 0..gens {
                let me_g = EventTerm::NthAt(el, g);
                functional.push(Formula::occurred(me_g.clone()).implies(Formula::value_eq(
                    ValueTerm::param(me_g.clone(), "state"),
                    ValueTerm::Const(gem_core::Value::Int(i64::from(reference[g].get(x, y)))),
                )));
                if g > 0 {
                    for (nx, ny) in initial.neighbours(x, y) {
                        let nb_el = cell_els[ny * initial.width + nx];
                        let nb_prev = EventTerm::NthAt(nb_el, g - 1);
                        causality.push(
                            Formula::occurred(me_g.clone())
                                .implies(Formula::precedes(nb_prev, me_g.clone())),
                        );
                    }
                }
            }
        }
    }
    sb.add_restriction("neighbour-causality", Formula::And(causality));
    sb.add_restriction("completeness", Formula::And(completeness));
    sb.add_restriction("functional", Formula::And(functional));
    sb.finish()
}

/// Builds the asynchronous CSP implementation: one process per cell, one
/// one-slot buffer process per directed neighbour edge, `gens`
/// generations.
pub fn life_program(initial: &Grid, gens: usize) -> CspSystem {
    let mut prog = CspProgram::new();
    for y in 0..initial.height {
        for x in 0..initial.width {
            let me = (x, y);
            let nbs = initial.neighbours(x, y);
            let mut body = Vec::new();
            for _ in 0..gens {
                // Publish my state to every outgoing edge buffer …
                for &nb in &nbs {
                    body.push(CspStmt::send(buf_name(me, nb), Expr::var("alive")));
                }
                // … gather every neighbour's state …
                let mut sum = Expr::int(0);
                for (j, &nb) in nbs.iter().enumerate() {
                    body.push(CspStmt::recv(buf_name(nb, me), format!("n{j}")));
                    sum = sum.add(Expr::var(format!("n{j}")));
                }
                body.push(CspStmt::assign("sum", sum));
                // … and step (B3/S23).
                body.push(CspStmt::If(
                    Expr::var("sum").eq(Expr::int(3)).or(Expr::var("alive")
                        .eq(Expr::int(1))
                        .and(Expr::var("sum").eq(Expr::int(2)))),
                    vec![CspStmt::assign("alive", Expr::int(1))],
                    vec![CspStmt::assign("alive", Expr::int(0))],
                ));
            }
            let mut proc = CspProcess::new(cell_name(x, y), body)
                .local("alive", i64::from(initial.get(x, y)))
                .local("sum", 0i64);
            for j in 0..nbs.len() {
                proc = proc.local(format!("n{j}"), 0i64);
            }
            prog = prog.process(proc);
        }
    }
    // Edge buffers: one-slot relays, `gens` items each.
    for y in 0..initial.height {
        for x in 0..initial.width {
            let me = (x, y);
            for nb in initial.neighbours(x, y) {
                let mut body = Vec::new();
                for _ in 0..gens {
                    body.push(CspStmt::recv(cell_name(me.0, me.1), "v"));
                    body.push(CspStmt::send(cell_name(nb.0, nb.1), Expr::var("v")));
                }
                prog = prog.process(CspProcess::new(buf_name(me, nb), body).local("v", 0i64));
            }
        }
    }
    CspSystem::new(prog)
}

/// Significant objects: each cell's `alive` assignments are its `Compute`
/// events. (The `alive` variable is assigned exactly once per generation
/// — both branches of the rule assign it.)
pub fn life_correspondence(
    sys: &CspSystem,
    problem: &Specification,
    grid: &Grid,
) -> Correspondence {
    let ps = problem.structure();
    let compute = ps.class("Compute").expect("Compute class");
    let mut corr = Correspondence::new();
    for y in 0..grid.height {
        for x in 0..grid.width {
            let cell_el = ps.element(&cell_name(x, y)).expect("cell element");
            let var_el = sys
                .structure()
                .element(&format!("{}.var.alive", cell_name(x, y)))
                .expect("alive var");
            corr = corr.map_with_params(
                EventSel::of_class(sys.class("Assign")).at(var_el),
                cell_el,
                compute,
                &[(0, 0)],
            );
        }
    }
    corr
}

/// A 3×3 blinker: a vertical bar that oscillates to horizontal and back.
pub fn blinker() -> Grid {
    Grid::new(
        3,
        3,
        vec![
            false, true, false, //
            false, true, false, //
            false, true, false,
        ],
    )
}

/// A 2×2 block (still life).
pub fn block() -> Grid {
    Grid::new(2, 2, vec![true, true, true, true])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::{Explorer, System};
    use gem_verify::{verify_system, VerifyOptions};
    use rand::SeedableRng;
    use std::ops::ControlFlow;

    #[test]
    fn sync_reference_blinker_oscillates() {
        let steps = sync_life(&blinker(), 2);
        let horizontal = Grid::new(
            3,
            3,
            vec![
                false, false, false, //
                true, true, true, //
                false, false, false,
            ],
        );
        assert_eq!(steps[0], horizontal);
        assert_eq!(steps[1], blinker());
    }

    #[test]
    fn sync_reference_block_is_still() {
        let steps = sync_life(&block(), 3);
        assert!(steps.iter().all(|g| *g == block()));
    }

    #[test]
    fn block_satisfies_spec_on_sampled_schedules() {
        let grid = block();
        let gens = 2;
        let sys = life_program(&grid, gens);
        let problem = life_spec(&grid, gens);
        let corr = life_correspondence(&sys, &problem, &grid);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                explorer: Explorer::with_max_runs(40),
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.runs >= 40, "sampled schedules all pass");
    }

    #[test]
    fn blinker_matches_sync_reference_on_random_schedules() {
        // Asynchronous Life is confluent: every schedule yields the
        // synchronous result. 3×3 exhaustive exploration is infeasible,
        // so check seeded random schedules end-to-end.
        let grid = blinker();
        let gens = 2;
        let sys = life_program(&grid, gens);
        let reference = sync_life(&grid, gens);
        let explorer = Explorer::default();
        for seed in 0..5 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (state, _) = explorer.random_run(&sys, &mut rng);
            assert!(sys.is_complete(&state), "no deadlock on seed {seed}");
            for y in 0..grid.height {
                for x in 0..grid.width {
                    let pid = sys.program().process_index(&cell_name(x, y)).unwrap();
                    let alive = state.local(pid, "alive").unwrap().as_int().unwrap();
                    assert_eq!(
                        alive,
                        i64::from(reference[gens - 1].get(x, y)),
                        "cell ({x},{y}) seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn blinker_spec_holds_on_random_schedule() {
        let grid = blinker();
        let gens = 1;
        let sys = life_program(&grid, gens);
        let problem = life_spec(&grid, gens);
        let corr = life_correspondence(&sys, &problem, &grid);
        let mut checked = 0;
        Explorer::with_max_runs(3).for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            let p = gem_verify::project(&c, problem.structure_arc(), &corr).unwrap();
            let report = problem
                .check(&p, gem_logic::Strategy::Complete)
                .expect("evaluable");
            assert!(report.is_legal(), "{report}");
            checked += 1;
            ControlFlow::Continue(())
        });
        assert!(checked > 0);
    }

    #[test]
    fn wrong_reference_detected() {
        // The functional restriction is sensitive: spec for a DIFFERENT
        // initial grid fails against the block program.
        let grid = block();
        let wrong = Grid::new(2, 2, vec![true, false, false, true]); // dies out
        let gens = 1;
        let sys = life_program(&grid, gens);
        let problem = life_spec(&wrong, gens);
        let corr = life_correspondence(&sys, &problem, &grid);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                explorer: Explorer::with_max_runs(5),
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent");
        assert!(!outcome.ok());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.violated.iter().any(|v| v == "functional")));
    }

    #[test]
    fn neighbours_of_corner_edge_center() {
        let g = blinker();
        assert_eq!(g.neighbours(0, 0).len(), 3);
        assert_eq!(g.neighbours(1, 0).len(), 5);
        assert_eq!(g.neighbours(1, 1).len(), 8);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn bad_grid_rejected() {
        let _ = Grid::new(2, 2, vec![true]);
    }
}
