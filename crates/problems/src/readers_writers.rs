//! The Readers/Writers problem (§8.3, §9): five specification variants,
//! the paper's Readers-Priority monitor, a Writers-Priority monitor, the
//! §9 significant-object correspondence, and `PROG sat P` verification.
//!
//! The paper specifies Readers/Writers with a `User` element type, a
//! `DataBase` group (an `RWControl` element plus data `Variable`s), chain
//! restrictions tying each user call to its request/start/access/end
//! events, a thread type `πRW` labelling each transaction, the
//! writers-exclude-others restriction, and the Readers-Priority
//! restriction. §11 reports five specified versions; this module provides
//! five [`RwVariant`]s:
//!
//! * [`RwVariant::MutexOnly`] — writers exclude readers and writers.
//! * [`RwVariant::ReadersPriority`] — §8.3's restriction: a pending read
//!   is serviced before a simultaneously pending write.
//! * [`RwVariant::WritersPriority`] — the symmetric property.
//! * [`RwVariant::Fcfs`] — conflicting requests are serviced in request
//!   order.
//! * [`RwVariant::Progress`] — every request is eventually serviced.

use gem_core::ThreadTypeId;
use gem_logic::{EventSel, Formula, ValueTerm};
use gem_spec::{
    chain, mutual_exclusion, priority, ElementType, GroupType, SpecBuilder, Specification,
};
use gem_verify::Correspondence;

use gem_lang::monitor::{MonitorDef, MonitorProgram, MonitorSystem, ProcessDef, ScriptStep, Stmt};
use gem_lang::Expr;

/// The five Readers/Writers specification variants (§11: "five versions
/// of the Readers/Writers problem").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RwVariant {
    /// Mutual exclusion only (writers exclude everyone).
    MutexOnly,
    /// Mutex + readers priority (§8.3).
    ReadersPriority,
    /// Mutex + writers priority.
    WritersPriority,
    /// Mutex + first-come-first-served between conflicting requests.
    Fcfs,
    /// Mutex + every request eventually serviced.
    Progress,
}

impl RwVariant {
    /// All five variants.
    pub const ALL: [RwVariant; 5] = [
        RwVariant::MutexOnly,
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
        RwVariant::Fcfs,
        RwVariant::Progress,
    ];
}

/// The thread type id used for `πRW` in every generated spec (declared
/// first, so always id 0).
pub const PI_RW: ThreadTypeId = ThreadTypeId::from_raw(0);

/// Builds the Readers/Writers specification.
///
/// With `with_data == false` the spec is control-only: one `RWControl`
/// element, the transaction chains `ReqRead → StartRead → EndRead` /
/// `ReqWrite → StartWrite → EndWrite`, the `πRW` thread type, mutual
/// exclusion, and the variant's restriction. With `with_data == true` the
/// full §8.3 structure is generated: `n_users` `User` elements and a
/// `DataBase` group with a data `Variable`, with the full six-event
/// chains including the data access.
pub fn rw_spec(n_users: usize, with_data: bool, variant: RwVariant) -> Specification {
    let mut sb = SpecBuilder::new(format!("RWProblem-{variant:?}"));

    let control_t = ElementType::new("RWControl")
        .event("ReqRead", &[])
        .event("StartRead", &[])
        .event("EndRead", &[])
        .event("ReqWrite", &[])
        .event("StartWrite", &[])
        .event("EndWrite", &[]);

    let (control, data, users) = if with_data {
        let data_t = ElementType::new("RWData")
            .event("Getval", &["info"])
            .event("DataAssign", &["info"])
            .event("DataInit", &["info"]);
        let db_t = GroupType::new("DataBase")
            .element_member("control", control_t)
            .element_member("data", data_t)
            .port("control", "ReqRead")
            .port("control", "ReqWrite");
        let db = sb.instantiate_group(&db_t, "db", &[]).expect("fresh spec");
        let user_t = ElementType::new("User")
            .event("Read", &[])
            .event("FinishRead", &[])
            .event("Write", &[])
            .event("FinishWrite", &[]);
        let users: Vec<_> = (0..n_users)
            .map(|i| {
                sb.instantiate_element(&user_t, format!("u{i}"))
                    .expect("fresh user")
            })
            .collect();
        (
            db.element("control").clone(),
            Some(db.element("data").clone()),
            users,
        )
    } else {
        let control = sb
            .instantiate_element(&control_t, "control")
            .expect("fresh spec");
        (control, None, Vec::new())
    };

    let req_read = control.sel("ReqRead");
    let start_read = control.sel("StartRead");
    let end_read = control.sel("EndRead");
    let req_write = control.sel("ReqWrite");
    let start_write = control.sel("StartWrite");
    let end_write = control.sel("EndWrite");

    // Thread type πRW: one path alternative per transaction kind (§8.3).
    let (read_path, write_path) = if with_data {
        let data = data.as_ref().expect("with_data");
        let user_read = EventSel::of_class(sb.structure().class("Read").expect("Read class"));
        let user_finish_read =
            EventSel::of_class(sb.structure().class("FinishRead").expect("class"));
        let user_write = EventSel::of_class(sb.structure().class("Write").expect("class"));
        let user_finish_write =
            EventSel::of_class(sb.structure().class("FinishWrite").expect("class"));
        (
            vec![
                user_read,
                req_read.clone(),
                start_read.clone(),
                data.sel("Getval"),
                end_read.clone(),
                user_finish_read,
            ],
            vec![
                user_write,
                req_write.clone(),
                start_write.clone(),
                data.sel("DataAssign"),
                end_write.clone(),
                user_finish_write,
            ],
        )
    } else {
        (
            vec![req_read.clone(), start_read.clone(), end_read.clone()],
            vec![req_write.clone(), start_write.clone(), end_write.clone()],
        )
    };
    let pi_rw = sb.declare_thread("pi_RW", vec![read_path.clone(), write_path.clone()]);
    debug_assert_eq!(pi_rw, PI_RW);

    // Chain restrictions (the RWProblem restrictions 1 and 2 of §8.3).
    sb.add_restriction("read-chain", chain(&read_path));
    sb.add_restriction("write-chain", chain(&write_path));

    // Writers exclude readers, and writers exclude writers (§8.3).
    sb.add_restriction(
        "writers-exclude-readers",
        mutual_exclusion(&start_write, &end_write, &start_read, &end_read, pi_rw),
    );
    sb.add_restriction(
        "writers-exclude-writers",
        mutual_exclusion(&start_write, &end_write, &start_write, &end_write, pi_rw),
    );

    if let Some(data) = &data {
        // Reads are isolated from writes at the data itself.
        sb.add_restriction(
            "reads-isolated-from-writes",
            Formula::forall(
                "g",
                data.sel("Getval"),
                Formula::forall(
                    "a",
                    data.sel("DataAssign"),
                    Formula::concurrent("g", "a").not(),
                ),
            ),
        );
        // Variable semantics: a Getval yields the latest prior write (or
        // the initialization) at the data element.
        let writes = |v: &str| {
            Formula::matches(v, data.sel("DataAssign"))
                .or(Formula::matches(v, data.sel("DataInit")))
        };
        sb.add_restriction(
            "getval-yields-latest-write",
            Formula::forall(
                "g",
                data.sel("Getval"),
                Formula::exists(
                    "w",
                    EventSel::at_element(data.id()),
                    writes("w")
                        .and(Formula::element_precedes("w", "g"))
                        .and(Formula::value_eq(
                            ValueTerm::param("w", 0usize),
                            ValueTerm::param("g", "info"),
                        ))
                        .and(
                            Formula::exists(
                                "w2",
                                EventSel::at_element(data.id()),
                                writes("w2")
                                    .and(Formula::element_precedes("w", "w2"))
                                    .and(Formula::element_precedes("w2", "g")),
                            )
                            .not(),
                        ),
                ),
            ),
        );
    }

    match variant {
        RwVariant::MutexOnly => {}
        RwVariant::ReadersPriority => {
            sb.add_restriction(
                "readers-priority",
                priority(&req_read, &start_read, &req_write, &start_write, pi_rw),
            );
        }
        RwVariant::WritersPriority => {
            sb.add_restriction(
                "writers-priority",
                priority(&req_write, &start_write, &req_read, &start_read, pi_rw),
            );
        }
        RwVariant::Fcfs => {
            sb.add_restriction(
                "fcfs-read-before-write",
                fcfs(&req_read, &start_read, &req_write, &start_write, pi_rw),
            );
            sb.add_restriction(
                "fcfs-write-before-read",
                fcfs(&req_write, &start_write, &req_read, &start_read, pi_rw),
            );
        }
        RwVariant::Progress => {
            sb.add_restriction(
                "every-read-serviced",
                eventually_serviced(&req_read, &start_read, pi_rw),
            );
            sb.add_restriction(
                "every-write-serviced",
                eventually_serviced(&req_write, &start_write, pi_rw),
            );
        }
    }
    let _ = users;
    sb.finish()
}

/// FCFS between conflicting request kinds: if an A-request temporally
/// precedes a B-request and both are still pending, A starts before B.
fn fcfs(
    req_a: &EventSel,
    start_a: &EventSel,
    req_b: &EventSel,
    start_b: &EventSel,
    ty: ThreadTypeId,
) -> Formula {
    let pending = Formula::occurred("__ra")
        .and(Formula::occurred("__rb"))
        .and(Formula::precedes("__ra", "__rb"))
        .and(Formula::at_control("__ra", start_a.clone()))
        .and(Formula::at_control("__rb", start_b.clone()));
    let serviced_first = Formula::occurred("__sb").implies(Formula::exists(
        "__sa",
        start_a.clone(),
        Formula::same_thread("__ra", "__sa", ty).and(Formula::occurred("__sa")),
    ));
    Formula::forall(
        "__ra",
        req_a.clone(),
        Formula::forall(
            "__rb",
            req_b.clone(),
            Formula::forall(
                "__sb",
                start_b.clone(),
                Formula::same_thread("__rb", "__sb", ty)
                    .and(pending)
                    .implies(serviced_first.henceforth()),
            ),
        ),
    )
    .henceforth()
}

/// Liveness: every request is eventually followed by its transaction's
/// start.
fn eventually_serviced(req: &EventSel, start: &EventSel, ty: ThreadTypeId) -> Formula {
    Formula::forall(
        "__r",
        req.clone(),
        Formula::exists(
            "__s",
            start.clone(),
            Formula::same_thread("__r", "__s", ty).and(Formula::occurred("__s")),
        )
        .eventually(),
    )
}

/// A Writers-Priority monitor: readers defer to waiting writers.
pub fn writers_priority_monitor() -> MonitorDef {
    MonitorDef::new("WritersFirst")
        .var("readers", 0i64)
        .var("writing", 0i64)
        .var("waitw", 0i64)
        .condition("okread")
        .condition("okwrite")
        .entry(
            "StartRead",
            &[],
            vec![
                Stmt::if_then(
                    Expr::var("writing")
                        .eq(Expr::int(1))
                        .or(Expr::var("waitw").gt(Expr::int(0))),
                    vec![Stmt::wait("okread")],
                ),
                Stmt::assign("readers", Expr::var("readers").add(Expr::int(1))),
                Stmt::signal("okread"),
            ],
        )
        .entry(
            "EndRead",
            &[],
            vec![
                Stmt::assign("readers", Expr::var("readers").sub(Expr::int(1))),
                Stmt::if_then(
                    Expr::var("readers").eq(Expr::int(0)),
                    vec![Stmt::signal("okwrite")],
                ),
            ],
        )
        .entry(
            "StartWrite",
            &[],
            vec![
                Stmt::if_then(
                    Expr::var("readers")
                        .gt(Expr::int(0))
                        .or(Expr::var("writing").eq(Expr::int(1))),
                    vec![
                        Stmt::assign("waitw", Expr::var("waitw").add(Expr::int(1))),
                        Stmt::wait("okwrite"),
                        Stmt::assign("waitw", Expr::var("waitw").sub(Expr::int(1))),
                    ],
                ),
                Stmt::assign("writing", Expr::int(1)),
            ],
        )
        .entry(
            "EndWrite",
            &[],
            vec![
                Stmt::assign("writing", Expr::int(0)),
                Stmt::IfQueue(
                    "okwrite".into(),
                    vec![Stmt::signal("okwrite")],
                    vec![Stmt::signal("okread")],
                ),
            ],
        )
}

/// A Mesa-safe variant of the §9 monitor: identical logic, but with
/// `WHILE … DO WAIT` re-checks instead of `IF … THEN WAIT`. Correct under
/// both signalling disciplines; the paper's `IF`-based monitor is only
/// correct under Hoare semantics (the Hoare/Mesa ablation of
/// EXPERIMENTS.md).
pub fn mesa_safe_readers_writers_monitor() -> MonitorDef {
    let readernum = || Expr::var("readernum");
    MonitorDef::new("ReadersWritersMesa")
        .var("readernum", 0i64)
        .condition("readqueue")
        .condition("writequeue")
        .entry(
            "StartRead",
            &[],
            vec![
                Stmt::While(readernum().lt(Expr::int(0)), vec![Stmt::wait("readqueue")]),
                Stmt::assign("readernum", readernum().add(Expr::int(1))),
                Stmt::signal("readqueue"),
            ],
        )
        .entry(
            "EndRead",
            &[],
            vec![
                Stmt::assign("readernum", readernum().sub(Expr::int(1))),
                Stmt::if_then(
                    readernum().eq(Expr::int(0)),
                    vec![Stmt::signal("writequeue")],
                ),
            ],
        )
        .entry(
            "StartWrite",
            &[],
            vec![
                Stmt::While(readernum().ne(Expr::int(0)), vec![Stmt::wait("writequeue")]),
                Stmt::assign("readernum", Expr::int(-1)),
            ],
        )
        .entry(
            "EndWrite",
            &[],
            vec![
                Stmt::assign("readernum", Expr::int(0)),
                Stmt::IfQueue(
                    "readqueue".into(),
                    vec![Stmt::signal("readqueue")],
                    vec![Stmt::signal("writequeue")],
                ),
            ],
        )
}

/// Which variable holds the read/write state in a given monitor, and
/// which entry assignments are the significant Start/End events.
fn state_var(monitor: &MonitorDef) -> &'static str {
    if monitor.entry_index("StartRead").is_some()
        && monitor.vars.iter().any(|(v, _)| v == "readernum")
    {
        "readernum"
    } else {
        // Writers-priority monitor: StartRead touches `readers`,
        // StartWrite/EndWrite touch `writing`.
        "readers"
    }
}

/// Builds a monitor program for `readers` reader and `writers` writer
/// processes. With `with_data == true` the scripts include the user-level
/// `Read`/`Write` events and the shared-data access between start and
/// end; otherwise they are the minimal `Start*`/`End*` call pairs
/// (keeping exhaustive exploration tractable for the priority variants).
pub fn rw_program(
    monitor: MonitorDef,
    readers: usize,
    writers: usize,
    with_data: bool,
) -> MonitorSystem {
    rw_program_with_semantics(
        monitor,
        readers,
        writers,
        with_data,
        gem_lang::monitor::SignalSemantics::Hoare,
    )
}

/// [`rw_program`] with an explicit signalling discipline — the handle for
/// the Hoare/Mesa ablation.
pub fn rw_program_with_semantics(
    monitor: MonitorDef,
    readers: usize,
    writers: usize,
    with_data: bool,
    semantics: gem_lang::monitor::SignalSemantics,
) -> MonitorSystem {
    let call = |entry: &str| ScriptStep::Call {
        entry: entry.into(),
        args: vec![],
    };
    let mut prog = MonitorProgram::new(monitor).with_semantics(semantics);
    if with_data {
        prog = prog
            .shared_var("data", 0i64)
            .user_class("Read", &[])
            .user_class("FinishRead", &[])
            .user_class("Write", &[])
            .user_class("FinishWrite", &[]);
    }
    let mut pid = 0;
    for _ in 0..readers {
        let script = if with_data {
            vec![
                ScriptStep::Event {
                    class: "Read".into(),
                    params: vec![],
                },
                call("StartRead"),
                ScriptStep::ReadShared { var: "data".into() },
                call("EndRead"),
                ScriptStep::Event {
                    class: "FinishRead".into(),
                    params: vec![],
                },
            ]
        } else {
            vec![call("StartRead"), call("EndRead")]
        };
        prog = prog.process(ProcessDef::new(format!("u{pid}"), script));
        pid += 1;
    }
    for w in 0..writers {
        let script = if with_data {
            vec![
                ScriptStep::Event {
                    class: "Write".into(),
                    params: vec![],
                },
                call("StartWrite"),
                ScriptStep::WriteShared {
                    var: "data".into(),
                    value: Expr::int(100 + w as i64),
                },
                call("EndWrite"),
                ScriptStep::Event {
                    class: "FinishWrite".into(),
                    params: vec![],
                },
            ]
        } else {
            vec![call("StartWrite"), call("EndWrite")]
        };
        prog = prog.process(ProcessDef::new(format!("u{pid}"), script));
        pid += 1;
    }
    MonitorSystem::new(prog)
}

/// A control-only readers/writers program where every process performs
/// `rounds` complete transactions (`StartRead;EndRead` or
/// `StartWrite;EndWrite` pairs) instead of one. The schedule space grows
/// roughly as the multinomial of `2 × rounds × processes` actions —
/// the workload knob for the parallel-exploration scaling bench (F5) and
/// for any experiment that needs a deep, wide schedule trie from a small
/// process count.
pub fn rw_rounds_program(
    monitor: MonitorDef,
    readers: usize,
    writers: usize,
    rounds: usize,
) -> MonitorSystem {
    let call = |entry: &str| ScriptStep::Call {
        entry: entry.into(),
        args: vec![],
    };
    let mut prog = MonitorProgram::new(monitor);
    let mut pid = 0;
    for _ in 0..readers {
        let mut script = Vec::with_capacity(2 * rounds);
        for _ in 0..rounds {
            script.push(call("StartRead"));
            script.push(call("EndRead"));
        }
        prog = prog.process(ProcessDef::new(format!("u{pid}"), script));
        pid += 1;
    }
    for _ in 0..writers {
        let mut script = Vec::with_capacity(2 * rounds);
        for _ in 0..rounds {
            script.push(call("StartWrite"));
            script.push(call("EndWrite"));
        }
        prog = prog.process(ProcessDef::new(format!("u{pid}"), script));
        pid += 1;
    }
    MonitorSystem::new(prog)
}

/// The §9 significant-object correspondence for a readers/writers monitor
/// program. Mirrors the paper's table:
///
/// ```text
/// ReqRead    ↦ Entry StartRead : BEGIN
/// StartRead  ↦ Entry StartRead : <state> := <state> + 1
/// EndRead    ↦ Entry EndRead   : <state> := <state> − 1
/// ReqWrite   ↦ Entry StartWrite: BEGIN
/// StartWrite ↦ Entry StartWrite: <state> := …
/// EndWrite   ↦ Entry EndWrite  : <state> := 0
/// ```
///
/// plus, for `with_data` programs, the user events and the shared-data
/// `Getval`/`Assign`/init mappings.
pub fn rw_correspondence(
    sys: &MonitorSystem,
    problem: &Specification,
    with_data: bool,
) -> Correspondence {
    let ps = problem.structure();
    let control_name = if with_data { "db.control" } else { "control" };
    let control = ps.element(control_name).expect("control element");
    let cls = |n: &str| ps.class(n).unwrap_or_else(|| panic!("class {n}"));
    let sv = state_var(&sys.program().monitor);
    let assign_in = |entry: &str, var: &str| {
        EventSel::of_class(sys.class("Assign"))
            .at(sys.var_element(var))
            .with_param(1, entry)
    };
    // The StartWrite/EndWrite state variable differs between monitors.
    let (sw_var, ew_var) = if sv == "readernum" {
        ("readernum", "readernum")
    } else {
        ("writing", "writing")
    };
    let mut corr = Correspondence::new()
        .map(
            EventSel::of_class(sys.class("Begin")).at(sys.entry_element("StartRead")),
            control,
            cls("ReqRead"),
        )
        .map(assign_in("StartRead", sv), control, cls("StartRead"))
        .map(assign_in("EndRead", sv), control, cls("EndRead"))
        .map(
            EventSel::of_class(sys.class("Begin")).at(sys.entry_element("StartWrite")),
            control,
            cls("ReqWrite"),
        )
        .map(assign_in("StartWrite", sw_var), control, cls("StartWrite"))
        .map(assign_in("EndWrite", ew_var), control, cls("EndWrite"));
    if with_data {
        let data = ps.element("db.data").expect("data element");
        for (user_cls, _) in [
            ("Read", 0),
            ("FinishRead", 0),
            ("Write", 0),
            ("FinishWrite", 0),
        ] {
            // User events keep their class, mapped per user element.
            for (pid, p) in sys.program().processes.iter().enumerate() {
                let target = ps
                    .element(&p.name)
                    .unwrap_or_else(|| panic!("user element {}", p.name));
                corr = corr.map(
                    EventSel::of_class(sys.class(user_cls)).at(sys.user_element(pid)),
                    target,
                    cls(user_cls),
                );
            }
        }
        corr = corr
            .map_with_params(
                EventSel::of_class(sys.class("Getval")).at(sys.var_element("data")),
                data,
                cls("Getval"),
                &[(0, 0)],
            )
            .map_with_params(
                EventSel::of_class(sys.class("Assign"))
                    .at(sys.var_element("data"))
                    .with_param(1, ""),
                data,
                cls("DataAssign"),
                &[(0, 0)],
            )
            .map_with_params(
                EventSel::of_class(sys.class("Assign"))
                    .at(sys.var_element("data"))
                    .with_param(1, "init"),
                data,
                cls("DataInit"),
                &[(0, 0)],
            );
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::monitor::readers_writers_monitor;
    use gem_lang::Explorer;
    use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};

    fn verify(
        monitor: MonitorDef,
        readers: usize,
        writers: usize,
        with_data: bool,
        variant: RwVariant,
    ) -> gem_verify::VerifyOutcome {
        let sys = rw_program(monitor, readers, writers, with_data);
        let problem = rw_spec(readers + writers, with_data, variant);
        let corr = rw_correspondence(&sys, &problem, with_data);
        verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent")
    }

    #[test]
    fn mutex_holds_with_data_1r1w() {
        let outcome = verify(readers_writers_monitor(), 1, 1, true, RwVariant::MutexOnly);
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn mutex_holds_control_only_2r1w() {
        let outcome = verify(readers_writers_monitor(), 2, 1, false, RwVariant::MutexOnly);
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn readers_priority_holds_on_paper_monitor() {
        // §9's claim, machine-checked over every schedule of 1R+2W.
        let outcome = verify(
            readers_writers_monitor(),
            1,
            2,
            false,
            RwVariant::ReadersPriority,
        );
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn writers_priority_fails_on_paper_monitor() {
        // Negative control: the readers-priority monitor violates the
        // writers-priority spec.
        let outcome = verify(
            readers_writers_monitor(),
            1,
            2,
            false,
            RwVariant::WritersPriority,
        );
        assert!(
            !outcome.ok(),
            "paper monitor must not give writers priority"
        );
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.violated.iter().any(|v| v == "writers-priority")));
    }

    #[test]
    fn writers_priority_holds_on_writers_monitor() {
        let outcome = verify(
            writers_priority_monitor(),
            2,
            1,
            false,
            RwVariant::WritersPriority,
        );
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn readers_priority_fails_on_writers_monitor() {
        let outcome = verify(
            writers_priority_monitor(),
            1,
            2,
            false,
            RwVariant::ReadersPriority,
        );
        assert!(
            !outcome.ok(),
            "writers-priority monitor must not give readers priority"
        );
    }

    #[test]
    fn progress_holds_on_both_monitors() {
        for monitor in [readers_writers_monitor(), writers_priority_monitor()] {
            let outcome = verify(monitor, 1, 1, false, RwVariant::Progress);
            assert!(outcome.ok(), "{outcome}");
        }
    }

    #[test]
    fn fcfs_fails_on_paper_monitor() {
        // Readers-priority deliberately reorders pending requests.
        let outcome = verify(readers_writers_monitor(), 1, 2, false, RwVariant::Fcfs);
        assert!(!outcome.ok());
    }

    #[test]
    fn no_deadlock_either_monitor() {
        for monitor in [readers_writers_monitor(), writers_priority_monitor()] {
            let sys = rw_program(monitor, 2, 1, false);
            assert!(assert_no_deadlock(&sys, &Explorer::default()).is_ok());
        }
    }

    #[test]
    fn threads_label_transactions_uniquely() {
        // E10: thread inference on the projected computation labels each
        // transaction with a fresh instance passed along its chain.
        use gem_spec::check_thread_tags;
        use gem_verify::project;
        use std::ops::ControlFlow;
        let sys = rw_program(readers_writers_monitor(), 1, 1, true);
        let problem = rw_spec(2, true, RwVariant::MutexOnly);
        let corr = rw_correspondence(&sys, &problem, true);
        let mut checked = 0;
        Explorer::with_max_runs(25).for_each_run(&sys, |state, _| {
            let c = sys.computation(state).unwrap();
            let p = project(&c, problem.structure_arc(), &corr).unwrap();
            let tagged = problem.assign_threads(&p);
            for spec in problem.threads() {
                let violations = check_thread_tags(&tagged, spec);
                assert!(violations.is_empty(), "{violations:?}");
            }
            // Every significant event except the data initialization
            // belongs to exactly one transaction.
            let init_cls = problem.structure().class("DataInit").unwrap();
            for e in tagged.events() {
                if e.class() == init_cls {
                    assert!(e.threads().is_empty());
                    continue;
                }
                assert_eq!(
                    e.threads().len(),
                    1,
                    "event {} should carry exactly one πRW tag",
                    e.id()
                );
            }
            checked += 1;
            ControlFlow::Continue(())
        });
        assert!(checked > 0);
    }

    #[test]
    fn hoare_mesa_ablation() {
        use gem_lang::monitor::SignalSemantics;
        let verify_sem = |monitor: MonitorDef, semantics| {
            let sys = rw_program_with_semantics(monitor, 1, 2, false, semantics);
            let problem = rw_spec(3, false, RwVariant::MutexOnly);
            let corr = rw_correspondence(&sys, &problem, false);
            verify_system(
                &sys,
                &problem,
                &corr,
                |s| sys.computation(s).expect("acyclic"),
                &VerifyOptions::default(),
            )
            .expect("correspondence consistent")
        };
        // The paper's IF-based monitor is correct under Hoare semantics …
        assert!(verify_sem(readers_writers_monitor(), SignalSemantics::Hoare).ok());
        // … but under Mesa, a new writer can overtake the signalled
        // reader, whose un-rechecked IF then lets it read during a write.
        let mesa = verify_sem(readers_writers_monitor(), SignalSemantics::Mesa);
        assert!(!mesa.ok(), "IF-based waits are unsound under Mesa: {mesa}");
        // The WHILE-based variant is correct under both disciplines.
        assert!(verify_sem(mesa_safe_readers_writers_monitor(), SignalSemantics::Hoare).ok());
        let fixed = verify_sem(mesa_safe_readers_writers_monitor(), SignalSemantics::Mesa);
        assert!(fixed.ok(), "{fixed}");
    }

    #[test]
    fn mesa_runs_are_deadlock_free() {
        use gem_lang::monitor::SignalSemantics;
        let sys = rw_program_with_semantics(
            mesa_safe_readers_writers_monitor(),
            2,
            1,
            false,
            SignalSemantics::Mesa,
        );
        assert!(assert_no_deadlock(&sys, &Explorer::default()).is_ok());
    }

    #[test]
    fn rounds_program_multiplies_schedules_and_stays_correct() {
        // One round is the plain control-only program; more rounds blow
        // the schedule space up but still satisfy mutual exclusion.
        let sys1 = rw_rounds_program(readers_writers_monitor(), 1, 1, 1);
        let sys2 = rw_rounds_program(readers_writers_monitor(), 1, 1, 2);
        use std::ops::ControlFlow;
        let runs = |sys: &MonitorSystem| {
            Explorer::default()
                .for_each_run(sys, |_, _| ControlFlow::Continue(()))
                .runs
        };
        let (r1, r2) = (runs(&sys1), runs(&sys2));
        assert!(r2 > r1, "rounds=2 must enlarge the space: {r1} vs {r2}");

        let problem = rw_spec(2, false, RwVariant::MutexOnly);
        let corr = rw_correspondence(&sys2, &problem, false);
        let outcome = verify_system(
            &sys2,
            &problem,
            &corr,
            |s| sys2.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
    }

    #[test]
    fn all_variants_constructible() {
        for v in RwVariant::ALL {
            let spec = rw_spec(2, false, v);
            assert!(spec.restrictions().len() >= 4);
            let spec_full = rw_spec(2, true, v);
            assert!(spec_full.restrictions().len() >= 6);
        }
    }
}
