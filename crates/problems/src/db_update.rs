//! The distributed database update problem (§1, §11 — the paper's first
//! distributed application, citing a distributed-update algorithm).
//!
//! The cited algorithm is not reproduced verbatim in the paper, so this
//! module implements the class of algorithm it refers to (see DESIGN.md,
//! "Substitutions"): a **primary-copy update propagation** scheme over
//! synchronous messages. Clients submit updates to a coordinator site;
//! the coordinator serializes them (accepting in any arrival order via a
//! guarded alternative) and propagates each update to every replica;
//! replicas apply updates in the order received.
//!
//! The GEM problem specification has an `order` element (the global
//! serialization: `Order(val)` events) and one `site[i]` element per
//! replica (`Apply(val)` events), restricted by:
//!
//! * `applied-everywhere` — the `k`-th ordered update is applied at every
//!   site (the paper's functional-correctness claim);
//! * `applied-in-order` — the `k`-th application at each site carries the
//!   `k`-th ordered value (agreement between sites follows);
//! * `causality` — an update is applied only after it was ordered
//!   (`order^k ⇒ site_i^k`).

use gem_logic::{EventSel, EventTerm, Formula, ValueTerm};
use gem_spec::{ElementType, GroupType, SpecBuilder, Specification};
use gem_verify::Correspondence;

use gem_lang::csp::{AltBranch, Comm, CspProcess, CspProgram, CspStmt, CspSystem};
use gem_lang::Expr;

/// The distributed-update problem specification for `sites` replicas and
/// `updates` submitted updates.
pub fn db_update_spec(sites: usize, updates: usize) -> Specification {
    let order_t = ElementType::new("UpdateOrder").event("Order", &["val"]);
    let site_t = ElementType::new("ReplicaSite").event("Apply", &["val"]);
    let db_t = GroupType::new("DistributedDB")
        .element_member("order", order_t)
        .element_set("site", site_t)
        .port("order", "Order")
        .port("site", "Apply");
    let mut sb = SpecBuilder::new("DistributedUpdate");
    let db = sb
        .instantiate_group(&db_t, "db", &[("site", sites)])
        .expect("fresh spec");
    let order_el = db.element("order").id();
    let site_els: Vec<_> = db.elements("site").iter().map(|e| e.id()).collect();

    let mut everywhere = Vec::new();
    let mut in_order = Vec::new();
    let mut causality = Vec::new();
    for k in 0..updates {
        let ord_k = EventTerm::NthAt(order_el, k);
        for &site in &site_els {
            let app_k = EventTerm::NthAt(site, k);
            everywhere
                .push(Formula::occurred(ord_k.clone()).implies(Formula::occurred(app_k.clone())));
            in_order.push(Formula::occurred(app_k.clone()).implies(Formula::value_eq(
                ValueTerm::param(ord_k.clone(), "val"),
                ValueTerm::param(app_k.clone(), "val"),
            )));
            causality.push(
                Formula::occurred(app_k.clone())
                    .implies(Formula::precedes(ord_k.clone(), app_k.clone())),
            );
        }
    }
    sb.add_restriction("applied-everywhere", Formula::And(everywhere));
    sb.add_restriction("applied-in-order", Formula::And(in_order));
    sb.add_restriction("causality", Formula::And(causality));
    sb.finish()
}

/// Builds the primary-copy CSP implementation: `n_clients` clients each
/// submitting one update value, a coordinator serializing them, and
/// `sites` replicas applying them.
///
/// Update values are `100 + client_index`, so every update is unique and
/// traceable.
pub fn db_update_program(n_clients: usize, sites: usize) -> CspSystem {
    let mut prog = CspProgram::new();
    for c in 0..n_clients {
        prog = prog.process(CspProcess::new(
            format!("client{c}"),
            vec![CspStmt::send("coord", Expr::int(100 + c as i64))],
        ));
    }
    // Coordinator: one round per update — accept from any client, record
    // the serialization in `cur`, broadcast to every replica.
    let mut coord_body = Vec::new();
    for _ in 0..n_clients {
        let branches = (0..n_clients)
            .map(|c| AltBranch {
                guard: None,
                comm: Comm::Recv {
                    from: format!("client{c}"),
                    var: "cur".into(),
                },
                body: vec![],
            })
            .collect();
        coord_body.push(CspStmt::Alt(branches));
        for r in 0..sites {
            coord_body.push(CspStmt::send(format!("replica{r}"), Expr::var("cur")));
        }
    }
    prog = prog.process(CspProcess::new("coord", coord_body).local("cur", 0i64));
    // Replicas: apply each received update to the local db, and fold it
    // into a base-1000 log for the functional test.
    for r in 0..sites {
        let mut body = Vec::new();
        for _ in 0..n_clients {
            body.push(CspStmt::recv("coord", "u"));
            body.push(CspStmt::assign("db", Expr::var("u")));
            body.push(CspStmt::assign(
                "log",
                Expr::var("log").mul(Expr::int(1000)).add(Expr::var("u")),
            ));
        }
        prog = prog.process(
            CspProcess::new(format!("replica{r}"), body)
                .local("u", 0i64)
                .local("db", 0i64)
                .local("log", 0i64),
        );
    }
    CspSystem::new(prog)
}

/// The significant objects: the coordinator's receive completions are the
/// `Order` events; each replica's `db` assignments are its `Apply`
/// events.
pub fn db_update_correspondence(
    sys: &CspSystem,
    problem: &Specification,
    sites: usize,
) -> Correspondence {
    let ps = problem.structure();
    let order_el = ps.element("db.order").expect("order element");
    let order_cls = ps.class("Order").expect("Order class");
    let apply_cls = ps.class("Apply").expect("Apply class");
    let coord = sys.program().process_index("coord").expect("coord");
    let mut corr = Correspondence::new().map_with_params(
        EventSel::of_class(sys.class("InEnd")).at(sys.in_element(coord)),
        order_el,
        order_cls,
        &[(0, 0)],
    );
    for r in 0..sites {
        let site_el = ps.element(&format!("db.site[{r}]")).expect("site element");
        let var_el = sys
            .structure()
            .element(&format!("replica{r}.var.db"))
            .expect("db var");
        corr = corr.map_with_params(
            EventSel::of_class(sys.class("Assign")).at(var_el),
            site_el,
            apply_cls,
            &[(0, 0)],
        );
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::Value;
    use gem_lang::{Explorer, System};
    use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};
    use std::ops::ControlFlow;

    const CLIENTS: usize = 3;
    const SITES: usize = 2;

    #[test]
    fn spec_shape() {
        let spec = db_update_spec(SITES, CLIENTS);
        assert_eq!(spec.restrictions().len(), 3);
    }

    #[test]
    fn satisfies_spec_on_all_schedules() {
        let sys = db_update_program(CLIENTS, SITES);
        let problem = db_update_spec(SITES, CLIENTS);
        let corr = db_update_correspondence(&sys, &problem, SITES);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
        assert!(outcome.exhaustive());
        assert!(outcome.runs >= 6, "3 clients: at least 3! arrival orders");
    }

    #[test]
    fn no_deadlock() {
        // The paper's claim: lack of deadlock, over every schedule.
        let sys = db_update_program(CLIENTS, SITES);
        assert!(assert_no_deadlock(&sys, &Explorer::default()).is_ok());
    }

    #[test]
    fn replicas_converge_on_every_schedule() {
        // Functional correctness: all replicas end with identical logs,
        // and the log reflects some permutation of all submitted updates.
        let sys = db_update_program(CLIENTS, SITES);
        let coord = sys.program().process_index("coord").unwrap();
        let replicas: Vec<usize> = (0..SITES)
            .map(|r| sys.program().process_index(&format!("replica{r}")).unwrap())
            .collect();
        let _ = coord;
        let mut final_logs = std::collections::HashSet::new();
        Explorer::default().for_each_run(&sys, |state, _| {
            assert!(sys.is_complete(state));
            let logs: Vec<Value> = replicas
                .iter()
                .map(|&r| state.local(r, "log").cloned().expect("log var"))
                .collect();
            assert!(
                logs.windows(2).all(|w| w[0] == w[1]),
                "replicas disagree: {logs:?}"
            );
            // Log digits decode to a permutation of {100, 101, 102}.
            let mut v = logs[0].as_int().unwrap();
            let mut seen = Vec::new();
            for _ in 0..CLIENTS {
                seen.push(v % 1000);
                v /= 1000;
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![100, 101, 102]);
            final_logs.insert(logs[0].clone());
            ControlFlow::Continue(())
        });
        assert_eq!(
            final_logs.len(),
            6,
            "all 3! serialization orders are reachable"
        );
    }

    #[test]
    fn broken_propagation_fails_spec() {
        // A coordinator that skips the second replica: applied-everywhere
        // must fail.
        let mut prog = CspProgram::new();
        for c in 0..2 {
            prog = prog.process(CspProcess::new(
                format!("client{c}"),
                vec![CspStmt::send("coord", Expr::int(100 + c as i64))],
            ));
        }
        let mut coord_body = Vec::new();
        for _ in 0..2 {
            coord_body.push(CspStmt::Alt(
                (0..2)
                    .map(|c| AltBranch {
                        guard: None,
                        comm: Comm::Recv {
                            from: format!("client{c}"),
                            var: "cur".into(),
                        },
                        body: vec![],
                    })
                    .collect(),
            ));
            coord_body.push(CspStmt::send("replica0", Expr::var("cur")));
            // replica1 never hears about it.
        }
        prog = prog.process(CspProcess::new("coord", coord_body).local("cur", 0i64));
        prog = prog.process(
            CspProcess::new(
                "replica0",
                vec![
                    CspStmt::recv("coord", "u"),
                    CspStmt::assign("db", Expr::var("u")),
                    CspStmt::recv("coord", "u"),
                    CspStmt::assign("db", Expr::var("u")),
                ],
            )
            .local("u", 0i64)
            .local("db", 0i64),
        );
        prog = prog.process(CspProcess::new("replica1", vec![]).local("db", 0i64));
        // replica1 needs a db var element for the correspondence; declare
        // it by giving the process the local even though it never writes.
        let sys = CspSystem::new(prog);
        let problem = db_update_spec(2, 2);
        let corr = db_update_correspondence(&sys, &problem, 2);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions::default(),
        )
        .expect("correspondence consistent");
        assert!(!outcome.ok());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.violated.iter().any(|v| v == "applied-everywhere")));
    }
}
