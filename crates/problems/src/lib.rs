//! # gem-problems — the paper's problem library
//!
//! GEM specifications and verified solutions for every problem the paper
//! reports (§1, §11): the One-Slot Buffer, the Bounded Buffer, five
//! versions of the Readers/Writers problem (with the §9 monitor), a
//! distributed database update algorithm, and an asynchronous Game of
//! Life. Each module provides the problem [`Specification`], one or more
//! solutions on the `gem-lang` substrates, and the significant-object
//! [`Correspondence`] used to verify `PROG sat P`.
//!
//! [`Specification`]: gem_spec::Specification
//! [`Correspondence`]: gem_verify::Correspondence

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod db_update;
pub mod life;
pub mod one_slot;
pub mod philosophers;
pub mod readers_writers;
