//! Dining philosophers — an *extension* beyond the paper's problem list,
//! demonstrating the toolkit on the canonical deadlock example.
//!
//! Forks are ADA tasks serving `PickUp`/`PutDown` by rendezvous;
//! philosophers are tasks that acquire both neighbouring forks, eat, and
//! release. Two acquisition disciplines:
//!
//! * [`ForkOrder::Naive`] — everyone picks the left fork first. The
//!   circular wait deadlocks on some schedules, and the explorer produces
//!   the witness.
//! * [`ForkOrder::Asymmetric`] — the last philosopher picks the right
//!   fork first (the classic repair): verified deadlock-free.
//!
//! The GEM specification has one element per philosopher with an
//! `Eat` event, restricted by neighbour exclusion — adjacent
//! philosophers' eats are never potentially concurrent (they share a
//! fork) — while non-adjacent philosophers *may* eat concurrently
//! (checked as a sanity property of the model, not a restriction).

use gem_logic::{EventSel, Formula};
use gem_spec::{ElementType, SpecBuilder, Specification};
use gem_verify::Correspondence;

use gem_lang::ada::{AdaProgram, AdaStmt, AdaSystem, AdaTask};
use gem_lang::Expr;

/// Fork-acquisition discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForkOrder {
    /// All philosophers take the left fork first (deadlocks).
    Naive,
    /// The last philosopher takes the right fork first (deadlock-free).
    Asymmetric,
}

/// The problem specification for `n` philosophers at a round table:
/// `neighbour-exclusion` — adjacent philosophers never eat concurrently.
pub fn philosophers_spec(n: usize) -> Specification {
    assert!(n >= 2, "a table needs at least two philosophers");
    let phil_t = ElementType::new("Philosopher").event("Eat", &[]);
    let mut sb = SpecBuilder::new("DiningPhilosophers");
    let phils: Vec<_> = (0..n)
        .map(|i| {
            sb.instantiate_element(&phil_t, format!("phil{i}"))
                .expect("fresh philosopher")
        })
        .collect();
    let mut exclusion = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        if i == j {
            continue;
        }
        exclusion.push(Formula::forall(
            "a",
            phils[i].sel("Eat"),
            Formula::forall(
                "b",
                phils[j].sel("Eat"),
                Formula::concurrent("a", "b").not(),
            ),
        ));
    }
    sb.add_restriction("neighbour-exclusion", Formula::And(exclusion));
    sb.finish()
}

/// Builds the ADA implementation: `n` fork tasks and `n` philosopher
/// tasks, each eating `meals` times under the given discipline.
pub fn philosophers_program(n: usize, meals: usize, order: ForkOrder) -> AdaSystem {
    assert!(n >= 2);
    let mut prog = AdaProgram::new();
    for f in 0..n {
        // A fork alternates PickUp / PutDown, `meals * 2` times (each of
        // its two neighbours may use it up to `meals` times).
        let uses = meals * 2;
        let mut body = Vec::new();
        for _ in 0..uses {
            body.push(AdaStmt::accept("PickUp", vec![]));
            body.push(AdaStmt::accept("PutDown", vec![]));
        }
        prog = prog.task(
            AdaTask::new(format!("fork{f}"), body)
                .entry("PickUp")
                .entry("PutDown"),
        );
    }
    for p in 0..n {
        let left = p;
        let right = (p + 1) % n;
        let (first, second) = match order {
            ForkOrder::Naive => (left, right),
            ForkOrder::Asymmetric if p == n - 1 => (right, left),
            ForkOrder::Asymmetric => (left, right),
        };
        let mut body = Vec::new();
        for _ in 0..meals {
            body.push(AdaStmt::call(format!("fork{first}"), "PickUp", vec![]));
            body.push(AdaStmt::call(format!("fork{second}"), "PickUp", vec![]));
            body.push(AdaStmt::assign(
                "meals",
                Expr::var("meals").add(Expr::int(1)),
            ));
            body.push(AdaStmt::call(format!("fork{first}"), "PutDown", vec![]));
            body.push(AdaStmt::call(format!("fork{second}"), "PutDown", vec![]));
        }
        prog = prog.task(AdaTask::new(format!("phil{p}"), body).local("meals", 0i64));
    }
    AdaSystem::new(prog)
}

/// Significant objects: each philosopher's `meals` increment (made while
/// holding both forks) is its `Eat` event.
pub fn philosophers_correspondence(
    sys: &AdaSystem,
    problem: &Specification,
    n: usize,
) -> Correspondence {
    let ps = problem.structure();
    let eat = ps.class("Eat").expect("Eat class");
    let mut corr = Correspondence::new();
    for p in 0..n {
        let target = ps.element(&format!("phil{p}")).expect("phil element");
        let var_el = sys
            .structure()
            .element(&format!("phil{p}.var.meals"))
            .expect("meals var");
        corr = corr.map(
            EventSel::of_class(sys.class("Assign")).at(var_el),
            target,
            eat,
        );
    }
    corr
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_lang::find_deadlock;
    use gem_lang::Explorer;
    use gem_verify::{assert_no_deadlock, verify_system, VerifyOptions};

    const N: usize = 3;

    /// Deadlock is a state property, so control-state pruning is sound
    /// and keeps the sweeps fast.
    fn pruned() -> Explorer {
        Explorer {
            prune: true,
            ..Explorer::default()
        }
    }

    #[test]
    fn naive_order_deadlocks() {
        let sys = philosophers_program(N, 1, ForkOrder::Naive);
        let witness = find_deadlock(&sys, &pruned());
        assert!(witness.is_some(), "circular wait must be found");
    }

    #[test]
    fn asymmetric_order_deadlock_free() {
        let sys = philosophers_program(N, 1, ForkOrder::Asymmetric);
        assert!(assert_no_deadlock(&sys, &pruned()).is_ok());
    }

    #[test]
    fn asymmetric_satisfies_neighbour_exclusion() {
        let sys = philosophers_program(N, 1, ForkOrder::Asymmetric);
        let problem = philosophers_spec(N);
        let corr = philosophers_correspondence(&sys, &problem, N);
        let outcome = verify_system(
            &sys,
            &problem,
            &corr,
            |s| sys.computation(s).expect("acyclic"),
            &VerifyOptions {
                explorer: Explorer::with_max_runs(300),
                ..VerifyOptions::default()
            },
        )
        .expect("correspondence consistent");
        assert!(outcome.ok(), "{outcome}");
    }

    #[test]
    fn non_adjacent_eats_can_be_concurrent() {
        // Sanity: with 4 philosophers, opposite pairs may genuinely eat
        // at the same time in some schedule. DFS-order schedules are
        // near-sequential, so sample random schedules instead.
        use rand::SeedableRng;
        let n = 4;
        let sys = philosophers_program(n, 1, ForkOrder::Asymmetric);
        let problem = philosophers_spec(n);
        let corr = philosophers_correspondence(&sys, &problem, n);
        let explorer = Explorer::default();
        let mut found = false;
        for seed in 0..64u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (state, _) = explorer.random_run(&sys, &mut rng);
            let c = sys.computation(&state).expect("acyclic");
            let p = gem_verify::project(&c, problem.structure_arc(), &corr).unwrap();
            let ps = problem.structure();
            let e0 = p.events_at(ps.element("phil0").unwrap()).first().copied();
            let e2 = p.events_at(ps.element("phil2").unwrap()).first().copied();
            if let (Some(a), Some(b)) = (e0, e2) {
                if p.concurrent(a, b) {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "opposite philosophers can eat concurrently");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_table_rejected() {
        let _ = philosophers_spec(1);
    }
}
