//! # gem-cli — command-line interface to the GEM reproduction
//!
//! ```text
//! gem render <problem>           print the specification in paper notation
//! gem verify <problem>           run PROG sat P over all schedules
//! gem explore <problem>          count schedules / deadlocks
//! gem dot <problem>              emit one schedule's computation as Graphviz
//! gem list                       list the available problems
//! ```
//!
//! Problems (with optional `key=value` parameters after the name):
//!
//! | name | parameters (defaults) |
//! |------|------------------------|
//! | `one-slot` | `items=3` |
//! | `bounded` | `items=4 cap=2 substrate=monitor\|csp\|ada` |
//! | `rw` | `readers=1 writers=2 variant=mutex\|readers\|writers\|fcfs\|progress monitor=readers\|writers\|mesa-safe semantics=hoare\|mesa data=false` |
//! | `db-update` | `clients=3 sites=2` |
//! | `life` | `grid=block\|blinker gens=2` |
//! | `philosophers` | `n=3 meals=1 order=naive\|asymmetric` |
//!
//! Observability flags (accepted anywhere on the command line, either
//! `--flag value` or `--flag=value`; see `docs/OBSERVABILITY.md`):
//!
//! * `--stats` — print a counter/timer table to stderr after the command
//! * `--stats-json <path>` — write the same report as deterministic JSON
//! * `--trace <path>` — stream every probe event as JSONL
//! * `--heartbeat <secs>` — progress line cadence on stderr (default 5;
//!   0 disables)
//! * `--jobs <n>` — explorer worker threads (default 1, 0 = auto)
//! * `--dedup` — deduplicate trace-equivalent computations in
//!   `verify`/`explore` sweeps (same results, less checking work; see
//!   `docs/PERFORMANCE.md`)
//!
//! The command dispatch lives in this library so it can be tested; the
//! `gem` binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Duration;

use gem_lang::monitor::readers_writers_monitor;
use gem_lang::monitor::SignalSemantics;
use gem_lang::{Explorer, System};
use gem_obs::{FanoutProbe, HeartbeatProbe, NoopProbe, Probe, Span, StatsProbe, TraceProbe};
use gem_problems::readers_writers::{
    mesa_safe_readers_writers_monitor, rw_correspondence, rw_program_with_semantics,
    rw_rounds_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem_problems::{bounded, db_update, life, one_slot};
use gem_spec::{render_specification, Specification};
use gem_verify::{verify_system, Correspondence, VerifyOptions, VerifyOutcome};

/// A CLI usage or execution error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `key=value` parameters.
#[derive(Clone, Debug, Default)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// Parses trailing `key=value` arguments.
    ///
    /// # Errors
    ///
    /// Returns an error for arguments without `=`.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut map = BTreeMap::new();
        for a in args {
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got {a:?}")))?;
            map.insert(k.to_owned(), v.to_owned());
        }
        Ok(Self(map))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{key} must be a number, got {v:?}"))),
        }
    }

    fn str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.0.get(key).map(String::as_str).unwrap_or(default)
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{key} must be true/false, got {v:?}"))),
        }
    }
}

/// A problem instance resolvable to a spec + system + correspondence.
#[allow(clippy::large_enum_variant)] // one short-lived instance per invocation
enum Instance {
    Monitor {
        sys: gem_lang::monitor::MonitorSystem,
        spec: Specification,
        corr: Correspondence,
    },
    Csp {
        sys: gem_lang::csp::CspSystem,
        spec: Specification,
        corr: Correspondence,
        max_runs: usize,
    },
    Ada {
        sys: gem_lang::ada::AdaSystem,
        spec: Specification,
        corr: Correspondence,
        max_runs: usize,
    },
}

fn parse_rw_variant(s: &str) -> Result<RwVariant, CliError> {
    Ok(match s {
        "mutex" => RwVariant::MutexOnly,
        "readers" => RwVariant::ReadersPriority,
        "writers" => RwVariant::WritersPriority,
        "fcfs" => RwVariant::Fcfs,
        "progress" => RwVariant::Progress,
        other => return Err(err(format!("unknown variant {other:?}"))),
    })
}

fn instance(problem: &str, p: &Params) -> Result<Instance, CliError> {
    match problem {
        "one-slot" => {
            let n = p.usize("items", 3)?;
            let items: Vec<i64> = (1..=n as i64).map(|i| i * 10).collect();
            let spec = one_slot::one_slot_spec();
            match p.str("substrate", "monitor") {
                "monitor" => {
                    let sys = one_slot::monitor_solution(&items);
                    let corr = one_slot::monitor_correspondence(&sys, &spec);
                    Ok(Instance::Monitor { sys, spec, corr })
                }
                "csp" => {
                    let sys = one_slot::csp_solution(&items);
                    let corr = one_slot::csp_correspondence(&sys, &spec);
                    Ok(Instance::Csp {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                "ada" => {
                    let sys = one_slot::ada_solution(&items);
                    let corr = one_slot::ada_correspondence(&sys, &spec);
                    Ok(Instance::Ada {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                other => Err(err(format!("unknown substrate {other:?}"))),
            }
        }
        "bounded" => {
            let n = p.usize("items", 4)?;
            let cap = p.usize("cap", 2)?;
            let items: Vec<i64> = (1..=n as i64).collect();
            let spec = bounded::bounded_spec(items.len(), cap);
            match p.str("substrate", "monitor") {
                "monitor" => {
                    let sys = bounded::monitor_solution(&items, cap);
                    let corr = bounded::monitor_correspondence(&sys, &spec, cap);
                    Ok(Instance::Monitor { sys, spec, corr })
                }
                "csp" => {
                    let sys = bounded::csp_solution(&items, cap);
                    let corr = bounded::csp_correspondence(&sys, &spec, cap);
                    Ok(Instance::Csp {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                "ada" => {
                    let sys = bounded::ada_solution(&items, cap);
                    let corr = bounded::ada_correspondence(&sys, &spec, cap);
                    Ok(Instance::Ada {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                other => Err(err(format!("unknown substrate {other:?}"))),
            }
        }
        "rw" => {
            let readers = p.usize("readers", 1)?;
            let writers = p.usize("writers", 2)?;
            let rounds = p.usize("rounds", 1)?;
            let with_data = p.bool("data", false)?;
            let variant = parse_rw_variant(p.str("variant", "readers"))?;
            let monitor = match p.str("monitor", "readers") {
                "readers" => readers_writers_monitor(),
                "writers" => writers_priority_monitor(),
                "mesa-safe" => mesa_safe_readers_writers_monitor(),
                other => return Err(err(format!("unknown monitor {other:?}"))),
            };
            let semantics = match p.str("semantics", "hoare") {
                "hoare" => SignalSemantics::Hoare,
                "mesa" => SignalSemantics::Mesa,
                other => return Err(err(format!("unknown semantics {other:?}"))),
            };
            let sys = if rounds > 1 {
                // Multi-round transactions are control-only: the bigger
                // instance exists for schedule-space scale, not data flow.
                if with_data {
                    return Err(err("rounds > 1 requires data=false"));
                }
                if semantics != SignalSemantics::Hoare {
                    return Err(err("rounds > 1 requires semantics=hoare"));
                }
                rw_rounds_program(monitor, readers, writers, rounds)
            } else {
                rw_program_with_semantics(monitor, readers, writers, with_data, semantics)
            };
            let spec = rw_spec(readers + writers, with_data, variant);
            let corr = rw_correspondence(&sys, &spec, with_data);
            Ok(Instance::Monitor { sys, spec, corr })
        }
        "db-update" => {
            let clients = p.usize("clients", 3)?;
            let sites = p.usize("sites", 2)?;
            let sys = db_update::db_update_program(clients, sites);
            let spec = db_update::db_update_spec(sites, clients);
            let corr = db_update::db_update_correspondence(&sys, &spec, sites);
            Ok(Instance::Csp {
                sys,
                spec,
                corr,
                max_runs: 1_000_000,
            })
        }
        "philosophers" => {
            let n = p.usize("n", 3)?;
            let meals = p.usize("meals", 1)?;
            let order = match p.str("order", "asymmetric") {
                "naive" => gem_problems::philosophers::ForkOrder::Naive,
                "asymmetric" => gem_problems::philosophers::ForkOrder::Asymmetric,
                other => return Err(err(format!("unknown order {other:?}"))),
            };
            let sys = gem_problems::philosophers::philosophers_program(n, meals, order);
            let spec = gem_problems::philosophers::philosophers_spec(n);
            let corr = gem_problems::philosophers::philosophers_correspondence(&sys, &spec, n);
            Ok(Instance::Ada {
                sys,
                spec,
                corr,
                max_runs: 20_000,
            })
        }
        "life" => {
            let gens = p.usize("gens", 2)?;
            let grid = match p.str("grid", "block") {
                "block" => life::block(),
                "blinker" => life::blinker(),
                other => return Err(err(format!("unknown grid {other:?}"))),
            };
            let sys = life::life_program(&grid, gens);
            let spec = life::life_spec(&grid, gens);
            let corr = life::life_correspondence(&sys, &spec, &grid);
            Ok(Instance::Csp {
                sys,
                spec,
                corr,
                max_runs: 50, // life's schedule space is astronomical
            })
        }
        other => Err(err(format!("unknown problem {other:?}; try `gem list`"))),
    }
}

/// The problems `gem list` reports.
pub const PROBLEMS: [&str; 6] = [
    "one-slot",
    "bounded",
    "rw",
    "db-update",
    "life",
    "philosophers",
];

/// Observability and exploration flags, stripped from the raw argument
/// list before command dispatch.
#[derive(Clone, Debug, Default)]
struct ObsFlags {
    stats: bool,
    stats_json: Option<String>,
    trace: Option<String>,
    heartbeat: Option<f64>,
    jobs: Option<usize>,
    dedup: bool,
}

/// Splits `--stats` / `--stats-json` / `--trace` / `--heartbeat` /
/// `--jobs` / `--dedup` (either `--flag value` or `--flag=value`) out of
/// `args`, leaving positional arguments and `key=value` parameters
/// untouched.
fn split_flags(args: &[String]) -> Result<(Vec<String>, ObsFlags), CliError> {
    let mut flags = ObsFlags::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_owned())),
            _ => (arg.as_str(), None),
        };
        let mut value = |flag: &str| -> Result<String, CliError> {
            if let Some(v) = inline.clone() {
                return Ok(v);
            }
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| err(format!("{flag} needs a value")))
        };
        match name {
            "--stats" => {
                if inline.is_some() {
                    return Err(err("--stats takes no value"));
                }
                flags.stats = true;
            }
            "--stats-json" => flags.stats_json = Some(value("--stats-json")?),
            "--jobs" => {
                let v = value("--jobs")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| err(format!("--jobs must be a thread count, got {v:?}")))?;
                flags.jobs = Some(jobs);
            }
            "--dedup" => {
                if inline.is_some() {
                    return Err(err("--dedup takes no value"));
                }
                flags.dedup = true;
            }
            "--trace" => flags.trace = Some(value("--trace")?),
            "--heartbeat" => {
                let v = value("--heartbeat")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| err(format!("--heartbeat must be seconds, got {v:?}")))?;
                if secs.is_nan() || secs < 0.0 {
                    return Err(err(format!("--heartbeat must be >= 0, got {v:?}")));
                }
                flags.heartbeat = Some(secs);
            }
            "--help" => rest.push(arg.clone()),
            _ if name.starts_with("--") => {
                return Err(err(format!("unknown flag {name:?}\n{}", usage())))
            }
            _ => rest.push(arg.clone()),
        }
        i += 1;
    }
    Ok((rest, flags))
}

/// The probe sinks a command line asked for. Held separately from the
/// composed probe so the stats sink can be read back after the command.
struct ObsSetup {
    probe: Arc<dyn Probe>,
    stats_sink: Option<Arc<StatsProbe>>,
    trace_sink: Option<Arc<TraceProbe>>,
}

fn obs_setup(flags: &ObsFlags) -> Result<ObsSetup, CliError> {
    let stats_sink = if flags.stats || flags.stats_json.is_some() {
        Some(Arc::new(StatsProbe::new()))
    } else {
        None
    };
    let trace_sink = match &flags.trace {
        Some(path) => {
            Some(Arc::new(TraceProbe::create(path).map_err(|e| {
                err(format!("cannot create trace file {path:?}: {e}"))
            })?))
        }
        None => None,
    };
    let heartbeat_secs = flags.heartbeat.unwrap_or(5.0);
    let mut sinks: Vec<Arc<dyn Probe>> = Vec::new();
    if let Some(s) = &stats_sink {
        sinks.push(s.clone());
    }
    if let Some(t) = &trace_sink {
        sinks.push(t.clone());
    }
    if heartbeat_secs > 0.0 {
        sinks.push(Arc::new(HeartbeatProbe::new(Duration::from_secs_f64(
            heartbeat_secs,
        ))));
    }
    let probe: Arc<dyn Probe> = match sinks.len() {
        0 => Arc::new(NoopProbe),
        1 => sinks.pop().expect("len checked"),
        _ => Arc::new(FanoutProbe::new(sinks)),
    };
    Ok(ObsSetup {
        probe,
        stats_sink,
        trace_sink,
    })
}

fn format_outcome(outcome: &VerifyOutcome) -> String {
    let verdict = if outcome.ok() { "HOLDS" } else { "FAILS" };
    format!(
        "{outcome}\nverdict: PROG sat P {verdict}{}",
        if outcome.exhaustive() {
            " (all schedules)"
        } else {
            " (bounded exploration)"
        }
    )
}

/// Executes a command line (without the leading program name), returning
/// the text to print.
///
/// Observability flags (`--stats`, `--stats-json <path>`,
/// `--trace <path>`, `--heartbeat <secs>`) are accepted anywhere among
/// the arguments; stats tables and heartbeats go to stderr so stdout
/// stays machine-consumable.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands/problems, bad parameters, or
/// unwritable stats/trace files.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, flags) = split_flags(args)?;
    let obs = obs_setup(&flags)?;
    let result = {
        let _total = Span::enter(obs.probe.as_ref(), "total");
        dispatch(&args, &obs.probe, flags.jobs.unwrap_or(1), flags.dedup)
    };
    // Reports are emitted even when the command failed: a truncated or
    // failing sweep's counters are exactly what one wants to inspect.
    if let Some(stats) = &obs.stats_sink {
        let mut report = stats.report();
        if let Some(cmd) = args.first() {
            report.meta.insert("command".to_owned(), cmd.clone());
        }
        if let Some(problem) = args.get(1) {
            report.meta.insert("problem".to_owned(), problem.clone());
        }
        if args.len() > 2 {
            report.meta.insert("params".to_owned(), args[2..].join(" "));
        }
        if flags.stats {
            eprintln!("{report}");
        }
        if let Some(path) = &flags.stats_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| err(format!("cannot write stats to {path:?}: {e}")))?;
        }
    }
    if let Some(trace) = &obs.trace_sink {
        trace.flush();
    }
    result
}

fn dispatch(
    args: &[String],
    probe: &Arc<dyn Probe>,
    jobs: usize,
    dedup: bool,
) -> Result<String, CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| err(usage()))?;
    match cmd.as_str() {
        "list" => Ok(PROBLEMS.join("\n")),
        "render" | "verify" | "explore" | "dot" | "deadlock" => {
            let (problem, params) = rest
                .split_first()
                .ok_or_else(|| err(format!("{cmd} needs a problem name; try `gem list`")))?;
            let params = Params::parse(params)?;
            let inst = instance(problem, &params)?;
            match cmd.as_str() {
                "render" => {
                    let spec = match &inst {
                        Instance::Monitor { spec, .. }
                        | Instance::Csp { spec, .. }
                        | Instance::Ada { spec, .. } => spec,
                    };
                    Ok(render_specification(spec))
                }
                "verify" => {
                    let options = |max_runs: usize| VerifyOptions {
                        explorer: Explorer {
                            jobs,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        },
                        probe: probe.clone(),
                        ..VerifyOptions::default()
                    };
                    let outcome = match &inst {
                        Instance::Monitor { sys, spec, corr } => verify_system(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(1_000_000),
                        ),
                        Instance::Csp {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_system(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                        ),
                        Instance::Ada {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_system(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                        ),
                    }
                    .map_err(|e| err(format!("projection failed: {e}")))?;
                    Ok(format_outcome(&outcome))
                }
                "explore" => {
                    fn explore<S>(
                        sys: &S,
                        extract: impl Fn(&S::State) -> gem_core::Computation,
                        max_runs: usize,
                        probe: &Arc<dyn Probe>,
                        jobs: usize,
                        dedup: bool,
                    ) -> String
                    where
                        S: System + Sync,
                        S::State: Send,
                        S::Action: Send,
                    {
                        let _ambient = probe
                            .enabled()
                            .then(|| gem_obs::ambient::install(probe.clone()));
                        let mut deadlocks = 0usize;
                        let mut seen = std::collections::HashSet::new();
                        let (mut hits, mut misses) = (0u64, 0u64);
                        let explorer = Explorer {
                            jobs,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        };
                        let mut stats =
                            explorer.par_for_each_run_probed(sys, probe.as_ref(), |state, _| {
                                if !sys.is_complete(state) {
                                    deadlocks += 1;
                                }
                                if dedup {
                                    if seen.insert(gem_verify::canonical_key(&extract(state))) {
                                        misses += 1;
                                    } else {
                                        hits += 1;
                                    }
                                }
                                ControlFlow::Continue(())
                            });
                        probe.add("verify.deadlocks", deadlocks as u64);
                        let mut dedup_note = String::new();
                        if dedup {
                            stats.dedup_hits = hits as usize;
                            stats.dedup_misses = misses as usize;
                            probe.add("explore.dedup.hits", hits);
                            probe.add("explore.dedup.misses", misses);
                            dedup_note = format!("  distinct computations: {}", seen.len());
                        }
                        format!(
                            "schedules: {}{}  steps: {}  deadlocks: {deadlocks}{dedup_note}",
                            stats.runs,
                            if stats.truncated() {
                                "+ (truncated)"
                            } else {
                                ""
                            },
                            stats.steps,
                        )
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            1_000_000,
                            probe,
                            jobs,
                            dedup,
                        ),
                        Instance::Csp { sys, max_runs, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            *max_runs,
                            probe,
                            jobs,
                            dedup,
                        ),
                        Instance::Ada { sys, max_runs, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            *max_runs,
                            probe,
                            jobs,
                            dedup,
                        ),
                    })
                }
                "deadlock" => {
                    // Deadlock is a state property, so control-state
                    // pruning is sound — and necessary, since DFS order
                    // visits near-sequential schedules first.
                    fn hunt<S>(sys: &S) -> String
                    where
                        S: System + Sync,
                        S::State: Send,
                        S::Action: Send,
                    {
                        // The parallel explorer falls back to this serial
                        // path for pruned searches, so `jobs` is moot.
                        let explorer = Explorer {
                            prune: true,
                            ..Explorer::default()
                        };
                        match gem_lang::find_deadlock(sys, &explorer) {
                            Some(path) => {
                                format!("DEADLOCK after {} action(s):\n{path:#?}", path.len())
                            }
                            None => "no deadlock (pruned state search)".to_owned(),
                        }
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => hunt(sys),
                        Instance::Csp { sys, .. } => hunt(sys),
                        Instance::Ada { sys, .. } => hunt(sys),
                    })
                }
                "dot" => {
                    fn first_dot<S: System>(
                        sys: &S,
                        extract: impl Fn(&S::State) -> gem_core::Computation,
                    ) -> String {
                        let mut out = String::new();
                        Explorer::with_max_runs(1).for_each_run(sys, |state, _| {
                            out = gem_core::to_dot(&extract(state));
                            ControlFlow::Break(())
                        });
                        out
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                        Instance::Csp { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                        Instance::Ada { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                    })
                }
                _ => unreachable!(),
            }
        }
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command {other:?}\n{}", usage()))),
    }
}

/// The usage string.
pub fn usage() -> String {
    "usage: gem <command> [problem] [key=value ...] [flags]\n\
     commands:\n\
     \x20 list                       list available problems\n\
     \x20 render <problem> [params]  print the GEM specification\n\
     \x20 verify <problem> [params]  check PROG sat P over all schedules\n\
     \x20 explore <problem> [params] count schedules and deadlocks\n\
     \x20 deadlock <problem> [params] hunt for a deadlock (pruned search)\n\
     \x20 dot <problem> [params]     emit one computation as Graphviz dot\n\
     flags (allowed anywhere on the command line):\n\
     \x20 --stats                    print an instrumentation table to stderr\n\
     \x20 --stats-json <path>        write the run report as deterministic JSON\n\
     \x20 --trace <path>             stream probe events as JSON lines\n\
     \x20 --heartbeat <secs>         progress line interval (default 5, 0 = off)\n\
     \x20 --jobs <n>                 explorer worker threads (default 1, 0 = auto);\n\
     \x20                            results are identical for every n\n\
     \x20 --dedup                    check each distinct computation once and\n\
     \x20                            replay the verdict on trace-equivalent runs;\n\
     \x20                            results are identical with or without it\n\
     problems: one-slot, bounded, rw, db-update, life, philosophers\n\
     examples:\n\
     \x20 gem verify rw readers=1 writers=2 variant=readers\n\
     \x20 gem explore rw readers=2 writers=2 rounds=2 --jobs 4\n\
     \x20 gem verify bounded items=4 cap=2 substrate=csp --stats\n\
     \x20 gem render rw data=true"
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run(&owned)
    }

    #[test]
    fn list_and_help() {
        let out = runv(&["list"]).unwrap();
        for p in PROBLEMS {
            assert!(out.contains(p));
        }
        assert!(runv(&["help"]).unwrap().contains("usage"));
        assert!(runv(&[]).is_err());
        assert!(runv(&["bogus"]).is_err());
    }

    #[test]
    fn render_rw() {
        let out = runv(&["render", "rw", "data=true"]).unwrap();
        assert!(out.contains("SPECIFICATION RWProblem-ReadersPriority"));
        assert!(out.contains("db.control = ELEMENT"));
    }

    #[test]
    fn verify_one_slot_monitor_holds() {
        let out = runv(&["verify", "one-slot", "items=2"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn verify_rw_writers_priority_fails_on_readers_monitor() {
        let out = runv(&["verify", "rw", "readers=1", "writers=2", "variant=writers"]).unwrap();
        assert!(out.contains("FAILS"), "{out}");
    }

    #[test]
    fn explore_counts_schedules() {
        let out = runv(&["explore", "rw", "readers=1", "writers=1"]).unwrap();
        assert!(out.contains("schedules:"), "{out}");
        assert!(out.contains("deadlocks: 0"), "{out}");
    }

    #[test]
    fn dot_emits_graph() {
        let out = runv(&["dot", "one-slot", "items=1"]).unwrap();
        assert!(out.starts_with("digraph gem"));
    }

    #[test]
    fn mesa_ablation_via_cli() {
        let out = runv(&["verify", "rw", "variant=mutex", "semantics=mesa"]).unwrap();
        assert!(out.contains("FAILS"), "IF-based monitor under Mesa: {out}");
        let out = runv(&[
            "verify",
            "rw",
            "variant=mutex",
            "semantics=mesa",
            "monitor=mesa-safe",
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn bad_params_reported() {
        assert!(runv(&["verify", "rw", "readers=abc"]).is_err());
        assert!(runv(&["verify", "rw", "variant=nope"]).is_err());
        assert!(runv(&["verify", "one-slot", "substrate=nope"]).is_err());
        assert!(runv(&["verify", "nope"]).is_err());
        assert!(runv(&["verify", "rw", "noequals"]).is_err());
        assert!(runv(&["verify"]).is_err());
    }

    #[test]
    fn philosophers_deadlock_command() {
        let out = runv(&["deadlock", "philosophers", "n=3", "order=naive"]).unwrap();
        assert!(out.contains("DEADLOCK"), "{out}");
        let out = runv(&["deadlock", "philosophers", "n=3", "order=asymmetric"]).unwrap();
        assert!(out.contains("no deadlock"), "{out}");
    }

    #[test]
    fn csp_substrate_selectable() {
        let out = runv(&["verify", "bounded", "items=2", "cap=1", "substrate=csp"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let out = runv(&["verify", "one-slot", "items=2", "substrate=ada"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn obs_flags_are_stripped_anywhere() {
        // A flag between positional args must not disturb dispatch.
        let out = runv(&["verify", "--heartbeat", "0", "one-slot", "items=2"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let out = runv(&["--stats", "explore", "rw", "readers=1", "writers=1"]).unwrap();
        assert!(out.contains("schedules:"), "{out}");
    }

    #[test]
    fn stats_json_writes_report() {
        let dir = std::env::temp_dir().join("gem-cli-test-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one-slot.json");
        let path_s = path.to_str().unwrap().to_owned();
        let out = run(&[
            "verify".to_owned(),
            "one-slot".to_owned(),
            "items=2".to_owned(),
            format!("--stats-json={path_s}"),
            "--heartbeat=0".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"explore.runs\""), "{json}");
        assert!(json.contains("\"explore.steps\""), "{json}");
        assert!(json.contains("\"explore.prune.hits\""), "{json}");
        assert!(json.contains("\"verify.deadlocks\""), "{json}");
        assert!(json.contains("\"restriction.evals\""), "{json}");
        assert!(json.contains("\"total\""), "{json}"); // wall-time span
        assert!(json.contains("\"command\": \"verify\""), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_flag_writes_events() {
        let dir = std::env::temp_dir().join("gem-cli-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_s = path.to_str().unwrap().to_owned();
        runv(&[
            "explore",
            "one-slot",
            "items=2",
            "--trace",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.lines().count() > 0);
        assert!(trace.contains("explore.runs"), "{trace}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_flags_reported() {
        assert!(runv(&["verify", "one-slot", "--bogus"]).is_err());
        assert!(runv(&["verify", "one-slot", "--stats-json"]).is_err());
        assert!(runv(&["verify", "one-slot", "--heartbeat", "abc"]).is_err());
        assert!(runv(&["verify", "one-slot", "--heartbeat", "-1"]).is_err());
        assert!(runv(&["verify", "one-slot", "--stats=yes"]).is_err());
        assert!(runv(&["verify", "one-slot", "--dedup=yes"]).is_err());
    }

    #[test]
    fn dedup_flag_preserves_verdicts() {
        let plain = runv(&["verify", "one-slot", "items=2"]).unwrap();
        let deduped = runv(&["verify", "one-slot", "items=2", "--dedup"]).unwrap();
        assert_eq!(plain, deduped);
        let plain = runv(&["verify", "rw", "readers=1", "writers=2", "variant=writers"]).unwrap();
        let deduped = runv(&[
            "verify",
            "rw",
            "readers=1",
            "writers=2",
            "variant=writers",
            "--dedup",
        ])
        .unwrap();
        assert_eq!(plain, deduped);
        assert!(deduped.contains("FAILS"), "{deduped}");
    }

    #[test]
    fn explore_dedup_counts_distinct_computations() {
        let out = runv(&["explore", "rw", "readers=1", "writers=1", "--dedup"]).unwrap();
        assert!(out.contains("distinct computations:"), "{out}");
    }
}
