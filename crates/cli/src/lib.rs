//! # gem-cli — command-line interface to the GEM reproduction
//!
//! ```text
//! gem render <problem>           print the specification in paper notation
//! gem verify <problem>           run PROG sat P over all schedules
//! gem explore <problem>          count schedules / deadlocks
//! gem profile <problem>          verify + phase-attribution table + verdicts
//! gem top <problem>              verify with a live sweep dashboard on stderr
//! gem dot <problem>              emit one schedule's computation as Graphviz
//! gem list                       list the available problems
//! gem replay <dir>               reproduce a recorded counterexample artifact
//! gem bench-diff <old> <new>     compare two benchmark reports, gate regressions
//! gem metrics-lint <file>        validate an OpenMetrics exposition file
//! ```
//!
//! Problems (with optional `key=value` parameters after the name):
//!
//! | name | parameters (defaults) |
//! |------|------------------------|
//! | `one-slot` | `items=3` |
//! | `bounded` | `items=4 cap=2 substrate=monitor\|csp\|ada` |
//! | `rw` | `readers=1 writers=2 variant=mutex\|readers\|writers\|fcfs\|progress monitor=readers\|writers\|mesa-safe semantics=hoare\|mesa data=false` |
//! | `db-update` | `clients=3 sites=2` |
//! | `life` | `grid=block\|blinker gens=2` |
//! | `philosophers` | `n=3 meals=1 order=naive\|asymmetric` |
//!
//! Observability flags (accepted anywhere on the command line, either
//! `--flag value` or `--flag=value`; see `docs/OBSERVABILITY.md`):
//!
//! * `--stats` — print a counter/timer table to stderr after the command
//! * `--stats-json <path>` — write the same report as deterministic JSON
//! * `--trace <path>` — stream every probe event as JSONL
//! * `--heartbeat <secs>` — progress line cadence on stderr (default 5;
//!   0 disables)
//! * `--jobs <n>` — explorer worker threads (default 1, 0 = auto)
//! * `--por` — sleep-set partial-order reduction (one schedule per
//!   computation, same verdict)
//! * `--dedup` — deduplicate trace-equivalent computations in
//!   `verify`/`explore` sweeps (same results, less checking work; see
//!   `docs/PERFORMANCE.md`)
//! * `--incr-check auto|on|off` — incremental restriction checking along
//!   the DFS tree (default `auto`; same verdicts in every mode, see
//!   `docs/PERFORMANCE.md` §6)
//! * `--artifacts <dir>` — on `verify`, dump the first failing or
//!   deadlocked run as a self-contained counterexample artifact directory
//!   (schedule, computation, blame, highlighted dot), and arm a flight
//!   recorder that dumps `<dir>/crash.json` if the process panics
//! * `--recorder-cap <n>` — flight-recorder events kept per thread
//!   (default 256; also settable via `GEM_RECORDER_CAP`)
//! * `--trace-out <path>` — write a Chrome-trace (`chrome://tracing` /
//!   Perfetto) JSON of timer spans and counter totals
//! * `--metrics-out <path>` — sample cumulative counters/gauges once a
//!   second during the sweep and write an OpenMetrics text exposition
//!   (plus a `<path>.json` time-series) when the command finishes
//! * `--explain` — append reduction cost/benefit verdicts (dedup
//!   measured/predicted, POR attribution, incremental-check coverage)
//!   after the command output
//! * `--json <path>` — on `bench-diff`, also write the comparison as
//!   machine-readable JSON
//!
//! The command dispatch lives in this library so it can be tested; the
//! `gem` binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use gem_lang::monitor::readers_writers_monitor;
use gem_lang::monitor::SignalSemantics;
use gem_lang::{CompileMode, Explorer, System};
use gem_obs::json::JsonValue;
use gem_obs::{
    fingerprint_words, install_crash_sink, write_atomic, ChromeTraceProbe, CollapseEstimator,
    FanoutProbe, HeartbeatProbe, KnuthEstimator, NoopProbe, PhaseProfile, Probe, RecorderProbe,
    SeriesProbe, Span, StatsProbe, TraceProbe,
};
use gem_problems::readers_writers::{
    mesa_safe_readers_writers_monitor, rw_correspondence, rw_program_with_semantics,
    rw_rounds_program, rw_spec, writers_priority_monitor, RwVariant,
};
use gem_problems::{bounded, db_update, life, one_slot};
use gem_spec::{render_specification, Specification};
use gem_verify::auto::{self, StrategyDecision};
use gem_verify::{
    canonical_key, check_computation, sample_evidence, verify_system, ArtifactSink, Correspondence,
    IncrCheck, ProjectError, RunFailure, VerifyOptions, VerifyOutcome,
};

/// A CLI usage or execution error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `key=value` parameters.
#[derive(Clone, Debug, Default)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// Parses trailing `key=value` arguments.
    ///
    /// # Errors
    ///
    /// Returns an error for arguments without `=`.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut map = BTreeMap::new();
        for a in args {
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got {a:?}")))?;
            map.insert(k.to_owned(), v.to_owned());
        }
        Ok(Self(map))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{key} must be a number, got {v:?}"))),
        }
    }

    fn str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.0.get(key).map(String::as_str).unwrap_or(default)
    }

    fn f64(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{key} must be a number, got {v:?}"))),
        }
    }

    fn bool(&self, key: &str, default: bool) -> Result<bool, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{key} must be true/false, got {v:?}"))),
        }
    }
}

/// A problem instance resolvable to a spec + system + correspondence.
#[allow(clippy::large_enum_variant)] // one short-lived instance per invocation
enum Instance {
    Monitor {
        sys: gem_lang::monitor::MonitorSystem,
        spec: Specification,
        corr: Correspondence,
    },
    Csp {
        sys: gem_lang::csp::CspSystem,
        spec: Specification,
        corr: Correspondence,
        max_runs: usize,
    },
    Ada {
        sys: gem_lang::ada::AdaSystem,
        spec: Specification,
        corr: Correspondence,
        max_runs: usize,
    },
}

fn parse_rw_variant(s: &str) -> Result<RwVariant, CliError> {
    Ok(match s {
        "mutex" => RwVariant::MutexOnly,
        "readers" => RwVariant::ReadersPriority,
        "writers" => RwVariant::WritersPriority,
        "fcfs" => RwVariant::Fcfs,
        "progress" => RwVariant::Progress,
        other => return Err(err(format!("unknown variant {other:?}"))),
    })
}

fn instance(problem: &str, p: &Params) -> Result<Instance, CliError> {
    match problem {
        "one-slot" => {
            let n = p.usize("items", 3)?;
            let items: Vec<i64> = (1..=n as i64).map(|i| i * 10).collect();
            let spec = one_slot::one_slot_spec();
            match p.str("substrate", "monitor") {
                "monitor" => {
                    let sys = one_slot::monitor_solution(&items);
                    let corr = one_slot::monitor_correspondence(&sys, &spec);
                    Ok(Instance::Monitor { sys, spec, corr })
                }
                "csp" => {
                    let sys = one_slot::csp_solution(&items);
                    let corr = one_slot::csp_correspondence(&sys, &spec);
                    Ok(Instance::Csp {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                "ada" => {
                    let sys = one_slot::ada_solution(&items);
                    let corr = one_slot::ada_correspondence(&sys, &spec);
                    Ok(Instance::Ada {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                other => Err(err(format!("unknown substrate {other:?}"))),
            }
        }
        "bounded" => {
            let n = p.usize("items", 4)?;
            let cap = p.usize("cap", 2)?;
            let items: Vec<i64> = (1..=n as i64).collect();
            let spec = bounded::bounded_spec(items.len(), cap);
            match p.str("substrate", "monitor") {
                "monitor" => {
                    let sys = bounded::monitor_solution(&items, cap);
                    let corr = bounded::monitor_correspondence(&sys, &spec, cap);
                    Ok(Instance::Monitor { sys, spec, corr })
                }
                "csp" => {
                    let sys = bounded::csp_solution(&items, cap);
                    let corr = bounded::csp_correspondence(&sys, &spec, cap);
                    Ok(Instance::Csp {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                "ada" => {
                    let sys = bounded::ada_solution(&items, cap);
                    let corr = bounded::ada_correspondence(&sys, &spec, cap);
                    Ok(Instance::Ada {
                        sys,
                        spec,
                        corr,
                        max_runs: 1_000_000,
                    })
                }
                other => Err(err(format!("unknown substrate {other:?}"))),
            }
        }
        "rw" => {
            let readers = p.usize("readers", 1)?;
            let writers = p.usize("writers", 2)?;
            let rounds = p.usize("rounds", 1)?;
            let with_data = p.bool("data", false)?;
            let variant = parse_rw_variant(p.str("variant", "readers"))?;
            let monitor = match p.str("monitor", "readers") {
                "readers" => readers_writers_monitor(),
                "writers" => writers_priority_monitor(),
                "mesa-safe" => mesa_safe_readers_writers_monitor(),
                other => return Err(err(format!("unknown monitor {other:?}"))),
            };
            let semantics = match p.str("semantics", "hoare") {
                "hoare" => SignalSemantics::Hoare,
                "mesa" => SignalSemantics::Mesa,
                other => return Err(err(format!("unknown semantics {other:?}"))),
            };
            let sys = if rounds > 1 {
                // Multi-round transactions are control-only: the bigger
                // instance exists for schedule-space scale, not data flow.
                if with_data {
                    return Err(err("rounds > 1 requires data=false"));
                }
                if semantics != SignalSemantics::Hoare {
                    return Err(err("rounds > 1 requires semantics=hoare"));
                }
                rw_rounds_program(monitor, readers, writers, rounds)
            } else {
                rw_program_with_semantics(monitor, readers, writers, with_data, semantics)
            };
            let spec = rw_spec(readers + writers, with_data, variant);
            let corr = rw_correspondence(&sys, &spec, with_data);
            Ok(Instance::Monitor { sys, spec, corr })
        }
        "db-update" => {
            let clients = p.usize("clients", 3)?;
            let sites = p.usize("sites", 2)?;
            let sys = db_update::db_update_program(clients, sites);
            let spec = db_update::db_update_spec(sites, clients);
            let corr = db_update::db_update_correspondence(&sys, &spec, sites);
            Ok(Instance::Csp {
                sys,
                spec,
                corr,
                max_runs: 1_000_000,
            })
        }
        "philosophers" => {
            let n = p.usize("n", 3)?;
            let meals = p.usize("meals", 1)?;
            let order = match p.str("order", "asymmetric") {
                "naive" => gem_problems::philosophers::ForkOrder::Naive,
                "asymmetric" => gem_problems::philosophers::ForkOrder::Asymmetric,
                other => return Err(err(format!("unknown order {other:?}"))),
            };
            let sys = gem_problems::philosophers::philosophers_program(n, meals, order);
            let spec = gem_problems::philosophers::philosophers_spec(n);
            let corr = gem_problems::philosophers::philosophers_correspondence(&sys, &spec, n);
            Ok(Instance::Ada {
                sys,
                spec,
                corr,
                max_runs: 20_000,
            })
        }
        "life" => {
            let gens = p.usize("gens", 2)?;
            let grid = match p.str("grid", "block") {
                "block" => life::block(),
                "blinker" => life::blinker(),
                other => return Err(err(format!("unknown grid {other:?}"))),
            };
            let sys = life::life_program(&grid, gens);
            let spec = life::life_spec(&grid, gens);
            let corr = life::life_correspondence(&sys, &spec, &grid);
            Ok(Instance::Csp {
                sys,
                spec,
                corr,
                max_runs: 50, // life's schedule space is astronomical
            })
        }
        other => Err(err(format!("unknown problem {other:?}; try `gem list`"))),
    }
}

/// The problems `gem list` reports.
pub const PROBLEMS: [&str; 6] = [
    "one-slot",
    "bounded",
    "rw",
    "db-update",
    "life",
    "philosophers",
];

/// Observability and exploration flags, stripped from the raw argument
/// list before command dispatch.
#[derive(Clone, Debug, Default)]
struct ObsFlags {
    stats: bool,
    stats_json: Option<String>,
    trace: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    heartbeat: Option<f64>,
    jobs: Option<usize>,
    dedup: bool,
    por: bool,
    auto: bool,
    incr_check: IncrCheck,
    compile: CompileMode,
    explain: bool,
    artifacts: Option<String>,
    recorder_cap: Option<usize>,
    json_out: Option<String>,
    /// Filled in by `verify --auto`: the sampled decision, carried back
    /// so the stats report's config section can record it.
    strategy: Option<StrategyDecision>,
}

/// Splits `--stats` / `--stats-json` / `--trace` / `--trace-out` /
/// `--heartbeat` / `--jobs` / `--dedup` / `--por` / `--incr-check` /
/// `--compile` / `--explain` / `--artifacts` / `--recorder-cap` / `--json` (either `--flag value`
/// or `--flag=value`) out of `args`, leaving positional arguments and
/// `key=value` parameters untouched.
fn split_flags(args: &[String]) -> Result<(Vec<String>, ObsFlags), CliError> {
    let mut flags = ObsFlags::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) if n.starts_with("--") => (n, Some(v.to_owned())),
            _ => (arg.as_str(), None),
        };
        let mut value = |flag: &str| -> Result<String, CliError> {
            if let Some(v) = inline.clone() {
                return Ok(v);
            }
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| err(format!("{flag} needs a value")))
        };
        match name {
            "--stats" => {
                if inline.is_some() {
                    return Err(err("--stats takes no value"));
                }
                flags.stats = true;
            }
            "--stats-json" => flags.stats_json = Some(value("--stats-json")?),
            "--jobs" => {
                let v = value("--jobs")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| err(format!("--jobs must be a thread count, got {v:?}")))?;
                flags.jobs = Some(jobs);
            }
            "--dedup" => {
                if inline.is_some() {
                    return Err(err("--dedup takes no value"));
                }
                flags.dedup = true;
            }
            "--por" => {
                if inline.is_some() {
                    return Err(err("--por takes no value"));
                }
                flags.por = true;
            }
            "--auto" => {
                if inline.is_some() {
                    return Err(err("--auto takes no value"));
                }
                flags.auto = true;
            }
            "--explain" => {
                if inline.is_some() {
                    return Err(err("--explain takes no value"));
                }
                flags.explain = true;
            }
            "--incr-check" => {
                let v = value("--incr-check")?;
                flags.incr_check = match v.as_str() {
                    "auto" => IncrCheck::Auto,
                    "on" => IncrCheck::On,
                    "off" => IncrCheck::Off,
                    other => {
                        return Err(err(format!(
                            "--incr-check must be auto, on, or off, got {other:?}"
                        )))
                    }
                };
            }
            "--compile" => {
                let v = value("--compile")?;
                flags.compile = match v.as_str() {
                    "auto" => CompileMode::Auto,
                    "on" => CompileMode::On,
                    "off" => CompileMode::Off,
                    other => {
                        return Err(err(format!(
                            "--compile must be auto, on, or off, got {other:?}"
                        )))
                    }
                };
            }
            "--trace" => flags.trace = Some(value("--trace")?),
            "--trace-out" => flags.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => flags.metrics_out = Some(value("--metrics-out")?),
            "--artifacts" => flags.artifacts = Some(value("--artifacts")?),
            "--recorder-cap" => {
                let v = value("--recorder-cap")?;
                let cap: usize = v.parse().map_err(|_| {
                    err(format!("--recorder-cap must be an event count, got {v:?}"))
                })?;
                flags.recorder_cap = Some(cap);
            }
            "--json" => flags.json_out = Some(value("--json")?),
            "--heartbeat" => {
                let v = value("--heartbeat")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| err(format!("--heartbeat must be seconds, got {v:?}")))?;
                if secs.is_nan() || secs < 0.0 {
                    return Err(err(format!("--heartbeat must be >= 0, got {v:?}")));
                }
                flags.heartbeat = Some(secs);
            }
            "--help" => rest.push(arg.clone()),
            _ if name.starts_with("--") => {
                return Err(err(format!("unknown flag {name:?}\n{}", usage())))
            }
            _ => rest.push(arg.clone()),
        }
        i += 1;
    }
    Ok((rest, flags))
}

/// The probe sinks a command line asked for. Held separately from the
/// composed probe so the stats sink can be read back after the command.
struct ObsSetup {
    probe: Arc<dyn Probe>,
    stats_sink: Option<Arc<StatsProbe>>,
    trace_sink: Option<Arc<TraceProbe>>,
    chrome_sink: Option<Arc<ChromeTraceProbe>>,
    heartbeat_sink: Option<Arc<HeartbeatProbe>>,
    series_sink: Option<Arc<SeriesProbe>>,
}

/// Cadence of `--metrics-out` snapshots. Fixed rather than configurable:
/// the ring holds over an hour of history at this rate, and the final
/// unconditional snapshot covers sweeps faster than one interval.
const METRICS_INTERVAL: Duration = Duration::from_secs(1);

/// Probe events kept per thread by the `--artifacts` flight recorder
/// (override with `--recorder-cap` or `GEM_RECORDER_CAP`).
const RECORDER_CAPACITY: usize = 256;

/// Resolves the flight-recorder ring capacity: `--recorder-cap` wins,
/// then the `GEM_RECORDER_CAP` environment variable, then the default.
fn recorder_capacity(flags: &ObsFlags) -> Result<usize, CliError> {
    if let Some(cap) = flags.recorder_cap {
        return Ok(cap);
    }
    match std::env::var("GEM_RECORDER_CAP") {
        Ok(v) => v.parse().map_err(|_| {
            err(format!(
                "GEM_RECORDER_CAP must be an event count, got {v:?}"
            ))
        }),
        Err(_) => Ok(RECORDER_CAPACITY),
    }
}

fn obs_setup(flags: &ObsFlags) -> Result<ObsSetup, CliError> {
    // `--explain` derives its verdicts from the aggregated report, so it
    // implies a stats sink even without `--stats`.
    let stats_sink = if flags.stats || flags.stats_json.is_some() || flags.explain {
        Some(Arc::new(StatsProbe::new()))
    } else {
        None
    };
    let trace_sink = match &flags.trace {
        Some(path) => {
            Some(Arc::new(TraceProbe::create(path).map_err(|e| {
                err(format!("cannot create trace file {path:?}: {e}"))
            })?))
        }
        None => None,
    };
    let chrome_sink = flags
        .trace_out
        .as_ref()
        .map(|_| Arc::new(ChromeTraceProbe::new()));
    let heartbeat_secs = flags.heartbeat.unwrap_or(5.0);
    let heartbeat_sink = (heartbeat_secs > 0.0)
        .then(|| Arc::new(HeartbeatProbe::new(Duration::from_secs_f64(heartbeat_secs))));
    let series_sink = flags
        .metrics_out
        .as_ref()
        .map(|_| Arc::new(SeriesProbe::new(METRICS_INTERVAL)));
    let mut sinks: Vec<Arc<dyn Probe>> = Vec::new();
    if let Some(s) = &stats_sink {
        sinks.push(s.clone());
    }
    if let Some(t) = &trace_sink {
        sinks.push(t.clone());
    }
    if let Some(c) = &chrome_sink {
        sinks.push(c.clone());
    }
    if let Some(h) = &heartbeat_sink {
        sinks.push(h.clone());
    }
    if let Some(s) = &series_sink {
        sinks.push(s.clone());
    }
    // With an artifact directory, arm the flight recorder: the last
    // `--recorder-cap` probe events per thread plus live span stacks are
    // dumped to <dir>/crash.json if the process panics mid-sweep.
    if let Some(dir) = &flags.artifacts {
        std::fs::create_dir_all(dir)
            .map_err(|e| err(format!("cannot create artifact dir {dir:?}: {e}")))?;
        let recorder = Arc::new(RecorderProbe::new(recorder_capacity(flags)?));
        install_crash_sink(recorder.clone(), Path::new(dir).join("crash.json"));
        sinks.push(recorder);
    }
    let probe: Arc<dyn Probe> = match sinks.len() {
        0 => Arc::new(NoopProbe),
        1 => sinks.pop().expect("len checked"),
        _ => Arc::new(FanoutProbe::new(sinks)),
    };
    Ok(ObsSetup {
        probe,
        stats_sink,
        trace_sink,
        chrome_sink,
        heartbeat_sink,
        series_sink,
    })
}

fn format_outcome(outcome: &VerifyOutcome) -> String {
    let verdict = if outcome.ok() { "HOLDS" } else { "FAILS" };
    format!(
        "{outcome}\nverdict: PROG sat P {verdict}{}",
        if outcome.exhaustive() {
            " (all schedules)"
        } else {
            " (bounded exploration)"
        }
    )
}

/// Executes a command line (without the leading program name), returning
/// the text to print.
///
/// Observability flags (`--stats`, `--stats-json <path>`,
/// `--trace <path>`, `--heartbeat <secs>`) are accepted anywhere among
/// the arguments; stats tables and heartbeats go to stderr so stdout
/// stays machine-consumable.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands/problems, bad parameters, or
/// unwritable stats/trace files.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, mut flags) = split_flags(args)?;
    let obs = obs_setup(&flags)?;
    let mut result = {
        let _total = Span::enter(obs.probe.as_ref(), "total");
        dispatch(&args, &obs, &mut flags)
    };
    // The final heartbeat summary always flushes at end-of-sweep, even if
    // the rate limiter swallowed every periodic line.
    if let Some(hb) = &obs.heartbeat_sink {
        hb.finish();
    }
    // Reports are emitted even when the command failed: a truncated or
    // failing sweep's counters are exactly what one wants to inspect.
    if let Some(stats) = &obs.stats_sink {
        let mut report = stats.report();
        if let Some(cmd) = args.first() {
            report.meta.insert("command".to_owned(), cmd.clone());
        }
        if let Some(problem) = args.get(1) {
            report.meta.insert("problem".to_owned(), problem.clone());
        }
        if args.len() > 2 {
            report.meta.insert("params".to_owned(), args[2..].join(" "));
        }
        report.meta.insert(
            "gem_version".to_owned(),
            env!("CARGO_PKG_VERSION").to_owned(),
        );
        // The config section makes the report self-describing: which
        // exploration/reduction switches produced these numbers.
        let flag = |b: bool| if b { "true" } else { "false" }.to_owned();
        report
            .config
            .insert("jobs".to_owned(), flags.jobs.unwrap_or(1).to_string());
        report.config.insert("dedup".to_owned(), flag(flags.dedup));
        report.config.insert("por".to_owned(), flag(flags.por));
        report.config.insert("auto".to_owned(), flag(flags.auto));
        report.config.insert(
            "incr_check".to_owned(),
            match flags.incr_check {
                IncrCheck::Auto => "auto",
                IncrCheck::On => "on",
                IncrCheck::Off => "off",
            }
            .to_owned(),
        );
        report
            .config
            .insert("compile".to_owned(), flags.compile.as_str().to_owned());
        // `verify --auto` records its decision and the full estimator
        // evidence, so a strategy choice is always auditable from the
        // stats report alone.
        if let Some(d) = &flags.strategy {
            let e = &d.evidence;
            report
                .config
                .insert("strategy".to_owned(), d.strategy.name().to_owned());
            report
                .config
                .insert("strategy.reason".to_owned(), d.reason.clone());
            report
                .config
                .insert("strategy.samples".to_owned(), e.samples.to_string());
            report
                .config
                .insert("strategy.est_runs".to_owned(), format!("{:.0}", e.est_runs));
            report.config.insert(
                "strategy.est_distinct".to_owned(),
                e.est_distinct.to_string(),
            );
            report.config.insert(
                "strategy.collapse_ratio".to_owned(),
                format!("{:.2}", e.collapse_ratio),
            );
            report.config.insert(
                "strategy.oracle_grants".to_owned(),
                e.oracle_grants.to_string(),
            );
            report.config.insert(
                "strategy.oracle_queries".to_owned(),
                e.oracle_queries.to_string(),
            );
            // The measured per-run key/check costs are timing data, so
            // they live in the `timers` section (`auto.key` /
            // `auto.check`, recorded by `auto_decide`) rather than
            // here: `config` stays byte-identical across runs.
            report.config.insert(
                "strategy.depth_limited".to_owned(),
                e.depth_limited.to_string(),
            );
            report.config.insert(
                "strategy.incr_supported".to_owned(),
                e.incr_supported.to_string(),
            );
        }
        report.config.insert(
            "heartbeat_secs".to_owned(),
            flags.heartbeat.unwrap_or(5.0).to_string(),
        );
        if flags.artifacts.is_some() {
            report.config.insert(
                "recorder_cap".to_owned(),
                recorder_capacity(&flags)?.to_string(),
            );
        }
        if flags.stats {
            eprintln!("{report}");
        }
        if let Some(path) = &flags.stats_json {
            // Atomic so a concurrent reader (CI collector, file watcher)
            // never observes a truncated report.
            write_atomic(Path::new(path), &report.to_json())
                .map_err(|e| err(format!("cannot write stats to {path:?}: {e}")))?;
        }
        if flags.explain {
            if let Ok(out) = &mut result {
                for line in gem_obs::explain(&report) {
                    out.push('\n');
                    out.push_str(&line);
                }
                if let Some(d) = &flags.strategy {
                    out.push('\n');
                    out.push_str(&format!("auto: chose {} — {}", d.strategy.name(), d.reason));
                }
            }
        }
    }
    if let Some(trace) = &obs.trace_sink {
        trace.flush();
    }
    if let (Some(chrome), Some(path)) = (&obs.chrome_sink, &flags.trace_out) {
        chrome
            .write_to(Path::new(path))
            .map_err(|e| err(format!("cannot write Chrome trace to {path:?}: {e}")))?;
        if chrome.dropped() > 0 {
            eprintln!(
                "trace-out: {} event(s) dropped past the buffer cap",
                chrome.dropped()
            );
        }
    }
    if let (Some(series), Some(path)) = (&obs.series_sink, &flags.metrics_out) {
        // The final snapshot is unconditional, so together with the
        // construction-time baseline every export has >= 2 snapshots —
        // enough for the lint's monotonicity check to bite.
        series.finish();
        let snaps = series.snapshots();
        write_atomic(Path::new(path), &gem_obs::render_openmetrics(&snaps))
            .map_err(|e| err(format!("cannot write metrics to {path:?}: {e}")))?;
        // The same series as a JSON time-series document, for consumers
        // that would rather not parse the text exposition.
        let json_path = format!("{path}.json");
        write_atomic(
            Path::new(&json_path),
            &gem_obs::series_json(series.interval(), &snaps),
        )
        .map_err(|e| err(format!("cannot write metrics to {json_path:?}: {e}")))?;
        if series.dropped() > 0 {
            eprintln!(
                "metrics-out: {} old snapshot(s) fell off the ring",
                series.dropped()
            );
        }
    }
    result
}

fn dispatch(args: &[String], obs: &ObsSetup, flags: &mut ObsFlags) -> Result<String, CliError> {
    let probe = &obs.probe;
    let jobs = flags.jobs.unwrap_or(1);
    let dedup = flags.dedup;
    let (cmd, rest) = args.split_first().ok_or_else(|| err(usage()))?;
    match cmd.as_str() {
        "list" => Ok(PROBLEMS.join("\n")),
        "replay" => {
            let dir = rest
                .first()
                .ok_or_else(|| err("replay needs an artifact directory"))?;
            replay_cmd(Path::new(dir))
        }
        "bench-diff" => bench_diff_cmd(rest, flags.json_out.as_deref()),
        "metrics-lint" => {
            let path = rest.first().ok_or_else(|| {
                err("metrics-lint needs an OpenMetrics file: gem metrics-lint <file>")
            })?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            let s = gem_obs::lint_openmetrics(&text).map_err(|e| err(format!("{path}: {e}")))?;
            Ok(format!(
                "{path}: OK — {} family(ies), {} sample(s), {} snapshot(s)",
                s.families, s.samples, s.snapshots
            ))
        }
        "render" | "verify" | "profile" | "top" | "explore" | "dot" | "deadlock" => {
            let (problem, raw_params) = rest
                .split_first()
                .ok_or_else(|| err(format!("{cmd} needs a problem name; try `gem list`")))?;
            let params = Params::parse(raw_params)?;
            let mut inst = instance(problem, &params)?;
            // Compiled step execution is the default; `--compile off`
            // falls back to the tree-walking interpreter (the
            // differential oracle). Outputs are identical either way.
            let compile_on = flags.compile.enabled();
            let code_stats = match &mut inst {
                Instance::Monitor { sys, .. } => {
                    sys.set_compile(compile_on);
                    sys.code_stats()
                }
                Instance::Csp { sys, .. } => {
                    sys.set_compile(compile_on);
                    sys.code_stats()
                }
                Instance::Ada { sys, .. } => {
                    sys.set_compile(compile_on);
                    sys.code_stats()
                }
            };
            if compile_on {
                probe.add("code.exprs", code_stats.exprs);
                probe.add("code.ops", code_stats.ops);
                probe.add("code.consts", code_stats.consts);
                probe.add("code.programs", code_stats.programs);
                probe.add("code.slots", code_stats.slots);
                // A measured wall-clock value: recorded as a `_ns`
                // histogram (one sample), not a counter, so reports
                // stay deterministic under `without_timings()`.
                probe.record("explore.compile_ns", code_stats.compile_ns);
            }
            let inst = inst;
            match cmd.as_str() {
                "render" => {
                    let spec = match &inst {
                        Instance::Monitor { spec, .. }
                        | Instance::Csp { spec, .. }
                        | Instance::Ada { spec, .. } => spec,
                    };
                    Ok(render_specification(spec))
                }
                "verify" => {
                    // `--auto`: sample the instance first and pick the
                    // reduction strategy from the evidence, overriding
                    // any explicit `--dedup`/`--por`. The decision is
                    // carried back on `flags` so the stats report's
                    // config section records it.
                    if flags.auto {
                        let decision = match &inst {
                            Instance::Monitor { sys, spec, corr } => auto_decide(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                probe.as_ref(),
                            ),
                            Instance::Csp {
                                sys, spec, corr, ..
                            } => auto_decide(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                probe.as_ref(),
                            ),
                            Instance::Ada {
                                sys, spec, corr, ..
                            } => auto_decide(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                probe.as_ref(),
                            ),
                        };
                        flags.dedup = decision.strategy == auto::Strategy::Dedup;
                        flags.por = decision.strategy == auto::Strategy::Por;
                        flags.strategy = Some(decision);
                    }
                    let dedup = flags.dedup;
                    // `meta.json` records exactly what `gem replay` needs
                    // to rebuild this instance.
                    // The recorded schedule is exact either way, but
                    // under `--por` it is one sleep-set *representative*
                    // of its computation, not necessarily the first
                    // failing schedule of the unreduced sweep — `gem
                    // replay` surfaces the flags so a diverging
                    // reproduction can be read in context.
                    let sink = flags.artifacts.as_ref().map(|dir| {
                        ArtifactSink::new(dir)
                            .meta("problem", problem.as_str())
                            .meta("params", raw_params.join(" "))
                            .meta("por", if flags.por { "true" } else { "false" })
                            .meta("dedup", if dedup { "true" } else { "false" })
                    });
                    let options = |max_runs: usize| VerifyOptions {
                        explorer: Explorer {
                            jobs,
                            reduce: flags.por,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        },
                        probe: probe.clone(),
                        artifacts: sink.clone(),
                        incr_check: flags.incr_check,
                        ..VerifyOptions::default()
                    };
                    // Under `--explain`, sample the run tree first so the
                    // report carries search-space estimates (and the
                    // heartbeat can show % explored / ETA).
                    let estimates = flags.explain;
                    let outcome = match &inst {
                        Instance::Monitor { sys, spec, corr } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(1_000_000),
                            estimates,
                        ),
                        Instance::Csp {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                            estimates,
                        ),
                        Instance::Ada {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                            estimates,
                        ),
                    }
                    .map_err(|e| err(format!("projection failed: {e}")))?;
                    let mut out = format_outcome(&outcome);
                    if let Some(d) = &flags.strategy {
                        out.push_str(&format!("\nstrategy: {} (auto)", d.strategy.name()));
                    }
                    if let Some(dir) = &flags.artifacts {
                        out.push_str(&format!("\nartifacts: {dir}"));
                    }
                    Ok(out)
                }
                "profile" => {
                    // A dedicated stats sink so the phase table can be
                    // rendered regardless of `--stats*`; the session's
                    // probe still sees everything through the fanout.
                    let stats = Arc::new(StatsProbe::new());
                    let combined: Arc<dyn Probe> = if probe.enabled() {
                        Arc::new(FanoutProbe::new(vec![
                            stats.clone() as Arc<dyn Probe>,
                            probe.clone(),
                        ]))
                    } else {
                        stats.clone()
                    };
                    let options = |max_runs: usize| VerifyOptions {
                        explorer: Explorer {
                            jobs,
                            reduce: flags.por,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        },
                        probe: combined.clone(),
                        incr_check: flags.incr_check,
                        ..VerifyOptions::default()
                    };
                    let outcome = match &inst {
                        Instance::Monitor { sys, spec, corr } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(1_000_000),
                            true,
                        ),
                        Instance::Csp {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                            true,
                        ),
                        Instance::Ada {
                            sys,
                            spec,
                            corr,
                            max_runs,
                        } => verify_with_estimates(
                            sys,
                            spec,
                            corr,
                            |s| sys.computation(s).expect("acyclic"),
                            &options(*max_runs),
                            true,
                        ),
                    }
                    .map_err(|e| err(format!("projection failed: {e}")))?;
                    let report = stats.report();
                    let mut out = format_outcome(&outcome);
                    out.push_str("\n\n");
                    match PhaseProfile::from_report(&report) {
                        Some(profile) => out.push_str(&profile.render()),
                        None => out.push_str("no phase timers recorded\n"),
                    }
                    let spec = match &inst {
                        Instance::Monitor { spec, .. }
                        | Instance::Csp { spec, .. }
                        | Instance::Ada { spec, .. } => spec,
                    };
                    out.push('\n');
                    out.push_str(&restriction_breakdown(spec, &report));
                    // Only present when the parallel explorer actually
                    // ran with telemetry, i.e. `--jobs > 1` split work
                    // beyond the frontier.
                    if let Some(table) = worker_table(&report) {
                        out.push('\n');
                        out.push_str(&table);
                    }
                    let verdicts = gem_obs::explain(&report);
                    if !verdicts.is_empty() {
                        out.push('\n');
                        for line in verdicts {
                            out.push_str(&line);
                            out.push('\n');
                        }
                    }
                    Ok(out)
                }
                "top" => {
                    // Live single-screen dashboard: a ticker thread
                    // repaints runs/steps rates, progress toward the
                    // sampled search-space estimate, worker utilization
                    // and phase shares on stderr while the verify sweep
                    // runs on this thread. The final frame plus the
                    // verdict is the stdout result, so `gem top` stays
                    // scriptable.
                    let stats = Arc::new(StatsProbe::new());
                    let combined: Arc<dyn Probe> = if probe.enabled() {
                        Arc::new(FanoutProbe::new(vec![
                            stats.clone() as Arc<dyn Probe>,
                            probe.clone(),
                        ]))
                    } else {
                        stats.clone()
                    };
                    let options = |max_runs: usize| VerifyOptions {
                        explorer: Explorer {
                            jobs,
                            reduce: flags.por,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        },
                        probe: combined.clone(),
                        incr_check: flags.incr_check,
                        ..VerifyOptions::default()
                    };
                    // Repaint on the heartbeat cadence (default 1s here:
                    // a dashboard wants to move), 0 still disables.
                    let refresh = flags.heartbeat.unwrap_or(1.0);
                    let started = std::time::Instant::now();
                    let done = std::sync::atomic::AtomicBool::new(false);
                    let outcome = std::thread::scope(|scope| {
                        if refresh > 0.0 {
                            scope.spawn(|| {
                                let tick = Duration::from_millis(50);
                                let mut since = Duration::ZERO;
                                while !done.load(std::sync::atomic::Ordering::Acquire) {
                                    std::thread::sleep(tick);
                                    since += tick;
                                    if since.as_secs_f64() >= refresh {
                                        since = Duration::ZERO;
                                        let frame = render_top(&stats.report(), started.elapsed());
                                        eprint!("\x1b[2J\x1b[H{frame}");
                                    }
                                }
                            });
                        }
                        let outcome = match &inst {
                            Instance::Monitor { sys, spec, corr } => verify_with_estimates(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                &options(1_000_000),
                                true,
                            ),
                            Instance::Csp {
                                sys,
                                spec,
                                corr,
                                max_runs,
                            } => verify_with_estimates(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                &options(*max_runs),
                                true,
                            ),
                            Instance::Ada {
                                sys,
                                spec,
                                corr,
                                max_runs,
                            } => verify_with_estimates(
                                sys,
                                spec,
                                corr,
                                |s| sys.computation(s).expect("acyclic"),
                                &options(*max_runs),
                                true,
                            ),
                        };
                        done.store(true, std::sync::atomic::Ordering::Release);
                        outcome
                    })
                    .map_err(|e| err(format!("projection failed: {e}")))?;
                    let mut out = render_top(&stats.report(), started.elapsed());
                    out.push('\n');
                    out.push_str(&format_outcome(&outcome));
                    Ok(out)
                }
                "explore" => {
                    fn explore<S>(
                        sys: &S,
                        extract: impl Fn(&S::State) -> gem_core::Computation,
                        max_runs: usize,
                        probe: &Arc<dyn Probe>,
                        jobs: usize,
                        dedup: bool,
                        reduce: bool,
                    ) -> String
                    where
                        S: System + Sync,
                        S::State: Send,
                        S::Action: Send,
                    {
                        let _ambient = probe
                            .enabled()
                            .then(|| gem_obs::ambient::install(probe.clone()));
                        let mut deadlocks = 0usize;
                        // Fingerprint-bucketed exact dedup, mirroring
                        // verify_system: the free rolling hash indexes,
                        // the closure-free confirmation key decides.
                        let mut seen: std::collections::HashMap<
                            u64,
                            Vec<gem_verify::CanonicalKey>,
                        > = std::collections::HashMap::new();
                        let (mut hits, mut misses) = (0u64, 0u64);
                        let explorer = Explorer {
                            jobs,
                            reduce,
                            dedup_computations: dedup,
                            ..Explorer::with_max_runs(max_runs)
                        };
                        let mut stats =
                            explorer.par_for_each_run_probed(sys, probe.as_ref(), |state, _| {
                                if !sys.is_complete(state) {
                                    deadlocks += 1;
                                }
                                if dedup {
                                    let comp = extract(state);
                                    let bucket = seen.entry(comp.fingerprint()).or_default();
                                    let key = gem_verify::confirm_key(&comp);
                                    if bucket.contains(&key) {
                                        hits += 1;
                                    } else {
                                        bucket.push(key);
                                        misses += 1;
                                    }
                                }
                                ControlFlow::Continue(())
                            });
                        probe.add("verify.deadlocks", deadlocks as u64);
                        let mut dedup_note = String::new();
                        if dedup {
                            stats.dedup_hits = hits as usize;
                            stats.dedup_misses = misses as usize;
                            probe.add("explore.dedup.hits", hits);
                            probe.add("explore.dedup.misses", misses);
                            dedup_note = format!("  distinct computations: {misses}");
                        }
                        let por_note = if reduce {
                            format!("  slept branches: {}", stats.sleep_skipped)
                        } else {
                            String::new()
                        };
                        format!(
                            "schedules: {}{}  steps: {}  deadlocks: {deadlocks}{dedup_note}{por_note}",
                            stats.runs,
                            if stats.truncated() {
                                "+ (truncated)"
                            } else {
                                ""
                            },
                            stats.steps,
                        )
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            1_000_000,
                            probe,
                            jobs,
                            dedup,
                            flags.por,
                        ),
                        Instance::Csp { sys, max_runs, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            *max_runs,
                            probe,
                            jobs,
                            dedup,
                            flags.por,
                        ),
                        Instance::Ada { sys, max_runs, .. } => explore(
                            sys,
                            |s| sys.computation(s).expect("acyclic"),
                            *max_runs,
                            probe,
                            jobs,
                            dedup,
                            flags.por,
                        ),
                    })
                }
                "deadlock" => {
                    // Deadlock is a state property, so control-state
                    // pruning is sound — and necessary, since DFS order
                    // visits near-sequential schedules first.
                    fn hunt<S>(sys: &S) -> String
                    where
                        S: System + Sync,
                        S::State: Send,
                        S::Action: Send,
                    {
                        // The parallel explorer falls back to this serial
                        // path for pruned searches, so `jobs` is moot.
                        let explorer = Explorer {
                            prune: true,
                            ..Explorer::default()
                        };
                        match gem_lang::find_deadlock(sys, &explorer) {
                            Some(path) => {
                                format!("DEADLOCK after {} action(s):\n{path:#?}", path.len())
                            }
                            None => "no deadlock (pruned state search)".to_owned(),
                        }
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => hunt(sys),
                        Instance::Csp { sys, .. } => hunt(sys),
                        Instance::Ada { sys, .. } => hunt(sys),
                    })
                }
                "dot" => {
                    fn first_dot<S: System>(
                        sys: &S,
                        extract: impl Fn(&S::State) -> gem_core::Computation,
                    ) -> String {
                        let mut out = String::new();
                        Explorer::with_max_runs(1).for_each_run(sys, |state, _| {
                            out = gem_core::to_dot(&extract(state));
                            ControlFlow::Break(())
                        });
                        out
                    }
                    Ok(match &inst {
                        Instance::Monitor { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                        Instance::Csp { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                        Instance::Ada { sys, .. } => {
                            first_dot(sys, |s| sys.computation(s).expect("acyclic"))
                        }
                    })
                }
                _ => unreachable!(),
            }
        }
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command {other:?}\n{}", usage()))),
    }
}

/// Renders nanoseconds with a readable unit for the breakdown table.
fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One worker's attribution totals, parsed back out of the
/// `worker.<k>.*` counters the ordered-commit pool emits.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerRow {
    items: u64,
    leaves: u64,
    steps: u64,
    busy_ns: u64,
    idle_ns: u64,
}

fn worker_rows(report: &gem_obs::Report) -> BTreeMap<usize, WorkerRow> {
    let mut rows: BTreeMap<usize, WorkerRow> = BTreeMap::new();
    for (name, &v) in &report.counters {
        let Some(rest) = name.strip_prefix("worker.") else {
            continue;
        };
        let Some((ordinal, field)) = rest.split_once('.') else {
            continue;
        };
        let Ok(k) = ordinal.parse::<usize>() else {
            continue;
        };
        let row = rows.entry(k).or_default();
        match field {
            "items" => row.items = v,
            "leaves" => row.leaves = v,
            "steps" => row.steps = v,
            "busy_ns" => row.busy_ns = v,
            "idle_ns" => row.idle_ns = v,
            _ => {}
        }
    }
    rows
}

/// Renders the per-worker utilization table (`gem profile` / `gem top`
/// with `--jobs > 1`). Utilization is busy / (busy + idle); a worker's
/// idle time is commit lag — blocked sends while the in-order committer
/// drains earlier work items.
fn worker_table(report: &gem_obs::Report) -> Option<String> {
    let rows = worker_rows(report);
    if rows.is_empty() {
        return None;
    }
    let mut out = format!(
        "{:<8} {:>7} {:>9} {:>9} {:>11} {:>11} {:>5}\n",
        "worker", "items", "leaves", "steps", "busy", "idle", "util"
    );
    for (k, r) in &rows {
        let denom = r.busy_ns + r.idle_ns;
        let util = if denom > 0 {
            r.busy_ns as f64 / denom as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<8} {:>7} {:>9} {:>9} {:>11} {:>11} {util:>4.0}%\n",
            format!("w{k}"),
            r.items,
            r.leaves,
            r.steps,
            human_ns(r.busy_ns),
            human_ns(r.idle_ns)
        ));
    }
    Some(out)
}

/// Renders one `gem top` frame: sweep totals with rates, progress toward
/// the sampled search-space estimate (the `estimate.total_runs` gauge),
/// the per-worker utilization table, and phase shares — all pure
/// functions of the live stats report.
fn render_top(report: &gem_obs::Report, elapsed: Duration) -> String {
    let runs = report.counters.get("explore.runs").copied().unwrap_or(0);
    let steps = report.counters.get("explore.steps").copied().unwrap_or(0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut out = format!(
        "gem top — {:.1}s elapsed\nruns: {runs} ({:.0}/s)  steps: {steps} ({:.0}/s)\n",
        elapsed.as_secs_f64(),
        runs as f64 / secs,
        steps as f64 / secs,
    );
    if let Some(&total) = report.gauges.get("estimate.total_runs") {
        if total > 0 {
            let pct = (runs as f64 / total as f64 * 100.0).min(100.0);
            out.push_str(&format!("progress: {pct:.1}% of ~{total} estimated run(s)"));
            if runs > 0 && total > runs {
                let eta_ns = (total - runs) as f64 / (runs as f64 / secs) * 1e9;
                out.push_str(&format!("  eta: {}", human_ns(eta_ns as u64)));
            }
            out.push('\n');
        }
    }
    if let Some(table) = worker_table(report) {
        out.push('\n');
        out.push_str(&table);
    }
    if let Some(profile) = PhaseProfile::from_report(report) {
        out.push('\n');
        out.push_str(&profile.render());
    }
    out
}

/// Renders the per-restriction check breakdown for `gem profile`: each
/// formula's index and name, its rendered notation, the batch-check time
/// it consumed (`logic.check.by_restriction.*` series), and whether the
/// incremental checker covered it or why it fell back to batch checking.
/// With incremental checking active on a clean sweep the batch columns
/// collapse to zero — that collapse *is* the speedup being attributed.
fn restriction_breakdown(spec: &Specification, report: &gem_obs::Report) -> String {
    let wall = report
        .timers
        .get("verify")
        .or_else(|| report.timers.get("total"))
        .map(|t| t.total_ns)
        .unwrap_or(0);
    let s = spec.structure();
    let mut out = String::from("check breakdown by restriction:\n");
    for (i, r) in spec.restrictions().iter().enumerate() {
        let evals = report
            .counters
            .get(&format!("logic.check.by_restriction.{i}.evals"))
            .copied()
            .unwrap_or(0);
        let ns = report
            .timers
            .get(&format!("logic.check.by_restriction.{i}.ns"))
            .map(|t| t.total_ns)
            .unwrap_or(0);
        let tag =
            if report
                .counters
                .get(&format!("logic.incr.restriction.{}.incremental", r.name))
                .copied()
                .unwrap_or(0)
                > 0
            {
                "incremental".to_owned()
            } else if let Some(reason) = report.counters.keys().find_map(|k| {
                k.strip_prefix(&format!("logic.incr.restriction.{}.fallback.", r.name))
            }) {
                format!("fallback: {reason}")
            } else {
                "batch".to_owned()
            };
        let pct = if wall > 0 {
            ns as f64 * 100.0 / wall as f64
        } else {
            0.0
        };
        let mut rendered = r.formula.render(s);
        if rendered.chars().count() > 64 {
            rendered = rendered.chars().take(63).collect::<String>() + "…";
        }
        out.push_str(&format!(
            "  #{i} {} [{tag}] {evals} batch eval(s), {} ({pct:.1}% of wall)\n      {rendered}\n",
            r.name,
            human_ns(ns),
        ));
    }
    out
}

/// Samples the instance and picks the exploration strategy for
/// `verify --auto` ([`gem_verify::auto`]), posting the evidence on the
/// probe (`auto.*` counters, gauges, and the `auto.key` / `auto.check`
/// cost timers) so heartbeats and stats reports see what the decision
/// was based on. Sampling happens before the `verify` span opens and
/// emits nothing into the phase timers.
fn auto_decide<S, F>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: F,
    probe: &dyn Probe,
) -> StrategyDecision
where
    S: System,
    F: Fn(&S::State) -> gem_core::Computation,
{
    let defaults = VerifyOptions::default();
    let mut evidence = sample_evidence(
        &defaults.explorer,
        sys,
        extract,
        |comp| {
            let _ = check_computation(
                comp,
                spec,
                corr,
                defaults.strategy,
                defaults.check_program_legality,
            );
        },
        auto::AUTO_SAMPLES,
        auto::AUTO_CHECKS,
    );
    // When the spec compiles for incremental checking, the sweep's clean
    // leaves skip batch checks entirely — the chooser must not credit
    // dedup with savings the incremental path already banks.
    evidence.incr_supported =
        !gem_verify::IncrChecker::new(spec, corr, defaults.check_program_legality)
            .global_fallback();
    probe.add("auto.incr_supported", u64::from(evidence.incr_supported));
    probe.add("auto.samples", evidence.samples as u64);
    probe.add("auto.oracle_grants", evidence.oracle_grants);
    probe.add("auto.oracle_queries", evidence.oracle_queries);
    probe.gauge_set("auto.est_runs", evidence.est_runs.round() as u64);
    probe.gauge_set("auto.est_distinct", evidence.est_distinct);
    // Measured costs go to the timer section (the one section report
    // determinism is defined modulo), not to gauges or config.
    probe.time_ns("auto.key", evidence.key_ns);
    probe.time_ns("auto.check", evidence.check_ns);
    auto::choose(evidence)
}

/// Random root-to-leaf walks taken by the pre-sweep estimators.
const ESTIMATE_SAMPLES: u64 = 64;
/// How many sampled computations are also checked, to price a check.
const ESTIMATE_CHECKS: usize = 6;

/// Samples the run tree before a sweep and posts search-space estimates
/// on the probe:
///
/// * `estimate.total_runs` (gauge) — Knuth weighted-backtrack estimate
///   of the number of maximal runs; the heartbeat turns it into
///   `% explored` / ETA.
/// * `estimate.distinct_computations` (gauge) — capture-recapture
///   estimate of the distinct canonical keys (the collapse ratio).
/// * `estimate.canonical_key` / `estimate.check` (timers) — sampled
///   per-run hashing and checking costs, which price the predicted
///   dedup verdict in `--explain` when dedup is off.
fn estimate_instance<S, F>(
    sys: &S,
    extract: &F,
    spec: &Specification,
    corr: &Correspondence,
    explorer: &Explorer,
    probe: &dyn Probe,
) where
    S: System,
    F: Fn(&S::State) -> gem_core::Computation,
{
    let elapsed_ns = |t: std::time::Instant| -> u64 {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    };
    let defaults = VerifyOptions::default();
    let mut knuth = KnuthEstimator::new();
    let mut collapse = CollapseEstimator::new();
    let mut checks = 0usize;
    for seed in 0..ESTIMATE_SAMPLES {
        let sample = explorer.sample_run(sys, seed);
        knuth.record(sample.tree_product);
        let comp = extract(&sample.state);
        let started = std::time::Instant::now();
        let key = canonical_key(&comp);
        probe.time_ns("estimate.canonical_key", elapsed_ns(started));
        collapse.record(fingerprint_words(&key));
        if checks < ESTIMATE_CHECKS {
            checks += 1;
            let started = std::time::Instant::now();
            let _ = check_computation(
                &comp,
                spec,
                corr,
                defaults.strategy,
                defaults.check_program_legality,
            );
            probe.time_ns("estimate.check", elapsed_ns(started));
        }
    }
    probe.add("estimate.samples", ESTIMATE_SAMPLES);
    if let Some(runs) = knuth.estimate_runs() {
        probe.gauge_set("estimate.total_runs", runs);
    }
    if let Some(distinct) = collapse.estimate() {
        probe.gauge_set("estimate.distinct_computations", distinct);
    }
}

/// Runs [`estimate_instance`] (when asked and the probe is live) and then
/// the verification sweep. Sampling happens *before* the `verify` span
/// opens, so the phase table still partitions the sweep's wall time.
fn verify_with_estimates<S, F>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: F,
    options: &VerifyOptions,
    estimates: bool,
) -> Result<VerifyOutcome, ProjectError>
where
    S: System + Sync,
    S::State: Send,
    S::Action: Send,
    F: Fn(&S::State) -> gem_core::Computation,
{
    if estimates && options.probe.enabled() {
        estimate_instance(
            sys,
            &extract,
            spec,
            corr,
            &options.explorer,
            options.probe.as_ref(),
        );
    }
    verify_system(sys, spec, corr, &extract, options)
}

fn artifact_json(dir: &Path, name: &str) -> Result<JsonValue, CliError> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
    gem_obs::json::parse(&text).map_err(|e| err(format!("{}: {e}", path.display())))
}

fn schedule_from_json(v: &JsonValue, file: &str) -> Result<Vec<(usize, String)>, CliError> {
    let steps = v
        .get("steps")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| err(format!("{file}: missing \"steps\" array")))?;
    let mut out = Vec::with_capacity(steps.len());
    for (i, s) in steps.iter().enumerate() {
        let index = s
            .get("index")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(format!("{file}: step {i} has no \"index\"")))?;
        let action = s
            .get("action")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(format!("{file}: step {i} has no \"action\"")))?;
        out.push((index as usize, action.to_owned()));
    }
    Ok(out)
}

fn outcome_from_json(v: &JsonValue, file: &str) -> Result<VerifyOutcome, CliError> {
    let miss = |k: &str| err(format!("{file}: missing field {k:?}"));
    let runs = v
        .get("runs")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| miss("runs"))? as usize;
    let deadlocks = v
        .get("deadlocks")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| miss("deadlocks"))? as usize;
    let mut failures = Vec::new();
    for f in v
        .get("failures")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| miss("failures"))?
    {
        let run = f
            .get("run")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| miss("failures[].run"))? as usize;
        let violated = f
            .get("violated")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| miss("failures[].violated"))?
            .iter()
            .filter_map(JsonValue::as_str)
            .map(str::to_owned)
            .collect();
        let detail = f
            .get("detail")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_owned();
        failures.push(RunFailure {
            run,
            violated,
            detail,
        });
    }
    Ok(VerifyOutcome {
        runs,
        deadlocks,
        failures,
        truncation: None,
    })
}

/// Replays a recorded schedule on a freshly-built system: every step must
/// match the recorded action's `Debug` text, so a drifted problem build
/// diverges loudly rather than silently checking a different run.
fn replay_run<S: System>(
    sys: &S,
    spec: &Specification,
    corr: &Correspondence,
    extract: impl Fn(&S::State) -> gem_core::Computation,
    steps: &[(usize, String)],
) -> Result<VerifyOutcome, CliError> {
    let mut state = sys.initial();
    for (i, (index, recorded)) in steps.iter().enumerate() {
        let enabled = sys.enabled(&state);
        let action = enabled.get(*index).cloned().ok_or_else(|| {
            err(format!(
                "replay step {i}: index {index} out of range ({} action(s) enabled)",
                enabled.len()
            ))
        })?;
        let actual = format!("{action:?}");
        if actual != *recorded {
            return Err(err(format!(
                "replay step {i}: recorded action {recorded:?}, but index {index} is {actual:?}"
            )));
        }
        sys.apply(&mut state, &action);
    }
    let deadlocked = !sys.is_complete(&state);
    let defaults = VerifyOptions::default();
    let check = check_computation(
        &extract(&state),
        spec,
        corr,
        defaults.strategy,
        defaults.check_program_legality,
    )
    .map_err(|e| err(format!("projection failed during replay: {e}")))?;
    Ok(VerifyOutcome {
        runs: 1,
        deadlocks: usize::from(deadlocked),
        failures: check
            .verdict
            .map(|(violated, detail)| {
                vec![RunFailure {
                    run: 0,
                    violated,
                    detail,
                }]
            })
            .unwrap_or_default(),
        truncation: None,
    })
}

fn replay_cmd(dir: &Path) -> Result<String, CliError> {
    let meta = artifact_json(dir, "meta.json")?;
    let problem = meta
        .get("problem")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err("meta.json: missing \"problem\" (was the artifact written by `gem verify --artifacts`?)"))?;
    let params_args: Vec<String> = meta
        .get("params")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    let params = Params::parse(&params_args)?;
    let schedule = schedule_from_json(&artifact_json(dir, "schedule.json")?, "schedule.json")?;
    let outcome_doc = artifact_json(dir, "outcome.json")?;
    let expected = outcome_doc
        .get("replay")
        .filter(|v| !matches!(v, JsonValue::Null))
        .ok_or_else(|| {
            err("outcome.json has no replay section (clean sweep — nothing to reproduce)")
        })?;
    let expected = outcome_from_json(expected, "outcome.json#replay")?;
    let inst = instance(problem, &params)?;
    let got = match &inst {
        Instance::Monitor { sys, spec, corr } => replay_run(
            sys,
            spec,
            corr,
            |s| sys.computation(s).expect("acyclic"),
            &schedule,
        )?,
        Instance::Csp {
            sys, spec, corr, ..
        } => replay_run(
            sys,
            spec,
            corr,
            |s| sys.computation(s).expect("acyclic"),
            &schedule,
        )?,
        Instance::Ada {
            sys, spec, corr, ..
        } => replay_run(
            sys,
            spec,
            corr,
            |s| sys.computation(s).expect("acyclic"),
            &schedule,
        )?,
    };
    // A schedule recorded under `--por` is a sleep-set representative of
    // its computation. Replaying it is exact all the same, but the note
    // tells the reader the run index context: it need not be the first
    // failing schedule of an unreduced sweep.
    let por_note = if meta.get("por").and_then(JsonValue::as_str) == Some("true") {
        "\nnote: schedule is a --por sleep-set representative"
    } else {
        ""
    };
    if got == expected {
        Ok(format!("REPRODUCED: {got}{por_note}"))
    } else {
        Err(err(format!(
            "DIVERGED\nexpected: {expected}\n     got: {got}{por_note}"
        )))
    }
}

/// Flattens a benchmark JSON file into `metric -> mean ns`. Accepts both
/// gem-obs reports (criterion-shim output, `"timers"` section) and the
/// committed `BENCH_*.json` trajectory files (their `"after"` section is
/// the baseline).
fn bench_metrics(v: &JsonValue, file: &str) -> Result<BTreeMap<String, f64>, CliError> {
    let mut out = BTreeMap::new();
    if let Some(timers) = v.get("timers").and_then(JsonValue::as_obj) {
        for (name, t) in timers {
            if let Some(mean) = t.get("mean_ns").and_then(JsonValue::as_f64) {
                out.insert(name.clone(), mean);
            }
        }
    } else if let Some(after) = v.get("after").and_then(JsonValue::as_obj) {
        for (_bench, metrics) in after {
            if let Some(metrics) = metrics.as_obj() {
                for (name, ns) in metrics {
                    if let Some(ns) = ns.as_f64() {
                        out.insert(name.clone(), ns);
                    }
                }
            }
        }
    }
    if out.is_empty() {
        return Err(err(format!(
            "{file}: no timer metrics found (expected a gem-obs report with \"timers\" \
             or a BENCH trajectory with \"after\")"
        )));
    }
    Ok(out)
}

/// Serialises a bench-diff comparison as deterministic JSON (metrics in
/// `BTreeMap` order) for CI consumption.
fn bench_diff_json(
    threshold: f64,
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    regressions: &[String],
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"threshold_pct\": {threshold},\n"));
    out.push_str(&format!("  \"regressions\": {},\n", regressions.len()));
    out.push_str("  \"metrics\": {\n");
    let mut first = true;
    for (name, old_ns) in old {
        let Some(new_ns) = new.get(name) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let delta = if *old_ns > 0.0 {
            (new_ns - old_ns) / old_ns * 100.0
        } else {
            0.0
        };
        let mut entry = String::new();
        gem_obs::json::push_json_str(&mut entry, name);
        out.push_str(&format!(
            "    {entry}: {{\"baseline_ns\": {old_ns:.0}, \"current_ns\": {new_ns:.0}, \
             \"delta_pct\": {delta:.2}, \"regressed\": {}}}",
            delta > threshold
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

fn bench_diff_cmd(rest: &[String], json_out: Option<&str>) -> Result<String, CliError> {
    let usage = "bench-diff needs two report files: \
                 gem bench-diff <baseline.json> <current.json> [threshold=25] \
                 [limit:<metric>=<pct> ...] [--json <path>]";
    let (old_path, rest) = rest.split_first().ok_or_else(|| err(usage))?;
    let (new_path, rest) = rest.split_first().ok_or_else(|| err(usage))?;
    let params = Params::parse(rest)?;
    let threshold = params.f64("threshold", 25.0)?;
    // Per-metric overrides tighten (or relax) the global threshold for
    // named series — e.g. `limit:rw_verify/readers_priority_1r2w_dedup=50`
    // keeps a once-regressing series on a shorter leash than the noise
    // allowance the rest of the table gets.
    let mut limits: BTreeMap<String, f64> = BTreeMap::new();
    for (k, v) in &params.0 {
        if let Some(metric) = k.strip_prefix("limit:") {
            let pct = v
                .parse()
                .map_err(|_| err(format!("{k} must be a number, got {v:?}")))?;
            limits.insert(metric.to_owned(), pct);
        }
    }
    let load = |path: &str| -> Result<BTreeMap<String, f64>, CliError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        let v = gem_obs::json::parse(&text).map_err(|e| err(format!("{path}: {e}")))?;
        bench_metrics(&v, path)
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let mut table = format!(
        "{:<48} {:>14} {:>14} {:>9}\n",
        "metric", "baseline_ns", "current_ns", "delta"
    );
    let mut regressions = Vec::new();
    let mut shared = 0usize;
    for (name, old_ns) in &old {
        match new.get(name) {
            None => table.push_str(&format!(
                "{name:<48} {old_ns:>14.0} {:>14} {:>9}\n",
                "-", "gone"
            )),
            Some(new_ns) => {
                shared += 1;
                let delta = if *old_ns > 0.0 {
                    (new_ns - old_ns) / old_ns * 100.0
                } else {
                    0.0
                };
                table.push_str(&format!(
                    "{name:<48} {old_ns:>14.0} {new_ns:>14.0} {delta:>+8.1}%\n"
                ));
                let limit = limits.get(name).copied().unwrap_or(threshold);
                if delta > limit {
                    regressions.push(format!("{name}: {delta:+.1}% (limit +{limit:.0}%)"));
                }
            }
        }
    }
    for (name, new_ns) in &new {
        if !old.contains_key(name) {
            table.push_str(&format!(
                "{name:<48} {:>14} {new_ns:>14.0} {:>9}\n",
                "-", "new"
            ));
        }
    }
    if shared == 0 {
        return Err(err(format!(
            "{table}no shared metrics between {old_path} and {new_path} — nothing to gate"
        )));
    }
    // The machine-readable summary is written in the regression case too
    // — a failing gate is exactly when CI wants the numbers.
    if let Some(path) = json_out {
        write_atomic(
            Path::new(path),
            &bench_diff_json(threshold, &old, &new, &regressions),
        )
        .map_err(|e| err(format!("cannot write bench-diff JSON to {path:?}: {e}")))?;
    }
    if regressions.is_empty() {
        Ok(format!(
            "{table}no regression beyond +{threshold:.0}% across {shared} shared metric(s)"
        ))
    } else {
        Err(err(format!(
            "{table}REGRESSION: {} metric(s) past their limit (default +{threshold:.0}%):\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        )))
    }
}

/// The usage string.
pub fn usage() -> String {
    "usage: gem <command> [problem] [key=value ...] [flags]\n\
     commands:\n\
     \x20 list                       list available problems\n\
     \x20 render <problem> [params]  print the GEM specification\n\
     \x20 verify <problem> [params]  check PROG sat P over all schedules\n\
     \x20 explore <problem> [params] count schedules and deadlocks\n\
     \x20 profile <problem> [params] verify + phase-attribution table, search-\n\
     \x20                            space estimates, reduction verdicts\n\
     \x20 top <problem> [params]     verify with a live dashboard on stderr:\n\
     \x20                            run/step rates, progress + ETA, worker\n\
     \x20                            utilization, phase shares\n\
     \x20 deadlock <problem> [params] hunt for a deadlock (pruned search)\n\
     \x20 dot <problem> [params]     emit one computation as Graphviz dot\n\
     \x20 replay <dir>               re-run a counterexample artifact's schedule\n\
     \x20                            and check it reproduces the recorded outcome\n\
     \x20 bench-diff <old> <new> [threshold=25] [limit:<metric>=<pct> ...]\n\
     \x20                            compare two bench/report JSON files; exits\n\
     \x20                            nonzero past the regression threshold\n\
     \x20 metrics-lint <file>        validate an OpenMetrics exposition file\n\
     \x20                            (as written by --metrics-out)\n\
     flags (allowed anywhere on the command line):\n\
     \x20 --stats                    print an instrumentation table to stderr\n\
     \x20 --stats-json <path>        write the run report as deterministic JSON\n\
     \x20 --trace <path>             stream probe events as JSON lines\n\
     \x20 --trace-out <path>         write a Chrome-trace JSON (chrome://tracing,\n\
     \x20                            Perfetto) of timer spans and counter totals\n\
     \x20 --metrics-out <path>       sample counters/gauges once a second and\n\
     \x20                            write an OpenMetrics exposition (plus a\n\
     \x20                            <path>.json time-series) at the end\n\
     \x20 --explain                  append reduction cost/benefit verdicts\n\
     \x20                            (dedup measured/predicted, POR attribution,\n\
     \x20                            incremental-check coverage)\n\
     \x20 --heartbeat <secs>         progress line interval (default 5, 0 = off)\n\
     \x20 --jobs <n>                 explorer worker threads (default 1, 0 = auto);\n\
     \x20                            results are identical for every n\n\
     \x20 --dedup                    check each distinct computation once and\n\
     \x20                            replay the verdict on trace-equivalent runs;\n\
     \x20                            results are identical with or without it\n\
     \x20 --por                      sleep-set partial-order reduction: explore\n\
     \x20                            roughly one schedule per computation; the\n\
     \x20                            verify/explore verdict is unchanged\n\
     \x20 --incr-check <mode>        incremental restriction checking along the\n\
     \x20                            DFS tree: auto (default; on when the spec\n\
     \x20                            is in the supported fragment), on, off;\n\
     \x20                            verdicts identical in every mode\n\
     \x20 --compile <mode>           step execution: auto (default, compiled\n\
     \x20                            slot/IR programs), on, off (tree-walking\n\
     \x20                            interpreter); outputs byte-identical\n\
     \x20 --auto                     on verify: sample the instance and pick\n\
     \x20                            plain/dedup/por from the estimated collapse\n\
     \x20                            ratio and oracle grant rate (overrides\n\
     \x20                            --dedup/--por; decision in --stats-json)\n\
     \x20 --artifacts <dir>          dump the first failing/deadlocked run as a\n\
     \x20                            self-contained counterexample directory and\n\
     \x20                            arm a crash-dump flight recorder\n\
     \x20 --recorder-cap <n>         flight-recorder events kept per thread\n\
     \x20                            (default 256; env GEM_RECORDER_CAP)\n\
     \x20 --json <path>              on bench-diff, also write the comparison\n\
     \x20                            as machine-readable JSON\n\
     problems: one-slot, bounded, rw, db-update, life, philosophers\n\
     examples:\n\
     \x20 gem verify rw readers=1 writers=2 variant=readers\n\
     \x20 gem explore rw readers=2 writers=2 rounds=2 --jobs 4\n\
     \x20 gem verify bounded items=4 cap=2 substrate=csp --stats\n\
     \x20 gem render rw data=true"
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runv(args: &[&str]) -> Result<String, CliError> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run(&owned)
    }

    #[test]
    fn list_and_help() {
        let out = runv(&["list"]).unwrap();
        for p in PROBLEMS {
            assert!(out.contains(p));
        }
        assert!(runv(&["help"]).unwrap().contains("usage"));
        assert!(runv(&[]).is_err());
        assert!(runv(&["bogus"]).is_err());
    }

    #[test]
    fn render_rw() {
        let out = runv(&["render", "rw", "data=true"]).unwrap();
        assert!(out.contains("SPECIFICATION RWProblem-ReadersPriority"));
        assert!(out.contains("db.control = ELEMENT"));
    }

    #[test]
    fn verify_one_slot_monitor_holds() {
        let out = runv(&["verify", "one-slot", "items=2"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn verify_rw_writers_priority_fails_on_readers_monitor() {
        let out = runv(&["verify", "rw", "readers=1", "writers=2", "variant=writers"]).unwrap();
        assert!(out.contains("FAILS"), "{out}");
    }

    #[test]
    fn explore_counts_schedules() {
        let out = runv(&["explore", "rw", "readers=1", "writers=1"]).unwrap();
        assert!(out.contains("schedules:"), "{out}");
        assert!(out.contains("deadlocks: 0"), "{out}");
    }

    #[test]
    fn dot_emits_graph() {
        let out = runv(&["dot", "one-slot", "items=1"]).unwrap();
        assert!(out.starts_with("digraph gem"));
    }

    #[test]
    fn mesa_ablation_via_cli() {
        let out = runv(&["verify", "rw", "variant=mutex", "semantics=mesa"]).unwrap();
        assert!(out.contains("FAILS"), "IF-based monitor under Mesa: {out}");
        let out = runv(&[
            "verify",
            "rw",
            "variant=mutex",
            "semantics=mesa",
            "monitor=mesa-safe",
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn bad_params_reported() {
        assert!(runv(&["verify", "rw", "readers=abc"]).is_err());
        assert!(runv(&["verify", "rw", "variant=nope"]).is_err());
        assert!(runv(&["verify", "one-slot", "substrate=nope"]).is_err());
        assert!(runv(&["verify", "nope"]).is_err());
        assert!(runv(&["verify", "rw", "noequals"]).is_err());
        assert!(runv(&["verify"]).is_err());
    }

    #[test]
    fn philosophers_deadlock_command() {
        let out = runv(&["deadlock", "philosophers", "n=3", "order=naive"]).unwrap();
        assert!(out.contains("DEADLOCK"), "{out}");
        let out = runv(&["deadlock", "philosophers", "n=3", "order=asymmetric"]).unwrap();
        assert!(out.contains("no deadlock"), "{out}");
    }

    #[test]
    fn csp_substrate_selectable() {
        let out = runv(&["verify", "bounded", "items=2", "cap=1", "substrate=csp"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let out = runv(&["verify", "one-slot", "items=2", "substrate=ada"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn obs_flags_are_stripped_anywhere() {
        // A flag between positional args must not disturb dispatch.
        let out = runv(&["verify", "--heartbeat", "0", "one-slot", "items=2"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let out = runv(&["--stats", "explore", "rw", "readers=1", "writers=1"]).unwrap();
        assert!(out.contains("schedules:"), "{out}");
    }

    #[test]
    fn stats_json_writes_report() {
        let dir = std::env::temp_dir().join("gem-cli-test-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one-slot.json");
        let path_s = path.to_str().unwrap().to_owned();
        let out = run(&[
            "verify".to_owned(),
            "one-slot".to_owned(),
            "items=2".to_owned(),
            format!("--stats-json={path_s}"),
            "--heartbeat=0".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"explore.runs\""), "{json}");
        assert!(json.contains("\"explore.steps\""), "{json}");
        assert!(json.contains("\"explore.prune.hits\""), "{json}");
        assert!(json.contains("\"verify.deadlocks\""), "{json}");
        // One-slot's restrictions are all in the incremental fragment, so
        // the default `--incr-check auto` sweep reports incremental
        // counters instead of batch `restriction.evals`.
        assert!(
            json.contains("\"logic.incr.restrictions.compiled\""),
            "{json}"
        );
        assert!(json.contains("\"logic.incr.leaf_clean\""), "{json}");
        assert!(!json.contains("\"restriction.evals\""), "{json}");
        assert!(json.contains("\"total\""), "{json}"); // wall-time span
        assert!(json.contains("\"command\": \"verify\""), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_flag_writes_events() {
        let dir = std::env::temp_dir().join("gem-cli-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_s = path.to_str().unwrap().to_owned();
        runv(&[
            "explore",
            "one-slot",
            "items=2",
            "--trace",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.lines().count() > 0);
        assert!(trace.contains("explore.runs"), "{trace}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_flags_reported() {
        assert!(runv(&["verify", "one-slot", "--bogus"]).is_err());
        assert!(runv(&["verify", "one-slot", "--stats-json"]).is_err());
        assert!(runv(&["verify", "one-slot", "--heartbeat", "abc"]).is_err());
        assert!(runv(&["verify", "one-slot", "--heartbeat", "-1"]).is_err());
        assert!(runv(&["verify", "one-slot", "--stats=yes"]).is_err());
        assert!(runv(&["verify", "one-slot", "--dedup=yes"]).is_err());
        assert!(runv(&["verify", "one-slot", "--auto=yes"]).is_err());
    }

    #[test]
    fn dedup_flag_preserves_verdicts() {
        let plain = runv(&["verify", "one-slot", "items=2"]).unwrap();
        let deduped = runv(&["verify", "one-slot", "items=2", "--dedup"]).unwrap();
        assert_eq!(plain, deduped);
        let plain = runv(&["verify", "rw", "readers=1", "writers=2", "variant=writers"]).unwrap();
        let deduped = runv(&[
            "verify",
            "rw",
            "readers=1",
            "writers=2",
            "variant=writers",
            "--dedup",
        ])
        .unwrap();
        assert_eq!(plain, deduped);
        assert!(deduped.contains("FAILS"), "{deduped}");
    }

    #[test]
    fn explore_dedup_counts_distinct_computations() {
        let out = runv(&["explore", "rw", "readers=1", "writers=1", "--dedup"]).unwrap();
        assert!(out.contains("distinct computations:"), "{out}");
    }

    #[test]
    fn profile_renders_phase_table_and_verdicts() {
        // `--incr-check off` keeps the whole batch pipeline live so every
        // batch phase shows up in the table.
        let out = runv(&[
            "profile",
            "one-slot",
            "items=2",
            "--incr-check",
            "off",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("phase.explore"), "{out}");
        assert!(out.contains("phase.seal"), "{out}");
        assert!(out.contains("phase.check"), "{out}");
        assert!(out.contains("accounted"), "{out}");
        assert!(out.contains("wall (verify)"), "{out}");
        // The per-restriction breakdown attributes the batch evals.
        assert!(out.contains("check breakdown by restriction:"), "{out}");
        assert!(out.contains("#0 "), "{out}");
        assert!(out.contains("[batch]"), "{out}");
        // No dedup: the sampler's collapse ratio yields a *predicted*
        // dedup verdict.
        assert!(out.contains("dedup predicted"), "{out}");
    }

    #[test]
    fn profile_with_incremental_collapses_check_phase() {
        // Default `--incr-check auto` on an in-fragment spec: the batch
        // check phase disappears, phase.check_incr takes over, and the
        // breakdown tags every restriction incremental with zero batch
        // evals — the collapse the speedup comes from.
        let out = runv(&["profile", "one-slot", "items=2", "--heartbeat", "0"]).unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("phase.check_incr"), "{out}");
        assert!(!out.contains("phase.seal"), "{out}");
        assert!(out.contains("[incremental] 0 batch eval(s)"), "{out}");
        assert!(out.contains("incremental check: "), "{out}");
        assert!(out.contains("proven clean"), "{out}");
    }

    #[test]
    fn profile_with_dedup_reports_measured_verdict() {
        let out = runv(&[
            "profile",
            "one-slot",
            "items=2",
            "--dedup",
            // Clean leaves bypass the dedup cache entirely, so measuring
            // the cache requires the batch pipeline.
            "--incr-check",
            "off",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("phase.canonical_key"), "{out}");
        assert!(out.contains("phase.dedup_lookup"), "{out}");
        assert!(out.contains("dedup measured"), "{out}");
    }

    #[test]
    fn explain_flag_appends_verdicts_to_verify() {
        let out = runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--dedup",
            "--explain",
            // Dedup-cache traffic (the measured verdict's input) only
            // exists when leaves reach the batch pipeline.
            "--incr-check",
            "off",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("dedup measured"), "{out}");
    }

    #[test]
    fn explain_reports_incremental_verdict_by_default() {
        let out = runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--explain",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("incremental check: "), "{out}");
        assert!(out.contains("proven clean"), "{out}");
    }

    #[test]
    fn incr_check_flag_validated_and_recorded() {
        assert!(runv(&["verify", "one-slot", "--incr-check", "bogus"]).is_err());
        assert!(runv(&["verify", "one-slot", "--incr-check"]).is_err());
        let dir = std::env::temp_dir().join("gem-cli-test-incr-flag");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let path_s = path.to_str().unwrap().to_owned();
        let with_mode = |mode: &str| {
            runv(&[
                "verify",
                "one-slot",
                "items=2",
                "--incr-check",
                mode,
                "--stats-json",
                &path_s,
                "--heartbeat",
                "0",
            ])
            .unwrap();
            let json = std::fs::read_to_string(&path).unwrap();
            let report = gem_obs::Report::from_json(&json).unwrap();
            report.config.get("incr_check").cloned()
        };
        assert_eq!(with_mode("off").as_deref(), Some("off"));
        assert_eq!(with_mode("on").as_deref(), Some("on"));
        assert_eq!(with_mode("auto").as_deref(), Some("auto"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incr_check_modes_agree_on_verdicts() {
        // The stdout contract: every mode prints byte-identical output,
        // on holding and failing instances alike.
        for problem in [
            vec!["verify", "one-slot", "items=2"],
            vec!["verify", "rw", "readers=1", "writers=2", "variant=writers"],
        ] {
            let run_mode = |mode: &str| {
                let mut args = problem.clone();
                args.extend(["--incr-check", mode]);
                runv(&args).unwrap()
            };
            let auto = run_mode("auto");
            assert_eq!(auto, run_mode("on"), "{problem:?}");
            assert_eq!(auto, run_mode("off"), "{problem:?}");
        }
    }

    #[test]
    fn trace_out_writes_chrome_trace() {
        let dir = std::env::temp_dir().join("gem-cli-test-chrome");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_s = path.to_str().unwrap().to_owned();
        runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--trace-out",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.starts_with("{\"traceEvents\": ["), "{trace}");
        assert!(trace.contains("\"ph\": \"X\""), "duration events: {trace}");
        assert!(trace.contains("\"ph\": \"C\""), "counter events: {trace}");
        gem_obs::json::parse(&trace).expect("valid JSON");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_diff_json_flag_writes_machine_summary() {
        let dir = std::env::temp_dir().join("gem-cli-test-bench-diff");
        std::fs::create_dir_all(&dir).unwrap();
        let report = dir.join("report.json");
        let out_json = dir.join("diff.json");
        std::fs::write(
            &report,
            "{\"timers\": {\"verify\": {\"count\": 1, \"total_ns\": 100, \
             \"min_ns\": 100, \"max_ns\": 100, \"mean_ns\": 100}}}",
        )
        .unwrap();
        let report_s = report.to_str().unwrap().to_owned();
        let out_s = out_json.to_str().unwrap().to_owned();
        runv(&["bench-diff", &report_s, &report_s, "--json", &out_s]).unwrap();
        let text = std::fs::read_to_string(&out_json).unwrap();
        let parsed = gem_obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("regressions").and_then(JsonValue::as_u64),
            Some(0)
        );
        assert!(parsed
            .get("metrics")
            .and_then(|m| m.get("verify"))
            .is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_cap_flag_validated() {
        assert!(runv(&["verify", "one-slot", "--recorder-cap", "abc"]).is_err());
        assert!(runv(&["verify", "one-slot", "--explain=yes"]).is_err());
    }

    #[test]
    fn stats_json_has_config_section() {
        let dir = std::env::temp_dir().join("gem-cli-test-config");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let path_s = path.to_str().unwrap().to_owned();
        runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--dedup",
            "--jobs",
            "2",
            "--stats-json",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let report = gem_obs::Report::from_json(&json).unwrap();
        assert_eq!(report.config.get("dedup").map(String::as_str), Some("true"));
        assert_eq!(report.config.get("jobs").map(String::as_str), Some("2"));
        assert_eq!(report.config.get("por").map(String::as_str), Some("false"));
        assert_eq!(
            report.meta.get("gem_version").map(String::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(
            report.wall_time_ns().unwrap_or(0) > 0,
            "total span recorded"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_records_strategy_and_matches_explicit_flags() {
        let dir = std::env::temp_dir().join("gem-cli-test-auto");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto-stats.json");
        let path_s = path.to_str().unwrap().to_owned();
        let out = runv(&[
            "verify",
            "bounded",
            "items=3",
            "cap=2",
            "--auto",
            "--stats-json",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("strategy:"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let report = gem_obs::Report::from_json(&json).unwrap();
        // The decision and its estimator evidence are recorded.
        let strategy = report.config.get("strategy").expect("config.strategy");
        assert!(["plain", "dedup", "por"].contains(&strategy.as_str()));
        for key in [
            "strategy.reason",
            "strategy.samples",
            "strategy.est_runs",
            "strategy.est_distinct",
            "strategy.collapse_ratio",
            "strategy.oracle_grants",
            "strategy.oracle_queries",
        ] {
            assert!(report.config.contains_key(key), "missing {key}");
        }
        // Measured sampling costs are timing data: timers, not config.
        for timer in ["auto.key", "auto.check"] {
            assert!(report.timers.contains_key(timer), "missing timer {timer}");
        }
        // The bounded monitor is the known dedup-LOSS instance (every
        // run a distinct computation, BENCH: dedup 3.4× slower): auto
        // must not pick dedup here.
        assert_ne!(
            strategy,
            "dedup",
            "{:?}",
            report.config.get("strategy.reason")
        );
        assert_eq!(
            report.config.get("dedup").map(String::as_str),
            Some("false")
        );
        // The chosen flag set reproduces the exact explicit-flag verdict.
        let explicit = match strategy.as_str() {
            "por" => runv(&["verify", "bounded", "items=3", "cap=2", "--por"]).unwrap(),
            _ => runv(&["verify", "bounded", "items=3", "cap=2"]).unwrap(),
        };
        assert!(out.starts_with(&explicit), "{out}\nvs\n{explicit}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_out_writes_lintable_exposition() {
        let dir = std::env::temp_dir().join("gem-cli-test-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.om");
        let path_s = path.to_str().unwrap().to_owned();
        runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--jobs",
            "2",
            "--metrics-out",
            &path_s,
            "--heartbeat",
            "0",
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = gem_obs::lint_openmetrics(&text).unwrap();
        assert!(summary.snapshots >= 2, "{summary:?}");
        assert!(text.contains("gem_explore_runs_total"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        // The lint subcommand accepts the same file.
        let out = runv(&["metrics-lint", &path_s]).unwrap();
        assert!(out.contains("OK"), "{out}");
        // The JSON time-series rides along.
        let json = std::fs::read_to_string(format!("{path_s}.json")).unwrap();
        let parsed = gem_obs::json::parse(&json).expect("valid JSON");
        assert!(parsed.get("interval_ms").is_some(), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_lint_rejects_bad_files() {
        assert!(runv(&["metrics-lint"]).is_err());
        assert!(runv(&["metrics-lint", "/nonexistent/gem-metrics.om"]).is_err());
        let dir = std::env::temp_dir().join("gem-cli-test-metrics-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.om");
        std::fs::write(&path, "gem_x_total 1 0.000\n").unwrap();
        assert!(runv(&["metrics-lint", path.to_str().unwrap()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_renders_dashboard_with_worker_table() {
        let out = runv(&[
            "top",
            "one-slot",
            "items=2",
            "--jobs",
            "2",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("gem top"), "{out}");
        assert!(out.contains("runs: "), "{out}");
        assert!(out.contains("HOLDS"), "{out}");
        // --jobs 2 split work beyond the frontier, so the worker
        // utilization table is present.
        assert!(out.contains("worker"), "{out}");
        assert!(out.contains("util"), "{out}");
        assert!(out.contains("w0"), "{out}");
    }

    #[test]
    fn profile_with_jobs_appends_worker_table() {
        let out = runv(&[
            "profile",
            "one-slot",
            "items=2",
            "--jobs",
            "2",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("phase."), "{out}");
        assert!(out.contains("util"), "{out}");
        assert!(out.contains("w0"), "{out}");
        // Serial profile has no worker attribution, hence no table.
        let serial = runv(&["profile", "one-slot", "items=2", "--heartbeat", "0"]).unwrap();
        assert!(!serial.contains("util"), "{serial}");
    }

    #[test]
    fn auto_with_explain_shows_decision_reason() {
        let out = runv(&[
            "verify",
            "one-slot",
            "items=2",
            "--auto",
            "--stats",
            "--explain",
            "--heartbeat",
            "0",
        ])
        .unwrap();
        assert!(out.contains("auto: chose "), "{out}");
    }
}
