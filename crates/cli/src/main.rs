//! The `gem` binary: thin wrapper over [`gem_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gem_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
