//! Rendering specifications in the paper's surface notation.
//!
//! The paper sketches a concrete syntax for GEM specifications
//! (`ELEMENT TYPE … EVENTS … RESTRICTIONS … END`); this reproduction keeps
//! specifications as data, but [`render_specification`] prints a finished
//! [`Specification`](crate::Specification) in that style — useful for
//! inspecting generated specs and for documentation.

use std::fmt::Write as _;

use gem_core::NodeRef;

use crate::Specification;

/// Renders `spec` in a paper-like textual notation: elements with their
/// event classes, groups with members and ports, thread types, and the
/// named restrictions (pretty-printed by
/// [`Formula::render`](gem_logic::Formula::render)).
pub fn render_specification(spec: &Specification) -> String {
    let s = spec.structure();
    let mut out = String::new();
    let _ = writeln!(out, "SPECIFICATION {}", spec.name());

    for el in s.elements() {
        let info = s.element_info(el);
        let _ = writeln!(out, "\n{} = ELEMENT", info.name());
        let _ = writeln!(out, "  EVENTS");
        for &cls in info.classes() {
            let ci = s.class_info(cls);
            if ci.params().is_empty() {
                let _ = writeln!(out, "    {}", ci.name());
            } else {
                let _ = writeln!(out, "    {}({})", ci.name(), ci.params().join(", "));
            }
        }
    }

    for g in s.groups() {
        let info = s.group_info(g);
        let members: Vec<String> = info
            .members()
            .iter()
            .map(|m| match m {
                NodeRef::Element(e) => s.element_info(*e).name().to_owned(),
                NodeRef::Group(gg) => s.group_info(*gg).name().to_owned(),
            })
            .collect();
        let _ = writeln!(out, "\n{} = GROUP({})", info.name(), members.join(", "));
        if !info.ports().is_empty() {
            let ports: Vec<String> = info
                .ports()
                .iter()
                .map(|&(el, cls)| {
                    format!("{}.{}", s.element_info(el).name(), s.class_info(cls).name())
                })
                .collect();
            let _ = writeln!(out, "  PORTS({})", ports.join(", "));
        }
    }

    if !spec.threads().is_empty() {
        let _ = writeln!(out, "\nTHREADS");
        for t in spec.threads() {
            for path in &t.paths {
                let stages: Vec<String> = path
                    .iter()
                    .map(|sel| {
                        let cls = sel
                            .class
                            .map(|c| s.class_info(c).name().to_owned())
                            .unwrap_or_else(|| "*".to_owned());
                        match sel.element {
                            Some(el) => format!("{}.{cls}", s.element_info(el).name()),
                            None => cls,
                        }
                    })
                    .collect();
                let _ = writeln!(out, "  {} = ({})", t.name, stages.join(" :: "));
            }
        }
    }

    let _ = writeln!(out, "\nRESTRICTIONS");
    for r in spec.restrictions() {
        let _ = writeln!(out, "  {}:", r.name);
        let _ = writeln!(out, "    {}", r.formula.render(s));
    }
    let _ = writeln!(out, "\nEND {}", spec.name());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prerequisite, ElementType, GroupType, SpecBuilder};
    use gem_logic::EventSel;

    #[test]
    fn renders_all_sections() {
        let buffer = ElementType::new("Buffer")
            .event("Deposit", &["item"])
            .event("Remove", &["item"]);
        let user = ElementType::new("User").event("Call", &[]);
        let db = GroupType::new("DB")
            .element_member("buf", buffer)
            .port("buf", "Deposit");
        let mut sb = SpecBuilder::new("Demo");
        let g = sb.instantiate_group(&db, "db", &[]).unwrap();
        let u = sb.instantiate_element(&user, "u0").unwrap();
        let buf = g.element("buf");
        sb.add_restriction(
            "dep-then-rem",
            prerequisite(&buf.sel("Deposit"), &buf.sel("Remove")),
        );
        sb.declare_thread("pi", vec![vec![u.sel("Call"), buf.sel("Deposit")]]);
        let spec = sb.finish();
        let text = render_specification(&spec);
        assert!(text.contains("SPECIFICATION Demo"));
        assert!(text.contains("db.buf = ELEMENT"));
        assert!(text.contains("Deposit(item)"));
        assert!(text.contains("db = GROUP(db.buf)"));
        assert!(text.contains("PORTS(db.buf.Deposit)"));
        assert!(text.contains("pi = (u0.Call :: db.buf.Deposit)"));
        assert!(text.contains("dep-then-rem:"));
        assert!(text.contains("END Demo"));
    }

    #[test]
    fn wildcard_thread_stage_rendered() {
        let mut sb = SpecBuilder::new("W");
        sb.declare_thread("pi", vec![vec![EventSel::any()]]);
        let text = render_specification(&sb.finish());
        assert!(text.contains("pi = (*)"));
    }
}
