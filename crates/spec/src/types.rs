//! GEM type descriptions (§6): element and group types, refinement,
//! parameterization, and instantiation.
//!
//! The paper treats types as "a simple text substitution facility": each
//! instance of a type is an element or group with the structure of its
//! type description. This reproduction represents types as data
//! ([`ElementType`], [`GroupType`]) whose restriction bodies are Rust
//! closures from the *instance* (the concrete ids created at instantiation)
//! to a [`Formula`] — substitution happens when
//! [`SpecBuilder::instantiate_element`] / [`SpecBuilder::instantiate_group`]
//! run. Parameterized types (§6's `TypedVariable(t: TYPE)`) are ordinary
//! Rust functions returning an `ElementType`/`GroupType`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gem_core::{ClassId, ElementId, GroupId, NodeRef, Structure, StructureError, ThreadTypeId};
use gem_logic::{EventSel, Formula};

use crate::thread::ThreadSpec;

/// Declaration of one event class within a type: name and parameter names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventDecl {
    /// Event class name, e.g. `"Assign"`.
    pub name: String,
    /// Parameter names, positional.
    pub params: Vec<String>,
}

type ElementRestrictionFn = Arc<dyn Fn(&ElementInstance, &Structure) -> Formula + Send + Sync>;
type GroupRestrictionFn = Arc<dyn Fn(&GroupInstance, &Structure) -> Formula + Send + Sync>;

/// An element type description (§6).
///
/// # Examples
///
/// The paper's `Variable` element type with its value-semantics
/// restriction:
///
/// ```
/// use gem_spec::ElementType;
/// use gem_logic::{Formula, ValueTerm};
///
/// let variable = ElementType::new("Variable")
///     .event("Assign", &["newval"])
///     .event("Getval", &["oldval"])
///     .restriction("getval-yields-last-assign", |inst, _s| {
///         Formula::forall("a", inst.sel("Assign"),
///             Formula::forall("g", inst.sel("Getval"),
///                 Formula::enables("a", "g").implies(Formula::value_eq(
///                     ValueTerm::param("a", "newval"),
///                     ValueTerm::param("g", "oldval"),
///                 ))))
///     });
/// assert_eq!(variable.name(), "Variable");
/// ```
#[derive(Clone)]
pub struct ElementType {
    name: String,
    events: Vec<EventDecl>,
    restrictions: Vec<(String, ElementRestrictionFn)>,
}

impl fmt::Debug for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElementType")
            .field("name", &self.name)
            .field("events", &self.events)
            .field(
                "restrictions",
                &self.restrictions.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ElementType {
    /// Creates an element type with no events or restrictions.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            events: Vec::new(),
            restrictions: Vec::new(),
        }
    }

    /// Creates a refinement of `base` under a new name (§6): the new type
    /// starts with all of the base's events and restrictions and may add
    /// more.
    pub fn refine(base: &ElementType, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            events: base.events.clone(),
            restrictions: base.restrictions.clone(),
        }
    }

    /// Adds an event class declaration.
    pub fn event(mut self, name: impl Into<String>, params: &[&str]) -> Self {
        self.events.push(EventDecl {
            name: name.into(),
            params: params.iter().map(|s| (*s).to_owned()).collect(),
        });
        self
    }

    /// Adds a restriction template, instantiated per element instance.
    pub fn restriction(
        mut self,
        name: impl Into<String>,
        body: impl Fn(&ElementInstance, &Structure) -> Formula + Send + Sync + 'static,
    ) -> Self {
        self.restrictions.push((name.into(), Arc::new(body)));
        self
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared event classes.
    pub fn events(&self) -> &[EventDecl] {
        &self.events
    }

    /// Names of the restriction templates.
    pub fn restriction_names(&self) -> impl Iterator<Item = &str> {
        self.restrictions.iter().map(|(n, _)| n.as_str())
    }
}

/// A concrete element created from an [`ElementType`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElementInstance {
    name: String,
    element: ElementId,
    classes: BTreeMap<String, ClassId>,
}

impl ElementInstance {
    /// The instance name (e.g. `"Var"` or `"db.data[3]"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element id in the specification's structure.
    pub fn id(&self) -> ElementId {
        self.element
    }

    /// The class id of the type's event `event`.
    ///
    /// # Panics
    ///
    /// Panics if the type declares no such event — a specification-author
    /// error, analogous to a typo in the paper's notation.
    pub fn class(&self, event: &str) -> ClassId {
        *self
            .classes
            .get(event)
            .unwrap_or_else(|| panic!("element {:?} has no event {event:?}", self.name))
    }

    /// Selector for events of `event` at this element
    /// (`this_element.Event`).
    ///
    /// # Panics
    ///
    /// Panics if the type declares no such event.
    pub fn sel(&self, event: &str) -> EventSel {
        EventSel::of_class(self.class(event)).at(self.element)
    }

    /// Iterates over `(event name, class id)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (&str, ClassId)> {
        self.classes.iter().map(|(n, &c)| (n.as_str(), c))
    }
}

/// Multiplicity of a group-type member role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Multiplicity {
    /// Exactly one member.
    One,
    /// A set of members; the count is supplied at instantiation
    /// (the paper's `{data[loc:1..N]} : SET OF Variable`).
    Set,
}

#[derive(Clone)]
enum MemberType {
    Element(ElementType),
    Group(Box<GroupType>),
}

/// A group type description (§6).
///
/// Members are *roles*: named slots filled with fresh element/group
/// instances at instantiation. Ports (§4) designate member events as the
/// group's access holes.
#[derive(Clone)]
pub struct GroupType {
    name: String,
    members: Vec<(String, MemberType, Multiplicity)>,
    ports: Vec<(String, String)>,
    restrictions: Vec<(String, GroupRestrictionFn)>,
}

impl fmt::Debug for GroupType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupType")
            .field("name", &self.name)
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|(n, _, m)| (n, m))
                    .collect::<Vec<_>>(),
            )
            .field("ports", &self.ports)
            .finish()
    }
}

impl GroupType {
    /// Creates a group type with no members.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            members: Vec::new(),
            ports: Vec::new(),
            restrictions: Vec::new(),
        }
    }

    /// Creates a refinement of `base` under a new name.
    pub fn refine(base: &GroupType, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            members: base.members.clone(),
            ports: base.ports.clone(),
            restrictions: base.restrictions.clone(),
        }
    }

    /// Adds a single element member role.
    pub fn element_member(mut self, role: impl Into<String>, ty: ElementType) -> Self {
        self.members
            .push((role.into(), MemberType::Element(ty), Multiplicity::One));
        self
    }

    /// Adds a set-of-elements member role (count fixed at instantiation).
    pub fn element_set(mut self, role: impl Into<String>, ty: ElementType) -> Self {
        self.members
            .push((role.into(), MemberType::Element(ty), Multiplicity::Set));
        self
    }

    /// Adds a single nested-group member role.
    pub fn group_member(mut self, role: impl Into<String>, ty: GroupType) -> Self {
        self.members.push((
            role.into(),
            MemberType::Group(Box::new(ty)),
            Multiplicity::One,
        ));
        self
    }

    /// Adds a set-of-groups member role.
    pub fn group_set(mut self, role: impl Into<String>, ty: GroupType) -> Self {
        self.members.push((
            role.into(),
            MemberType::Group(Box::new(ty)),
            Multiplicity::Set,
        ));
        self
    }

    /// Declares `role.event` as a port of this group (§4). `role` must be
    /// an element member role; for `Set` roles, the event is a port at
    /// every member.
    pub fn port(mut self, role: impl Into<String>, event: impl Into<String>) -> Self {
        self.ports.push((role.into(), event.into()));
        self
    }

    /// Adds a restriction template, instantiated per group instance.
    pub fn restriction(
        mut self,
        name: impl Into<String>,
        body: impl Fn(&GroupInstance, &Structure) -> Formula + Send + Sync + 'static,
    ) -> Self {
        self.restrictions.push((name.into(), Arc::new(body)));
        self
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A concrete group created from a [`GroupType`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroupInstance {
    name: String,
    group: GroupId,
    elements: BTreeMap<String, Vec<ElementInstance>>,
    groups: BTreeMap<String, Vec<GroupInstance>>,
}

impl GroupInstance {
    /// The instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The group id in the specification's structure.
    pub fn id(&self) -> GroupId {
        self.group
    }

    /// The single element filling `role`.
    ///
    /// # Panics
    ///
    /// Panics if the role is missing or not an element role.
    pub fn element(&self, role: &str) -> &ElementInstance {
        &self.elements(role)[0]
    }

    /// All element instances filling `role` (length 1 for `One` roles).
    ///
    /// # Panics
    ///
    /// Panics if the role is missing or not an element role.
    pub fn elements(&self, role: &str) -> &[ElementInstance] {
        self.elements
            .get(role)
            .unwrap_or_else(|| panic!("group {:?} has no element role {role:?}", self.name))
    }

    /// The single nested group filling `role`.
    ///
    /// # Panics
    ///
    /// Panics if the role is missing or not a group role.
    pub fn subgroup(&self, role: &str) -> &GroupInstance {
        &self.subgroups(role)[0]
    }

    /// All nested group instances filling `role`.
    ///
    /// # Panics
    ///
    /// Panics if the role is missing or not a group role.
    pub fn subgroups(&self, role: &str) -> &[GroupInstance] {
        self.groups
            .get(role)
            .unwrap_or_else(|| panic!("group {:?} has no group role {role:?}", self.name))
    }
}

/// A named restriction of a specification.
#[derive(Clone, PartialEq, Debug)]
pub struct Restriction {
    /// Restriction name, e.g. `"Var.getval-yields-last-assign"`.
    pub name: String,
    /// The formula.
    pub formula: Formula,
}

/// Errors arising while building a specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SpecError {
    /// An underlying structure declaration failed.
    Structure(StructureError),
    /// A group-type port referenced a role or event that does not exist.
    UnknownPort {
        /// The group type name.
        group: String,
        /// The role referenced.
        role: String,
        /// The event referenced.
        event: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Structure(e) => write!(f, "{e}"),
            SpecError::UnknownPort { group, role, event } => {
                write!(
                    f,
                    "group type {group:?}: port {role}.{event} does not exist"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<StructureError> for SpecError {
    fn from(e: StructureError) -> Self {
        SpecError::Structure(e)
    }
}

/// Incremental builder for a [`crate::Specification`]: instantiates types,
/// accumulates restrictions and thread declarations, and produces the final
/// structure.
pub struct SpecBuilder {
    name: String,
    structure: Structure,
    restrictions: Vec<Restriction>,
    threads: Vec<ThreadSpec>,
}

impl fmt::Debug for SpecBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecBuilder")
            .field("name", &self.name)
            .field("restrictions", &self.restrictions.len())
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl SpecBuilder {
    /// Creates a builder for a specification called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            structure: Structure::new(),
            restrictions: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// The structure built so far (read access for formula construction).
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Mutable access to the structure, for declarations not covered by
    /// the type layer (extra groups, ports, memberships).
    pub fn structure_mut(&mut self) -> &mut Structure {
        &mut self.structure
    }

    fn declare_class(&mut self, decl: &EventDecl, owner: &str) -> Result<ClassId, SpecError> {
        let params: Vec<&str> = decl.params.iter().map(String::as_str).collect();
        match self.structure.add_class(decl.name.clone(), &params) {
            Ok(id) => Ok(id),
            Err(StructureError::ClassConflict(_)) => {
                // Same event name with different parameters elsewhere:
                // qualify by the owning type, as the paper would write
                // `Type.Event`.
                Ok(self
                    .structure
                    .add_class(format!("{owner}.{}", decl.name), &params)?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Instantiates an element type as a fresh element called `name`,
    /// adding the type's restrictions (qualified with the instance name).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the underlying declarations fail (e.g.
    /// duplicate instance name).
    pub fn instantiate_element(
        &mut self,
        ty: &ElementType,
        name: impl Into<String>,
    ) -> Result<ElementInstance, SpecError> {
        let name = name.into();
        let mut classes = BTreeMap::new();
        let mut class_ids = Vec::new();
        for decl in &ty.events {
            let id = self.declare_class(decl, &ty.name)?;
            classes.insert(decl.name.clone(), id);
            class_ids.push(id);
        }
        let element = self.structure.add_element(name.clone(), &class_ids)?;
        let instance = ElementInstance {
            name: name.clone(),
            element,
            classes,
        };
        for (rname, body) in &ty.restrictions {
            let formula = body(&instance, &self.structure);
            self.restrictions.push(Restriction {
                name: format!("{name}.{rname}"),
                formula,
            });
        }
        Ok(instance)
    }

    /// Instantiates `count` elements of a type, named `base[0..count)`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if any instantiation fails.
    pub fn instantiate_element_set(
        &mut self,
        ty: &ElementType,
        base: &str,
        count: usize,
    ) -> Result<Vec<ElementInstance>, SpecError> {
        (0..count)
            .map(|i| self.instantiate_element(ty, format!("{base}[{i}]")))
            .collect()
    }

    /// Instantiates a group type as a fresh group called `name`. For each
    /// `Set` role, `counts` must supply `(role, n)`; missing roles default
    /// to one member.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if declarations fail or a port references a
    /// missing role/event.
    pub fn instantiate_group(
        &mut self,
        ty: &GroupType,
        name: impl Into<String>,
        counts: &[(&str, usize)],
    ) -> Result<GroupInstance, SpecError> {
        let name = name.into();
        let mut elements: BTreeMap<String, Vec<ElementInstance>> = BTreeMap::new();
        let mut groups: BTreeMap<String, Vec<GroupInstance>> = BTreeMap::new();
        let mut member_refs: Vec<NodeRef> = Vec::new();

        for (role, member, mult) in &ty.members {
            let n = match mult {
                Multiplicity::One => 1,
                Multiplicity::Set => counts
                    .iter()
                    .find(|(r, _)| r == role)
                    .map(|&(_, n)| n)
                    .unwrap_or(1),
            };
            for i in 0..n {
                let member_name = match mult {
                    Multiplicity::One => format!("{name}.{role}"),
                    Multiplicity::Set => format!("{name}.{role}[{i}]"),
                };
                match member {
                    MemberType::Element(et) => {
                        let inst = self.instantiate_element(et, member_name)?;
                        member_refs.push(inst.id().into());
                        elements.entry(role.clone()).or_default().push(inst);
                    }
                    MemberType::Group(gt) => {
                        let inst = self.instantiate_group(gt, member_name, counts)?;
                        member_refs.push(NodeRef::Group(inst.id()));
                        groups.entry(role.clone()).or_default().push(inst);
                    }
                }
            }
        }

        let group = self.structure.add_group(name.clone(), &member_refs)?;
        for (role, event) in &ty.ports {
            let insts = elements.get(role).ok_or_else(|| SpecError::UnknownPort {
                group: ty.name.clone(),
                role: role.clone(),
                event: event.clone(),
            })?;
            for inst in insts {
                let class =
                    inst.classes
                        .get(event)
                        .copied()
                        .ok_or_else(|| SpecError::UnknownPort {
                            group: ty.name.clone(),
                            role: role.clone(),
                            event: event.clone(),
                        })?;
                self.structure.add_port(group, inst.id(), class)?;
            }
        }

        let instance = GroupInstance {
            name: name.clone(),
            group,
            elements,
            groups,
        };
        for (rname, body) in &ty.restrictions {
            let formula = body(&instance, &self.structure);
            self.restrictions.push(Restriction {
                name: format!("{name}.{rname}"),
                formula,
            });
        }
        Ok(instance)
    }

    /// Adds a top-level restriction.
    pub fn add_restriction(&mut self, name: impl Into<String>, formula: Formula) {
        self.restrictions.push(Restriction {
            name: name.into(),
            formula,
        });
    }

    /// Declares a thread type (§8.3) with one or more alternative paths.
    /// Returns its id for use in thread predicates.
    pub fn declare_thread(
        &mut self,
        name: impl Into<String>,
        paths: Vec<Vec<EventSel>>,
    ) -> ThreadTypeId {
        let ty = ThreadTypeId::from_raw(self.threads.len() as u32);
        self.threads.push(ThreadSpec {
            name: name.into(),
            ty,
            paths,
        });
        ty
    }

    /// Finishes the builder, producing an immutable specification.
    pub fn finish(self) -> crate::Specification {
        crate::Specification::from_parts(self.name, self.structure, self.restrictions, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_logic::{Formula, ValueTerm};

    fn variable_type() -> ElementType {
        ElementType::new("Variable")
            .event("Assign", &["newval"])
            .event("Getval", &["oldval"])
            .restriction("getval-yields-last-assign", |inst, _| {
                Formula::forall(
                    "a",
                    inst.sel("Assign"),
                    Formula::forall(
                        "g",
                        inst.sel("Getval"),
                        Formula::enables("a", "g").implies(Formula::value_eq(
                            ValueTerm::param("a", "newval"),
                            ValueTerm::param("g", "oldval"),
                        )),
                    ),
                )
            })
    }

    #[test]
    fn instantiate_element_creates_classes_and_restriction() {
        let mut sb = SpecBuilder::new("Test");
        let var = sb.instantiate_element(&variable_type(), "Var").unwrap();
        assert_eq!(var.name(), "Var");
        assert!(sb.structure().class("Assign").is_some());
        assert!(sb.structure().element("Var").is_some());
        let spec = sb.finish();
        assert_eq!(spec.restrictions().len(), 1);
        assert_eq!(spec.restrictions()[0].name, "Var.getval-yields-last-assign");
    }

    #[test]
    fn two_instances_share_classes() {
        let mut sb = SpecBuilder::new("Test");
        let v1 = sb.instantiate_element(&variable_type(), "X").unwrap();
        let v2 = sb.instantiate_element(&variable_type(), "Y").unwrap();
        assert_eq!(v1.class("Assign"), v2.class("Assign"));
        assert_ne!(v1.id(), v2.id());
        // Selectors are element-scoped, so restrictions stay per-instance.
        assert_ne!(v1.sel("Assign"), v2.sel("Assign"));
    }

    #[test]
    fn conflicting_event_decl_gets_qualified_class() {
        let other = ElementType::new("Weird").event("Assign", &["a", "b"]);
        let mut sb = SpecBuilder::new("Test");
        sb.instantiate_element(&variable_type(), "Var").unwrap();
        let w = sb.instantiate_element(&other, "W").unwrap();
        // Same event name, different params → qualified global class name.
        assert!(sb.structure().class("Weird.Assign").is_some());
        assert_eq!(
            sb.structure().class_info(w.class("Assign")).name(),
            "Weird.Assign"
        );
    }

    #[test]
    fn refinement_extends_base() {
        let base = variable_type();
        let typed = ElementType::refine(&base, "IntegerVariable")
            .restriction("values-are-ints", |_inst, _s| Formula::True);
        assert_eq!(typed.events().len(), 2);
        assert_eq!(typed.restriction_names().count(), 2);
        assert_eq!(base.restriction_names().count(), 1, "base unchanged");
        let mut sb = SpecBuilder::new("Test");
        sb.instantiate_element(&typed, "IV").unwrap();
        let spec = sb.finish();
        assert_eq!(spec.restrictions().len(), 2);
    }

    #[test]
    fn instantiate_set_names_indexed() {
        let mut sb = SpecBuilder::new("Test");
        let vars = sb
            .instantiate_element_set(&variable_type(), "data", 3)
            .unwrap();
        assert_eq!(vars.len(), 3);
        assert_eq!(vars[0].name(), "data[0]");
        assert_eq!(vars[2].name(), "data[2]");
    }

    #[test]
    fn group_instantiation_with_set_roles_and_ports() {
        // DataBase = GROUP TYPE(control: RWControl, {data}: SET OF Variable)
        let control = ElementType::new("RWControl")
            .event("ReqRead", &["loc"])
            .event("StartRead", &["loc"]);
        let db = GroupType::new("DataBase")
            .element_member("control", control)
            .element_set("data", variable_type())
            .port("control", "ReqRead");
        let mut sb = SpecBuilder::new("Test");
        let inst = sb.instantiate_group(&db, "db", &[("data", 4)]).unwrap();
        assert_eq!(inst.elements("data").len(), 4);
        assert_eq!(inst.element("control").name(), "db.control");
        let s = sb.structure();
        let g = s.group("db").unwrap();
        assert_eq!(s.group_info(g).members().len(), 5);
        // Port registered on the control element's ReqRead class.
        assert_eq!(s.group_info(g).ports().len(), 1);
        assert_eq!(
            s.group_info(g).ports()[0],
            (
                inst.element("control").id(),
                inst.element("control").class("ReqRead")
            )
        );
    }

    #[test]
    fn nested_group_instantiation() {
        let inner = GroupType::new("Proc")
            .element_member("code", ElementType::new("Code").event("Step", &[]));
        let outer = GroupType::new("System").group_set("procs", inner);
        let mut sb = SpecBuilder::new("Test");
        let sys = sb
            .instantiate_group(&outer, "sys", &[("procs", 2)])
            .unwrap();
        assert_eq!(sys.subgroups("procs").len(), 2);
        assert_eq!(
            sys.subgroups("procs")[1].element("code").name(),
            "sys.procs[1].code"
        );
        // Firewall: code of proc 0 cannot access code of proc 1.
        let s = sb.structure();
        let c0 = sys.subgroups("procs")[0].element("code").id();
        let c1 = sys.subgroups("procs")[1].element("code").id();
        assert!(!s.access(c0, c1.into()));
    }

    #[test]
    fn single_group_member_role() {
        let inner = GroupType::new("Mailbox")
            .element_member("slot", ElementType::new("Slot").event("Post", &[]));
        let outer = GroupType::new("Agent").group_member("mbox", inner);
        let mut sb = SpecBuilder::new("Test");
        let agent = sb.instantiate_group(&outer, "a", &[]).unwrap();
        assert_eq!(agent.subgroup("mbox").name(), "a.mbox");
        assert_eq!(agent.subgroup("mbox").element("slot").name(), "a.mbox.slot");
    }

    #[test]
    fn group_refinement_copies_everything() {
        let base = GroupType::new("Base")
            .element_member("x", ElementType::new("E").event("A", &[]))
            .port("x", "A")
            .restriction("r", |_g, _s| Formula::True);
        let refined =
            GroupType::refine(&base, "Refined").restriction("r2", |_g, _s| Formula::False);
        let mut sb = SpecBuilder::new("Test");
        sb.instantiate_group(&refined, "g", &[]).unwrap();
        let spec = sb.finish();
        assert_eq!(spec.restrictions().len(), 2);
        assert!(spec.restriction("g.r").is_some());
        assert!(spec.restriction("g.r2").is_some());
        let s = spec.structure();
        assert_eq!(s.group_info(s.group("g").unwrap()).ports().len(), 1);
    }

    #[test]
    fn unknown_port_rejected() {
        let bad = GroupType::new("Bad")
            .element_member("x", ElementType::new("E").event("A", &[]))
            .port("x", "Missing");
        let mut sb = SpecBuilder::new("Test");
        assert!(matches!(
            sb.instantiate_group(&bad, "b", &[]),
            Err(SpecError::UnknownPort { .. })
        ));
        let bad_role = GroupType::new("Bad2")
            .element_member("x", ElementType::new("E2").event("A", &[]))
            .port("y", "A");
        let mut sb2 = SpecBuilder::new("Test2");
        assert!(matches!(
            sb2.instantiate_group(&bad_role, "b2", &[]),
            Err(SpecError::UnknownPort { .. })
        ));
    }

    #[test]
    fn duplicate_instance_name_rejected() {
        let mut sb = SpecBuilder::new("Test");
        sb.instantiate_element(&variable_type(), "Var").unwrap();
        assert!(matches!(
            sb.instantiate_element(&variable_type(), "Var"),
            Err(SpecError::Structure(StructureError::DuplicateName(_)))
        ));
    }

    #[test]
    #[should_panic(expected = "has no event")]
    fn missing_event_selector_panics() {
        let mut sb = SpecBuilder::new("Test");
        let var = sb.instantiate_element(&variable_type(), "Var").unwrap();
        let _ = var.sel("Nonexistent");
    }

    #[test]
    fn group_set_multiplicity_defaults_to_one() {
        let gt = GroupType::new("G").element_set("xs", ElementType::new("E").event("A", &[]));
        let mut sb = SpecBuilder::new("Test");
        let g = sb.instantiate_group(&gt, "g", &[]).unwrap();
        assert_eq!(g.elements("xs").len(), 1);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        let et = variable_type();
        assert!(format!("{et:?}").contains("Variable"));
        let gt = GroupType::new("G");
        assert!(format!("{gt:?}").contains('G'));
        let sb = SpecBuilder::new("S");
        assert!(format!("{sb:?}").contains('S'));
    }
}
