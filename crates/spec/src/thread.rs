//! The GEM thread mechanism (§8.3).
//!
//! A *thread* is an identifier associated with a chain of enabled events of
//! a specified form, defined by a path-expression-like notation; each
//! thread may be thought of as a sequential process (e.g. one
//! Readers/Writers transaction). The paper's two thread restrictions are:
//!
//! 1. a unique thread identifier is created for each event matching the
//!    head of a path, and
//! 2. the identifier is passed along the control path as long as events
//!    enable one another in the prescribed order.
//!
//! [`infer_threads`] implements exactly that assignment over a finished
//! computation, and [`check_thread_tags`] verifies that a (possibly
//! substrate-assigned) tagging obeys the discipline.

use std::collections::HashMap;

use gem_core::{Computation, EventId, ThreadTag, ThreadTypeId};
use gem_logic::EventSel;

/// A declared thread type: a name, an id, and one or more alternative
/// paths (sequences of event selectors).
///
/// The Readers/Writers thread of §8.3 has two alternatives:
/// `Read :: ReqRead :: StartRead :: Getval :: EndRead :: FinishRead` and
/// the corresponding write path.
#[derive(Clone, Debug)]
pub struct ThreadSpec {
    /// Human-readable name, e.g. `"pi_RW"`.
    pub name: String,
    /// The thread type id used in tags and formulae.
    pub ty: ThreadTypeId,
    /// Alternative paths; each path is a sequence of event selectors.
    pub paths: Vec<Vec<EventSel>>,
}

impl ThreadSpec {
    /// True if `event` (of `computation`) matches the head of some path.
    pub fn matches_head(&self, computation: &Computation, event: EventId) -> bool {
        let ev = computation.event(event);
        self.paths
            .iter()
            .any(|p| p.first().is_some_and(|sel| sel.matches(ev)))
    }
}

/// Computes the thread assignment induced by `specs` and returns a copy of
/// the computation with events re-tagged accordingly (existing tags of the
/// same thread types are replaced; tags of other types are preserved).
///
/// For each path head match a fresh instance is created; the tag is then
/// propagated along enable edges matching each successive selector of the
/// path. If a stage enables several matching events (a fork within the
/// transaction), all of them receive the tag.
pub fn infer_threads(computation: &Computation, specs: &[ThreadSpec]) -> Computation {
    let mut tags: HashMap<EventId, Vec<ThreadTag>> = HashMap::new();
    for ev in computation.events() {
        let preserved: Vec<ThreadTag> = ev
            .threads()
            .iter()
            .copied()
            .filter(|t| specs.iter().all(|s| s.ty != t.thread_type()))
            .collect();
        if !preserved.is_empty() {
            tags.insert(ev.id(), preserved);
        }
    }
    for spec in specs {
        let mut instance = 0u32;
        // Heads in topological order so instance numbers follow causality.
        for &e in computation.closure().topological() {
            for path in &spec.paths {
                let Some(head) = path.first() else { continue };
                if !head.matches(computation.event(e)) {
                    continue;
                }
                let tag = ThreadTag::new(spec.ty, instance);
                instance += 1;
                // Walk the chain: (event, stage) pairs.
                let mut frontier = vec![(e, 0usize)];
                let mut seen = vec![(e, 0usize)];
                while let Some((cur, stage)) = frontier.pop() {
                    tags.entry(cur).or_default().push(tag);
                    if stage + 1 >= path.len() {
                        continue;
                    }
                    for &next in computation.enabled_from(cur) {
                        if path[stage + 1].matches(computation.event(next))
                            && !seen.contains(&(next, stage + 1))
                        {
                            seen.push((next, stage + 1));
                            frontier.push((next, stage + 1));
                        }
                    }
                }
                break; // one instance per head event, first matching path
            }
        }
    }
    computation.retagged(|e| {
        let mut ts = tags.get(&e).cloned().unwrap_or_default();
        ts.sort();
        ts.dedup();
        ts
    })
}

/// A violation of the thread discipline of §8.3.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ThreadViolation {
    /// An event matching a path head carries no tag of the thread type.
    UntaggedHead {
        /// The head event.
        event: EventId,
    },
    /// Two distinct head events carry the same instance tag.
    DuplicateInstance {
        /// First head event.
        first: EventId,
        /// Second head event.
        second: EventId,
        /// The shared tag.
        tag: ThreadTag,
    },
    /// A tagged non-head event has no enabler carrying the same tag — the
    /// identifier was not "passed along" a control path.
    OrphanTag {
        /// The offending event.
        event: EventId,
        /// The unexplained tag.
        tag: ThreadTag,
    },
}

impl std::fmt::Display for ThreadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadViolation::UntaggedHead { event } => {
                write!(f, "head event {event} carries no thread tag")
            }
            ThreadViolation::DuplicateInstance { first, second, tag } => {
                write!(f, "head events {first} and {second} share tag {tag}")
            }
            ThreadViolation::OrphanTag { event, tag } => {
                write!(
                    f,
                    "event {event} carries tag {tag} not passed from any enabler"
                )
            }
        }
    }
}

/// Checks that the computation's existing tags of `spec`'s thread type
/// follow the discipline: unique fresh instances at path heads, and every
/// other tag inherited from an enabler.
pub fn check_thread_tags(computation: &Computation, spec: &ThreadSpec) -> Vec<ThreadViolation> {
    let mut violations = Vec::new();
    let mut head_tags: HashMap<ThreadTag, EventId> = HashMap::new();
    for ev in computation.events() {
        let is_head = spec.matches_head(computation, ev.id());
        let my_tags: Vec<ThreadTag> = ev
            .threads()
            .iter()
            .copied()
            .filter(|t| t.thread_type() == spec.ty)
            .collect();
        if is_head {
            if my_tags.is_empty() {
                violations.push(ThreadViolation::UntaggedHead { event: ev.id() });
            }
            for &t in &my_tags {
                if let Some(&other) = head_tags.get(&t) {
                    violations.push(ThreadViolation::DuplicateInstance {
                        first: other,
                        second: ev.id(),
                        tag: t,
                    });
                } else {
                    head_tags.insert(t, ev.id());
                }
            }
        } else {
            for &t in &my_tags {
                let inherited = computation
                    .enablers_of(ev.id())
                    .iter()
                    .any(|&p| computation.event(p).in_thread(t));
                if !inherited {
                    violations.push(ThreadViolation::OrphanTag {
                        event: ev.id(),
                        tag: t,
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ComputationBuilder, Structure};

    /// Two transactions: Req -> Start -> End, interleaved across two users.
    fn transactions() -> (Computation, ThreadSpec) {
        let mut s = Structure::new();
        let req = s.add_class("Req", &[]).unwrap();
        let start = s.add_class("Start", &[]).unwrap();
        let end = s.add_class("End", &[]).unwrap();
        let u1 = s.add_element("U1", &[req, start, end]).unwrap();
        let u2 = s.add_element("U2", &[req, start, end]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let r1 = b.add_event(u1, req, vec![]).unwrap();
        let s1 = b.add_event(u1, start, vec![]).unwrap();
        let e1 = b.add_event(u1, end, vec![]).unwrap();
        let r2 = b.add_event(u2, req, vec![]).unwrap();
        let s2 = b.add_event(u2, start, vec![]).unwrap();
        let e2 = b.add_event(u2, end, vec![]).unwrap();
        for (a, bb) in [(r1, s1), (s1, e1), (r2, s2), (s2, e2)] {
            b.enable(a, bb).unwrap();
        }
        let c = b.seal().unwrap();
        let spec = ThreadSpec {
            name: "pi".into(),
            ty: ThreadTypeId::from_raw(0),
            paths: vec![vec![
                EventSel::of_class(c.structure().class("Req").unwrap()),
                EventSel::of_class(c.structure().class("Start").unwrap()),
                EventSel::of_class(c.structure().class("End").unwrap()),
            ]],
        };
        (c, spec)
    }

    #[test]
    fn infer_assigns_unique_instances() {
        let (c, spec) = transactions();
        let tagged = infer_threads(&c, std::slice::from_ref(&spec));
        let ids: Vec<Vec<ThreadTag>> = tagged
            .events()
            .iter()
            .map(|e| e.threads().to_vec())
            .collect();
        // Every event is tagged; each chain has a consistent instance.
        assert!(ids.iter().all(|t| t.len() == 1));
        let chain1: Vec<_> = ids[..3].iter().map(|t| t[0].instance()).collect();
        let chain2: Vec<_> = ids[3..].iter().map(|t| t[0].instance()).collect();
        assert_eq!(chain1[0], chain1[1]);
        assert_eq!(chain1[1], chain1[2]);
        assert_eq!(chain2[0], chain2[1]);
        assert_ne!(chain1[0], chain2[0], "distinct transactions, distinct ids");
    }

    #[test]
    fn inferred_tags_pass_discipline_check() {
        let (c, spec) = transactions();
        let tagged = infer_threads(&c, std::slice::from_ref(&spec));
        assert!(check_thread_tags(&tagged, &spec).is_empty());
    }

    #[test]
    fn untagged_head_detected() {
        let (c, spec) = transactions();
        // No tags at all: every Req head is untagged.
        let vs = check_thread_tags(&c, &spec);
        assert_eq!(
            vs.iter()
                .filter(|v| matches!(v, ThreadViolation::UntaggedHead { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn duplicate_instance_detected() {
        let (c, spec) = transactions();
        let ty = spec.ty;
        let tag = ThreadTag::new(ty, 0);
        let bad = c.retagged(|e| {
            // Tag both Req heads with the same instance.
            let ev = c.event(e);
            if ev.seq() == 0 && spec.matches_head(&c, e) {
                vec![tag]
            } else {
                vec![]
            }
        });
        let vs = check_thread_tags(&bad, &spec);
        assert!(vs
            .iter()
            .any(|v| matches!(v, ThreadViolation::DuplicateInstance { .. })));
    }

    #[test]
    fn orphan_tag_detected() {
        let (c, spec) = transactions();
        let ty = spec.ty;
        // Tag a Start event without tagging its enabling Req.
        let start_cls = c.structure().class("Start").unwrap();
        let bad = c.retagged(|e| {
            if c.event(e).class() == start_cls {
                vec![ThreadTag::new(ty, 9)]
            } else {
                vec![]
            }
        });
        let vs = check_thread_tags(&bad, &spec);
        assert!(vs
            .iter()
            .any(|v| matches!(v, ThreadViolation::OrphanTag { .. })));
    }

    #[test]
    fn alternative_paths_share_instance_counter() {
        // Read-or-write transaction type: heads of either class get
        // distinct instances.
        let mut s = Structure::new();
        let read = s.add_class("Read", &[]).unwrap();
        let write = s.add_class("Write", &[]).unwrap();
        let u = s.add_element("U", &[read, write]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(u, read, vec![]).unwrap();
        b.add_event(u, write, vec![]).unwrap();
        let c = b.seal().unwrap();
        let spec = ThreadSpec {
            name: "pi_RW".into(),
            ty: ThreadTypeId::from_raw(0),
            paths: vec![
                vec![EventSel::of_class(read)],
                vec![EventSel::of_class(write)],
            ],
        };
        let tagged = infer_threads(&c, &[spec]);
        let t0 = tagged.events()[0].threads()[0];
        let t1 = tagged.events()[1].threads()[0];
        assert_ne!(t0.instance(), t1.instance());
    }

    #[test]
    fn foreign_tags_preserved() {
        let (c, spec) = transactions();
        let foreign = ThreadTag::new(ThreadTypeId::from_raw(7), 3);
        let pre = c.retagged(|_| vec![foreign]);
        let tagged = infer_threads(&pre, &[spec]);
        assert!(tagged.events().iter().all(|e| e.in_thread(foreign)));
    }

    #[test]
    fn violation_display() {
        let v = ThreadViolation::UntaggedHead {
            event: EventId::from_raw(0),
        };
        assert!(v.to_string().contains("no thread tag"));
    }
}
