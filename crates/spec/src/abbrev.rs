//! Restriction abbreviations (§8.2): the common computational patterns of
//! concurrent systems as formula generators.
//!
//! Each function returns a closed [`Formula`] over the given event
//! selectors:
//!
//! * [`prerequisite`] — `E1 → E2`: every `e2` enabled by exactly one `e1`,
//!   each `e1` enabling at most one `e2`.
//! * [`chain`] — `E1 → E2 → … → En`.
//! * [`nondet_prerequisite`] — `{E…} → E`: each `e` enabled by exactly one
//!   event of the set.
//! * [`fork`] / [`join`] — `E → {E…}` / `{E…} → E`.
//! * [`mutual_exclusion`] / [`priority`] — the transaction-level patterns
//!   of §8.3, phrased over thread instances.

use gem_core::ThreadTypeId;
use gem_logic::{EventSel, Formula};

/// `E1 → E2` (§8.2): `E1` is a *prerequisite* to `E2`.
///
/// ```text
/// (∀ e2:E2)[ occurred(e2) ⊃ (∃! e1:E1)[e1 ⊳ e2] ]
///  ∧ (∀ e1:E1)[ at most one e2:E2 with e1 ⊳ e2 ]
/// ```
pub fn prerequisite(source: &EventSel, target: &EventSel) -> Formula {
    let each_enabled = Formula::forall(
        "__t",
        target.clone(),
        Formula::occurred("__t").implies(Formula::exists_unique(
            "__s",
            source.clone(),
            Formula::enables("__s", "__t"),
        )),
    );
    let at_most_one = Formula::forall(
        "__s",
        source.clone(),
        Formula::at_most_one("__t", target.clone(), Formula::enables("__s", "__t")),
    );
    each_enabled.and(at_most_one)
}

/// `E1 → E2 → … → En`: conjunction of consecutive [`prerequisite`]s.
///
/// # Panics
///
/// Panics if fewer than two selectors are given.
pub fn chain(sels: &[EventSel]) -> Formula {
    assert!(sels.len() >= 2, "a chain needs at least two event classes");
    let mut parts = Vec::with_capacity(sels.len() - 1);
    for pair in sels.windows(2) {
        parts.push(prerequisite(&pair[0], &pair[1]));
    }
    Formula::And(parts)
}

/// `{E₁, …, Eₖ} → E` (§8.2): nondeterministic prerequisite — every `e:E`
/// is enabled by exactly one event drawn from the union of the source
/// classes, and each source event enables at most one `e:E`.
pub fn nondet_prerequisite(sources: &[EventSel], target: &EventSel) -> Formula {
    let any_source = |var: &str| {
        Formula::Or(
            sources
                .iter()
                .map(|s| Formula::matches(var, s.clone()))
                .collect(),
        )
    };
    let each_enabled = Formula::forall(
        "__t",
        target.clone(),
        Formula::occurred("__t").implies(Formula::exists_unique(
            "__s",
            EventSel::any(),
            any_source("__s").and(Formula::enables("__s", "__t")),
        )),
    );
    let at_most_one = Formula::forall(
        "__s",
        EventSel::any(),
        any_source("__s").implies(Formula::at_most_one(
            "__t",
            target.clone(),
            Formula::enables("__s", "__t"),
        )),
    );
    each_enabled.and(at_most_one)
}

/// Event FORK (§8.2): `E → {E₁, …, Eₖ}` — `E` is a prerequisite to each
/// target class.
pub fn fork(source: &EventSel, targets: &[EventSel]) -> Formula {
    Formula::And(targets.iter().map(|t| prerequisite(source, t)).collect())
}

/// Event JOIN (§8.2): `{E₁, …, Eₖ} → E` — each source class is a
/// prerequisite to `E`.
pub fn join(sources: &[EventSel], target: &EventSel) -> Formula {
    Formula::And(sources.iter().map(|s| prerequisite(s, target)).collect())
}

/// An event of `start_sel` is *in progress* in the current history: it
/// occurred but the matching `end_sel` event of the same thread instance
/// has not. Used as a building block for exclusion restrictions.
fn in_progress(var: &str, end_sel: &EventSel, ty: ThreadTypeId) -> Formula {
    Formula::occurred(var).and(
        Formula::exists(
            "__end",
            end_sel.clone(),
            Formula::same_thread(var, "__end", ty).and(Formula::occurred("__end")),
        )
        .not(),
    )
}

/// Mutual exclusion between two transaction phases (§8.3's "writers
/// exclude others" pattern): henceforth, a `start1 … end1` phase and a
/// `start2 … end2` phase of *distinct* thread instances of type `ty` are
/// never simultaneously in progress.
///
/// When `start1`/`start2` describe the same class (writer vs writer), the
/// distinct-instance requirement is what keeps a phase from excluding
/// itself; for different classes it is harmless (instances differ anyway).
pub fn mutual_exclusion(
    start1: &EventSel,
    end1: &EventSel,
    start2: &EventSel,
    end2: &EventSel,
    ty: ThreadTypeId,
) -> Formula {
    Formula::forall(
        "__s1",
        start1.clone(),
        Formula::forall(
            "__s2",
            start2.clone(),
            Formula::distinct_threads("__s1", "__s2", ty).implies(
                in_progress("__s1", end1, ty)
                    .and(in_progress("__s2", end2, ty))
                    .not(),
            ),
        ),
    )
    .henceforth()
}

/// Priority of A-transactions over B-transactions (§8.3's Reader's
/// Priority pattern):
///
/// > If a request for A and a request for B are pending at the same time,
/// > the A must be serviced before the B.
///
/// ```text
/// ◻ ∀ ra:ReqA ∀ rb:ReqB ∀ sb:StartB .
///     [ samethread(rb, sb) ∧ ra at StartA ∧ rb at StartB ]
///   ⊃ ◻ [ occurred(sb) ⊃ ∃ sa:StartA . samethread(ra, sa) ∧ occurred(sa) ]
/// ```
pub fn priority(
    req_a: &EventSel,
    start_a: &EventSel,
    req_b: &EventSel,
    start_b: &EventSel,
    ty: ThreadTypeId,
) -> Formula {
    let pending = Formula::occurred("__ra")
        .and(Formula::occurred("__rb"))
        .and(Formula::at_control("__ra", start_a.clone()))
        .and(Formula::at_control("__rb", start_b.clone()));
    let serviced_first = Formula::occurred("__sb").implies(Formula::exists(
        "__sa",
        start_a.clone(),
        Formula::same_thread("__ra", "__sa", ty).and(Formula::occurred("__sa")),
    ));
    Formula::forall(
        "__ra",
        req_a.clone(),
        Formula::forall(
            "__rb",
            req_b.clone(),
            Formula::forall(
                "__sb",
                start_b.clone(),
                Formula::same_thread("__rb", "__sb", ty)
                    .and(pending)
                    .implies(serviced_first.henceforth()),
            ),
        ),
    )
    .henceforth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_core::{ComputationBuilder, Structure, ThreadTag};
    use gem_logic::{check, holds_on_computation, Strategy};

    fn setup() -> (
        Structure,
        gem_core::ClassId,
        gem_core::ClassId,
        gem_core::ElementId,
    ) {
        let mut s = Structure::new();
        let a = s.add_class("A", &[]).unwrap();
        let b = s.add_class("B", &[]).unwrap();
        let el = s.add_element("E", &[a, b]).unwrap();
        (s, a, b, el)
    }

    #[test]
    fn prerequisite_holds_for_paired_events() {
        let (s, a, b_cls, el) = setup();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(el, a, vec![]).unwrap();
        let b1 = b.add_event(el, b_cls, vec![]).unwrap();
        let a2 = b.add_event(el, a, vec![]).unwrap();
        let b2 = b.add_event(el, b_cls, vec![]).unwrap();
        b.enable(a1, b1).unwrap();
        b.enable(a2, b2).unwrap();
        let c = b.seal().unwrap();
        let f = prerequisite(&EventSel::of_class(a), &EventSel::of_class(b_cls));
        assert!(holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn prerequisite_fails_without_enabler() {
        let (s, a, b_cls, el) = setup();
        let mut b = ComputationBuilder::new(s);
        b.add_event(el, a, vec![]).unwrap();
        b.add_event(el, b_cls, vec![]).unwrap(); // no enable edge
        let c = b.seal().unwrap();
        let f = prerequisite(&EventSel::of_class(a), &EventSel::of_class(b_cls));
        assert!(!holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn prerequisite_fails_on_double_enable() {
        // One A enabling two Bs violates "at most one".
        let (s, a, b_cls, el) = setup();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(el, a, vec![]).unwrap();
        let b1 = b.add_event(el, b_cls, vec![]).unwrap();
        let b2 = b.add_event(el, b_cls, vec![]).unwrap();
        b.enable(a1, b1).unwrap();
        b.enable(a1, b2).unwrap();
        let c = b.seal().unwrap();
        let f = prerequisite(&EventSel::of_class(a), &EventSel::of_class(b_cls));
        assert!(!holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn prerequisite_fails_on_two_enablers() {
        let (s, a, b_cls, el) = setup();
        let mut b = ComputationBuilder::new(s);
        let a1 = b.add_event(el, a, vec![]).unwrap();
        let a2 = b.add_event(el, a, vec![]).unwrap();
        let b1 = b.add_event(el, b_cls, vec![]).unwrap();
        b.enable(a1, b1).unwrap();
        b.enable(a2, b1).unwrap();
        let c = b.seal().unwrap();
        let f = prerequisite(&EventSel::of_class(a), &EventSel::of_class(b_cls));
        assert!(!holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn chain_checks_consecutive_pairs() {
        let mut s = Structure::new();
        let cls: Vec<_> = ["A", "B", "C"]
            .iter()
            .map(|n| s.add_class(*n, &[]).unwrap())
            .collect();
        let el = s.add_element("E", &cls).unwrap();
        let mut b = ComputationBuilder::new(s);
        let e1 = b.add_event(el, cls[0], vec![]).unwrap();
        let e2 = b.add_event(el, cls[1], vec![]).unwrap();
        let e3 = b.add_event(el, cls[2], vec![]).unwrap();
        b.enable(e1, e2).unwrap();
        b.enable(e2, e3).unwrap();
        let c = b.seal().unwrap();
        let sels: Vec<_> = cls.iter().map(|&c| EventSel::of_class(c)).collect();
        assert!(holds_on_computation(&chain(&sels), &c).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_requires_two() {
        let _ = chain(&[EventSel::any()]);
    }

    #[test]
    fn nondet_prerequisite_accepts_either_source() {
        let mut s = Structure::new();
        let snd1 = s.add_class("Send1", &[]).unwrap();
        let snd2 = s.add_class("Send2", &[]).unwrap();
        let rcv = s.add_class("Recv", &[]).unwrap();
        let el = s.add_element("Chan", &[snd1, snd2, rcv]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let s1 = b.add_event(el, snd1, vec![]).unwrap();
        let r1 = b.add_event(el, rcv, vec![]).unwrap();
        let s2 = b.add_event(el, snd2, vec![]).unwrap();
        let r2 = b.add_event(el, rcv, vec![]).unwrap();
        b.enable(s1, r1).unwrap();
        b.enable(s2, r2).unwrap();
        let c = b.seal().unwrap();
        let f = nondet_prerequisite(
            &[EventSel::of_class(snd1), EventSel::of_class(snd2)],
            &EventSel::of_class(rcv),
        );
        assert!(holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn nondet_prerequisite_rejects_unenabled_target() {
        let mut s = Structure::new();
        let snd = s.add_class("Send", &[]).unwrap();
        let rcv = s.add_class("Recv", &[]).unwrap();
        let el = s.add_element("Chan", &[snd, rcv]).unwrap();
        let mut b = ComputationBuilder::new(s);
        b.add_event(el, rcv, vec![]).unwrap();
        let c = b.seal().unwrap();
        let f = nondet_prerequisite(&[EventSel::of_class(snd)], &EventSel::of_class(rcv));
        assert!(!holds_on_computation(&f, &c).unwrap());
    }

    #[test]
    fn fork_and_join() {
        let mut s = Structure::new();
        let f_cls = s.add_class("Fork", &[]).unwrap();
        let l = s.add_class("Left", &[]).unwrap();
        let r = s.add_class("Right", &[]).unwrap();
        let j = s.add_class("Join", &[]).unwrap();
        let el = s.add_element("E", &[f_cls, l, r, j]).unwrap();
        let mut b = ComputationBuilder::new(s);
        let ef = b.add_event(el, f_cls, vec![]).unwrap();
        let el1 = b.add_event(el, l, vec![]).unwrap();
        let er = b.add_event(el, r, vec![]).unwrap();
        let ej = b.add_event(el, j, vec![]).unwrap();
        b.enable(ef, el1).unwrap();
        b.enable(ef, er).unwrap();
        b.enable(el1, ej).unwrap();
        b.enable(er, ej).unwrap();
        let c = b.seal().unwrap();
        assert!(holds_on_computation(
            &fork(
                &EventSel::of_class(f_cls),
                &[EventSel::of_class(l), EventSel::of_class(r)]
            ),
            &c
        )
        .unwrap());
        assert!(holds_on_computation(
            &join(
                &[EventSel::of_class(l), EventSel::of_class(r)],
                &EventSel::of_class(j)
            ),
            &c
        )
        .unwrap());
    }

    /// Builds a toy transaction computation: start/end pairs tagged with
    /// thread instances, overlapping or not.
    fn phases(overlap: bool) -> (gem_core::Computation, ThreadTypeId) {
        let mut s = Structure::new();
        let start = s.add_class("Start", &[]).unwrap();
        let end = s.add_class("End", &[]).unwrap();
        let p = s.add_element("P", &[start, end]).unwrap();
        let q = s.add_element("Q", &[start, end]).unwrap();
        let ty = ThreadTypeId::from_raw(0);
        let mut b = ComputationBuilder::new(s);
        let s1 = b.add_event(p, start, vec![]).unwrap();
        let e1 = b.add_event(p, end, vec![]).unwrap();
        let s2 = b.add_event(q, start, vec![]).unwrap();
        let e2 = b.add_event(q, end, vec![]).unwrap();
        b.enable(s1, e1).unwrap();
        b.enable(s2, e2).unwrap();
        if !overlap {
            // Serialize: phase 1 entirely before phase 2.
            b.enable(e1, s2).unwrap();
        }
        b.tag_thread(s1, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(e1, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(s2, ThreadTag::new(ty, 1)).unwrap();
        b.tag_thread(e2, ThreadTag::new(ty, 1)).unwrap();
        (b.seal().unwrap(), ty)
    }

    /// Hand-built priority scenario: requests for A and B pending
    /// simultaneously; `b_first` controls which transaction starts first.
    fn priority_scenario(b_first: bool) -> (gem_core::Computation, ThreadTypeId) {
        let mut s = Structure::new();
        let req_a = s.add_class("ReqA", &[]).unwrap();
        let start_a = s.add_class("StartA", &[]).unwrap();
        let req_b = s.add_class("ReqB", &[]).unwrap();
        let start_b = s.add_class("StartB", &[]).unwrap();
        let ctl = s
            .add_element("Ctl", &[req_a, start_a, req_b, start_b])
            .unwrap();
        let ty = ThreadTypeId::from_raw(0);
        let mut b = ComputationBuilder::new(s);
        let ra = b.add_event(ctl, req_a, vec![]).unwrap();
        let rb = b.add_event(ctl, req_b, vec![]).unwrap();
        let (first, second) = if b_first {
            (start_b, start_a)
        } else {
            (start_a, start_b)
        };
        let s1 = b.add_event(ctl, first, vec![]).unwrap();
        let s2 = b.add_event(ctl, second, vec![]).unwrap();
        let (sa, sb) = if b_first { (s2, s1) } else { (s1, s2) };
        b.enable(ra, sa).unwrap();
        b.enable(rb, sb).unwrap();
        b.tag_thread(ra, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(sa, ThreadTag::new(ty, 0)).unwrap();
        b.tag_thread(rb, ThreadTag::new(ty, 1)).unwrap();
        b.tag_thread(sb, ThreadTag::new(ty, 1)).unwrap();
        (b.seal().unwrap(), ty)
    }

    #[test]
    fn priority_holds_when_a_serviced_first() {
        let (c, ty) = priority_scenario(false);
        let s = c.structure();
        let f = priority(
            &EventSel::of_class(s.class("ReqA").unwrap()),
            &EventSel::of_class(s.class("StartA").unwrap()),
            &EventSel::of_class(s.class("ReqB").unwrap()),
            &EventSel::of_class(s.class("StartB").unwrap()),
            ty,
        );
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(r.holds, "{:?}", r.counterexample.map(|x| x.describe(&c)));
    }

    #[test]
    fn priority_fails_when_b_overtakes() {
        let (c, ty) = priority_scenario(true);
        let s = c.structure();
        let f = priority(
            &EventSel::of_class(s.class("ReqA").unwrap()),
            &EventSel::of_class(s.class("StartA").unwrap()),
            &EventSel::of_class(s.class("ReqB").unwrap()),
            &EventSel::of_class(s.class("StartB").unwrap()),
            ty,
        );
        let r = check(&f, &c, Strategy::Linearizations { limit: 100 }).unwrap();
        assert!(!r.holds, "B started while A's earlier request was pending");
        assert!(r.counterexample.is_some());
    }

    #[test]
    fn mutual_exclusion_holds_when_serialized() {
        let (c, ty) = phases(false);
        let start = EventSel::of_class(c.structure().class("Start").unwrap());
        let end = EventSel::of_class(c.structure().class("End").unwrap());
        let f = mutual_exclusion(&start, &end, &start, &end, ty);
        let r = check(&f, &c, Strategy::Linearizations { limit: 1000 }).unwrap();
        assert!(r.holds, "{:?}", r.counterexample.map(|x| x.describe(&c)));
    }

    #[test]
    fn mutual_exclusion_fails_when_overlapping() {
        let (c, ty) = phases(true);
        let start = EventSel::of_class(c.structure().class("Start").unwrap());
        let end = EventSel::of_class(c.structure().class("End").unwrap());
        let f = mutual_exclusion(&start, &end, &start, &end, ty);
        let r = check(&f, &c, Strategy::Linearizations { limit: 1000 }).unwrap();
        assert!(!r.holds, "concurrent phases can both be in progress");
    }
}
