//! # gem-spec — the GEM specification layer
//!
//! The §6–§8 machinery of Lansky & Owicki's GEM on top of `gem-core` and
//! `gem-logic`:
//!
//! * **Type descriptions** (§6): [`ElementType`] and [`GroupType`] with
//!   refinement ([`ElementType::refine`]) and parameterization (types are
//!   values, so a parameterized type is a Rust function returning one).
//!   [`SpecBuilder`] instantiates types into a concrete structure.
//! * **Restriction abbreviations** (§8.2): [`prerequisite`], [`chain`],
//!   [`nondet_prerequisite`], [`fork`], [`join`], and the transaction
//!   patterns [`mutual_exclusion`] and [`priority`].
//! * **Threads** (§8.3): [`ThreadSpec`] path expressions,
//!   [`infer_threads`] assignment, and [`check_thread_tags`] discipline
//!   checking.
//! * **Specifications** (§3): [`Specification`] bundles structure,
//!   restrictions, and thread types; [`Specification::check`] decides
//!   legality of a computation.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gem_core::{ComputationBuilder, Value};
//! use gem_logic::Strategy;
//! use gem_spec::{prerequisite, ElementType, SpecBuilder};
//!
//! let buffer = ElementType::new("Buffer")
//!     .event("Put", &["item"])
//!     .event("Get", &["item"]);
//! let mut sb = SpecBuilder::new("OneSlot");
//! let buf = sb.instantiate_element(&buffer, "buf")?;
//! sb.add_restriction("put-then-get", prerequisite(&buf.sel("Put"), &buf.sel("Get")));
//! let spec = sb.finish();
//!
//! let s = spec.structure();
//! let (el, put, get) = (
//!     s.element("buf").unwrap(),
//!     s.class("Put").unwrap(),
//!     s.class("Get").unwrap(),
//! );
//! let mut b = ComputationBuilder::new(spec.structure_arc());
//! let p = b.add_event(el, put, vec![Value::Int(7)])?;
//! let g = b.add_event(el, get, vec![Value::Int(7)])?;
//! b.enable(p, g)?;
//! let c = b.seal()?;
//! assert!(spec.check(&c, Strategy::default())?.is_legal());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abbrev;
mod render;
mod spec;
mod thread;
mod types;

pub use abbrev::{
    chain, fork, join, mutual_exclusion, nondet_prerequisite, prerequisite, priority,
};
pub use render::render_specification;
pub use spec::{RestrictionResult, SpecReport, Specification};
pub use thread::{check_thread_tags, infer_threads, ThreadSpec, ThreadViolation};
pub use types::{
    ElementInstance, ElementType, EventDecl, GroupInstance, GroupType, Multiplicity, Restriction,
    SpecBuilder, SpecError,
};
