//! Finished specifications and specification checking.
//!
//! A [`Specification`] is the end product of the §6 instantiation process:
//! a structure (elements, groups, ports), a list of named restrictions,
//! and the declared thread types. [`Specification::check`] decides whether
//! a computation is *legal with respect to the specification* (§3):
//! it satisfies the implicit GEM legality restrictions and every explicit
//! restriction.

use std::fmt;
use std::sync::Arc;

use gem_core::{check_legality, Computation, History, Structure, Violation};
use gem_logic::{
    blame_on_computation, blame_on_sequence, check, check_many, Blame, CheckReport, EvalError,
    Formula, MultiCheck, Strategy,
};

use crate::thread::{infer_threads, ThreadSpec};
use crate::types::Restriction;

/// An immutable GEM specification.
#[derive(Clone, Debug)]
pub struct Specification {
    name: String,
    structure: Arc<Structure>,
    restrictions: Vec<Restriction>,
    threads: Vec<ThreadSpec>,
}

impl Specification {
    pub(crate) fn from_parts(
        name: String,
        structure: Structure,
        restrictions: Vec<Restriction>,
        threads: Vec<ThreadSpec>,
    ) -> Self {
        Self {
            name,
            structure: Arc::new(structure),
            restrictions,
            threads,
        }
    }

    /// The specification name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structure computations over this specification must use.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Shared handle to the structure, for
    /// [`ComputationBuilder::new`](gem_core::ComputationBuilder::new).
    pub fn structure_arc(&self) -> Arc<Structure> {
        Arc::clone(&self.structure)
    }

    /// The explicit restrictions, in declaration order.
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }

    /// The declared thread types.
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// Looks up a restriction by name.
    pub fn restriction(&self, name: &str) -> Option<&Formula> {
        self.restrictions
            .iter()
            .find(|r| r.name == name)
            .map(|r| &r.formula)
    }

    /// Applies the specification's thread assignment (§8.3) to a
    /// computation: returns a copy tagged according to the declared thread
    /// types' path expressions.
    pub fn assign_threads(&self, computation: &Computation) -> Computation {
        infer_threads(computation, &self.threads)
    }

    /// Checks whether `computation` is legal with respect to this
    /// specification: GEM legality restrictions plus every explicit
    /// restriction, the latter under `strategy` (temporal restrictions) or
    /// on the complete computation (immediate restrictions).
    ///
    /// Thread tags are assigned per the declared thread types before
    /// evaluation if the computation carries none of them.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a restriction formula is malformed.
    pub fn check(
        &self,
        computation: &Computation,
        strategy: Strategy,
    ) -> Result<SpecReport, EvalError> {
        let needs_tags = !self.threads.is_empty()
            && computation.events().iter().all(|e| {
                e.threads()
                    .iter()
                    .all(|t| self.threads.iter().all(|s| s.ty != t.thread_type()))
            });
        let tagged;
        let target: &Computation = if needs_tags {
            tagged = self.assign_threads(computation);
            &tagged
        } else {
            computation
        };

        let legality = check_legality(target);
        let probing = gem_obs::ambient::active();

        // Temporal restrictions share one enumeration of history
        // sequences (`check_many`): re-enumerating identical
        // linearizations once per restriction dominates check-bound
        // sweeps. Reports are identical to per-restriction `check` calls.
        let temporal: Vec<usize> = (0..self.restrictions.len())
            .filter(|&i| self.restrictions[i].formula.is_temporal())
            .collect();
        let share = temporal.len() > 1
            && matches!(
                strategy,
                Strategy::Linearizations { .. } | Strategy::StepSequences { .. }
            );
        let mut batched: Vec<Option<MultiCheck>> = if share {
            let formulas: Vec<&Formula> = temporal
                .iter()
                .map(|&i| &self.restrictions[i].formula)
                .collect();
            check_many(&formulas, target, strategy)
                .into_iter()
                .map(Some)
                .collect()
        } else {
            Vec::new()
        };

        let mut results = Vec::with_capacity(self.restrictions.len());
        for (i, r) in self.restrictions.iter().enumerate() {
            let started = if probing {
                Some(std::time::Instant::now())
            } else {
                None
            };
            let (report, batched_ns) = match temporal.iter().position(|&t| t == i) {
                Some(slot) if !batched.is_empty() => {
                    let outcome = batched[slot].take().expect("each slot consumed once");
                    (outcome.report?, Some(outcome.eval_ns))
                }
                _ => {
                    let effective = if r.formula.is_temporal() {
                        strategy
                    } else {
                        Strategy::Complete
                    };
                    (check(&r.formula, target, effective)?, None)
                }
            };
            if let Some(started) = started {
                // Batched restrictions report their attributed evaluation
                // time; the shared enumeration cost is deliberately
                // uncounted (it no longer belongs to any one restriction).
                let ns = batched_ns.unwrap_or_else(|| {
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
                });
                gem_obs::ambient::add("restriction.evals", 1);
                gem_obs::ambient::add(&format!("restriction.{}.evals", r.name), 1);
                gem_obs::ambient::time_ns(&format!("restriction.{}.check", r.name), ns);
                // Index-keyed twins of the name-keyed series: the formula
                // index is stable across renames and lets consumers (the
                // `gem profile` breakdown) join counters to the spec's
                // restriction list positionally.
                gem_obs::ambient::add(&format!("logic.check.by_restriction.{i}.evals"), 1);
                gem_obs::ambient::time_ns(&format!("logic.check.by_restriction.{i}.ns"), ns);
                if !report.holds {
                    gem_obs::ambient::add(&format!("restriction.{}.violations", r.name), 1);
                }
            }
            results.push(RestrictionResult {
                name: r.name.clone(),
                report,
            });
        }
        Ok(SpecReport { legality, results })
    }

    /// Blames each failed restriction in `report`: re-runs the evaluator
    /// along the falsification path of the recorded counterexample
    /// sequence (or the complete computation for restrictions without
    /// one), against the same thread-tagged target [`Specification::check`]
    /// evaluated. Restrictions whose blame cannot be derived (evaluation
    /// error, or the formula actually holds on the recorded sequence) are
    /// skipped — `check` already surfaced those as errors.
    pub fn blame_failures(
        &self,
        computation: &Computation,
        report: &SpecReport,
    ) -> Vec<(String, Blame)> {
        let needs_tags = !self.threads.is_empty()
            && computation.events().iter().all(|e| {
                e.threads()
                    .iter()
                    .all(|t| self.threads.iter().all(|s| s.ty != t.thread_type()))
            });
        let tagged;
        let target: &Computation = if needs_tags {
            tagged = self.assign_threads(computation);
            &tagged
        } else {
            computation
        };
        let mut out = Vec::new();
        for r in &report.results {
            if r.report.holds {
                continue;
            }
            let Some(formula) = self.restriction(&r.name) else {
                continue;
            };
            let blamed = match &r.report.counterexample {
                Some(cex) => {
                    let seq: Result<Vec<History>, _> = cex
                        .histories
                        .iter()
                        .map(|events| History::from_events(target, events.iter().copied()))
                        .collect();
                    match seq {
                        Ok(seq) if !seq.is_empty() => blame_on_sequence(formula, target, &seq),
                        _ => blame_on_computation(formula, target),
                    }
                }
                None => blame_on_computation(formula, target),
            };
            if let Ok(Some(b)) = blamed {
                out.push((r.name.clone(), b));
            }
        }
        out
    }
}

/// Outcome of checking one named restriction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RestrictionResult {
    /// The restriction's name.
    pub name: String,
    /// The checking outcome.
    pub report: CheckReport,
}

/// Outcome of [`Specification::check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecReport {
    /// GEM legality violations (empty for a legal computation).
    pub legality: Vec<Violation>,
    /// Per-restriction results.
    pub results: Vec<RestrictionResult>,
}

impl SpecReport {
    /// True if the computation is legal and every restriction holds.
    pub fn is_legal(&self) -> bool {
        self.legality.is_empty() && self.results.iter().all(|r| r.report.holds)
    }

    /// Names of the violated restrictions.
    pub fn failed(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.report.holds)
            .map(|r| r.name.as_str())
            .collect()
    }
}

impl fmt::Display for SpecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.legality.is_empty() {
            writeln!(f, "legality: ok")?;
        } else {
            writeln!(f, "legality: {} violation(s)", self.legality.len())?;
            for v in &self.legality {
                writeln!(f, "  - {v}")?;
            }
        }
        for r in &self.results {
            writeln!(
                f,
                "{}: {} ({} sequence(s){})",
                r.name,
                if r.report.holds { "ok" } else { "VIOLATED" },
                r.report.sequences_checked,
                if r.report.exhaustive {
                    ""
                } else {
                    ", not exhaustive"
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abbrev::prerequisite;
    use crate::types::{ElementType, SpecBuilder};
    use gem_core::ComputationBuilder;
    use gem_logic::ValueTerm;

    fn variable_spec() -> Specification {
        let variable = ElementType::new("Variable")
            .event("Assign", &["newval"])
            .event("Getval", &["oldval"])
            .restriction("getval-yields-last-assign", |inst, _| {
                Formula::forall(
                    "a",
                    inst.sel("Assign"),
                    Formula::forall(
                        "g",
                        inst.sel("Getval"),
                        Formula::enables("a", "g").implies(Formula::value_eq(
                            ValueTerm::param("a", "newval"),
                            ValueTerm::param("g", "oldval"),
                        )),
                    ),
                )
            });
        let mut sb = SpecBuilder::new("VarSpec");
        let var = sb.instantiate_element(&variable, "Var").unwrap();
        sb.add_restriction(
            "assign-precedes-getval",
            prerequisite(&var.sel("Assign"), &var.sel("Getval")),
        );
        sb.finish()
    }

    #[test]
    fn legal_computation_passes_check() {
        let spec = variable_spec();
        let s = spec.structure();
        let var = s.element("Var").unwrap();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        let mut b = ComputationBuilder::new(spec.structure_arc());
        let a = b
            .add_event(var, assign, vec![gem_core::Value::Int(1)])
            .unwrap();
        let g = b
            .add_event(var, getval, vec![gem_core::Value::Int(1)])
            .unwrap();
        b.enable(a, g).unwrap();
        let c = b.seal().unwrap();
        let report = spec.check(&c, Strategy::default()).unwrap();
        assert!(report.is_legal(), "{report}");
        assert!(report.failed().is_empty());
        assert!(report.to_string().contains("ok"));
    }

    #[test]
    fn violating_computation_reports_restriction() {
        let spec = variable_spec();
        let s = spec.structure();
        let var = s.element("Var").unwrap();
        let assign = s.class("Assign").unwrap();
        let getval = s.class("Getval").unwrap();
        let mut b = ComputationBuilder::new(spec.structure_arc());
        let a = b
            .add_event(var, assign, vec![gem_core::Value::Int(1)])
            .unwrap();
        let g = b
            .add_event(var, getval, vec![gem_core::Value::Int(99)])
            .unwrap();
        b.enable(a, g).unwrap();
        let c = b.seal().unwrap();
        let report = spec.check(&c, Strategy::default()).unwrap();
        assert!(!report.is_legal());
        assert_eq!(
            report.failed(),
            vec!["Var.getval-yields-last-assign"],
            "{report}"
        );
        assert!(report.to_string().contains("VIOLATED"));
    }

    #[test]
    fn restriction_lookup() {
        let spec = variable_spec();
        assert!(spec.restriction("assign-precedes-getval").is_some());
        assert!(spec.restriction("nope").is_none());
        assert_eq!(spec.name(), "VarSpec");
        assert_eq!(spec.restrictions().len(), 2);
    }

    #[test]
    fn thread_tags_assigned_automatically_in_check() {
        use gem_core::ThreadTypeId;
        let variable = ElementType::new("Ctl").event("Req", &[]).event("Go", &[]);
        let mut sb = SpecBuilder::new("T");
        let ctl = sb.instantiate_element(&variable, "ctl").unwrap();
        let ty = sb.declare_thread("pi", vec![vec![ctl.sel("Req"), ctl.sel("Go")]]);
        assert_eq!(ty, ThreadTypeId::from_raw(0));
        // Restriction: every Go shares a thread with some Req.
        sb.add_restriction(
            "go-in-transaction",
            Formula::forall(
                "g",
                ctl.sel("Go"),
                Formula::exists("r", ctl.sel("Req"), Formula::same_thread("r", "g", ty)),
            ),
        );
        let spec = sb.finish();
        let s = spec.structure();
        let el = s.element("ctl").unwrap();
        let req = s.class("Req").unwrap();
        let go = s.class("Go").unwrap();
        let mut b = ComputationBuilder::new(spec.structure_arc());
        let r = b.add_event(el, req, vec![]).unwrap();
        let g = b.add_event(el, go, vec![]).unwrap();
        b.enable(r, g).unwrap();
        let c = b.seal().unwrap();
        // No tags were assigned manually, check() infers them.
        let report = spec.check(&c, Strategy::default()).unwrap();
        assert!(report.is_legal(), "{report}");
    }
}
