//! # gem-obs — instrumentation for exploration & verification
//!
//! The verification methodology quantifies over *all* schedules of a
//! bounded program; the interleaving explosion is where wall-clock time
//! goes. This crate makes that spend visible without perturbing it:
//!
//! * [`Probe`] — the sink trait: monotonic **counters**, last/max
//!   **gauges**, **timers** (duration histogram summaries), and
//!   hierarchical **spans**.
//! * [`NoopProbe`] — the zero-cost default. Instrumented code checks
//!   [`Probe::enabled`] before doing any work, so the disabled path is a
//!   virtual call returning a constant (and hot loops batch their counts,
//!   so even that call is per-run, not per-step).
//! * [`StatsProbe`] — thread-safe in-memory aggregation, convertible to a
//!   [`Report`].
//! * [`TraceProbe`] — appends JSONL events (span enter/exit, counter
//!   batches) to a writer, for offline timeline reconstruction.
//! * [`FanoutProbe`] — duplicates events to several probes (stats +
//!   trace + heartbeat).
//! * [`HeartbeatProbe`] — prints a progress line to stderr at a bounded
//!   rate, keyed on run-counter increments, so exhaustive sweeps are not
//!   silent.
//! * [`Report`] — deterministic JSON (`BTreeMap`-ordered keys) so two
//!   runs of the same workload diff cleanly: only timer values change.
//! * [`ChromeTraceProbe`] — collects timestamped duration/counter events
//!   for Chrome-trace (`chrome://tracing` / Perfetto) export
//!   (`--trace-out`).
//! * [`Histogram`] — fixed-size log-bucket (power-of-two) histograms
//!   behind [`Probe::record`], with p50/p90/p99/max summaries in the
//!   report's `hists` section.
//! * [`SeriesProbe`] — periodic counter/gauge snapshots into a bounded
//!   ring, exported as a `metrics.json` time-series and an OpenMetrics
//!   text endpoint-file ([`render_openmetrics`] / [`lint_openmetrics`],
//!   CLI `--metrics-out`).
//! * [`estimate`] — search-space estimators: Knuth weighted-backtrack
//!   run-tree size and Chapman capture-recapture distinct-computation
//!   counts, fed by sampled runs.
//! * [`profile`] — per-phase wall-time attribution ([`PhaseProfile`])
//!   and reduction cost/benefit verdicts ([`explain`]) over a report.
//! * [`RecorderProbe`] — a flight recorder: bounded per-thread rings of
//!   recent events plus span stacks, dumped to a crash artifact by a
//!   panic hook ([`install_crash_sink`]) so sweeps that die mid-flight
//!   stay diagnosable.
//! * [`ambient`] — a thread-local probe slot for layers too deep to
//!   thread a probe argument through (formula evaluation, closure
//!   construction, history materialization). Inactive cost is one atomic
//!   load.
//! * [`json`] — serde-free JSON emission + parsing used by reports,
//!   forensic artifacts, and `gem bench-diff`.
//! * [`write_atomic`] — temp-file + rename emission so CI never reads a
//!   half-written report.
//!
//! Counter names are dot-separated paths (`explore.runs`,
//! `restriction.<name>.evals`); see `docs/OBSERVABILITY.md` for the
//! vocabulary the other crates emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
mod chrome;
pub mod estimate;
mod fsio;
mod heartbeat;
mod hist;
pub mod json;
mod openmetrics;
mod probe;
pub mod profile;
mod recorder;
mod report;
mod series;
mod tid;

pub use chrome::{chrome_trace_json, ChromeEvent, ChromeTraceProbe};
pub use estimate::{chapman_estimate, fingerprint_words, CollapseEstimator, KnuthEstimator};
pub use fsio::write_atomic;
pub use heartbeat::HeartbeatProbe;
pub use hist::{Histogram, HIST_BUCKETS};
pub use openmetrics::{lint_openmetrics, render_openmetrics, OpenMetricsSummary};
pub use probe::{FanoutProbe, NoopProbe, Probe, Span, StatsProbe, TraceProbe};
pub use profile::{explain, PhaseProfile, PhaseRow};
pub use recorder::{
    clear_crash_sink, install_crash_sink, RecordedEvent, RecorderProbe, ThreadDump,
};
pub use report::{Report, TimerStat};
pub use series::{series_json, SeriesProbe, SeriesSnapshot};
pub use tid::{set_thread_label, thread_label, thread_ordinal};
