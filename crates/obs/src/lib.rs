//! # gem-obs — instrumentation for exploration & verification
//!
//! The verification methodology quantifies over *all* schedules of a
//! bounded program; the interleaving explosion is where wall-clock time
//! goes. This crate makes that spend visible without perturbing it:
//!
//! * [`Probe`] — the sink trait: monotonic **counters**, last/max
//!   **gauges**, **timers** (duration histogram summaries), and
//!   hierarchical **spans**.
//! * [`NoopProbe`] — the zero-cost default. Instrumented code checks
//!   [`Probe::enabled`] before doing any work, so the disabled path is a
//!   virtual call returning a constant (and hot loops batch their counts,
//!   so even that call is per-run, not per-step).
//! * [`StatsProbe`] — thread-safe in-memory aggregation, convertible to a
//!   [`Report`].
//! * [`TraceProbe`] — appends JSONL events (span enter/exit, counter
//!   batches) to a writer, for offline timeline reconstruction.
//! * [`FanoutProbe`] — duplicates events to several probes (stats +
//!   trace + heartbeat).
//! * [`HeartbeatProbe`] — prints a progress line to stderr at a bounded
//!   rate, keyed on run-counter increments, so exhaustive sweeps are not
//!   silent.
//! * [`Report`] — deterministic JSON (`BTreeMap`-ordered keys) so two
//!   runs of the same workload diff cleanly: only timer values change.
//! * [`ambient`] — a thread-local probe slot for layers too deep to
//!   thread a probe argument through (formula evaluation, closure
//!   construction, history materialization). Inactive cost is one atomic
//!   load.
//!
//! Counter names are dot-separated paths (`explore.runs`,
//! `restriction.<name>.evals`); see `docs/OBSERVABILITY.md` for the
//! vocabulary the other crates emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
mod heartbeat;
mod json;
mod probe;
mod report;

pub use heartbeat::HeartbeatProbe;
pub use probe::{FanoutProbe, NoopProbe, Probe, Span, StatsProbe, TraceProbe};
pub use report::{Report, TimerStat};
