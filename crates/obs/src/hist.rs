//! Fixed-size log-bucket histograms for latency and size distributions.
//!
//! A [`Histogram`] folds `u64` samples into 65 power-of-two buckets:
//! bucket 0 holds the value 0 and bucket `i` (1..=64) holds values whose
//! bit length is `i`, i.e. the range `[2^(i-1), 2^i - 1]`. Recording is
//! a `leading_zeros` plus two adds — cheap enough for per-step hot
//! paths — and the fixed shape makes merging across workers a
//! bucket-wise sum. Quantiles are read back at bucket granularity
//! (the bucket's upper bound, clamped to the observed maximum), which
//! is exact to within 2x — plenty for the "where does explore time go"
//! questions the summaries answer.

/// Number of buckets: one for zero plus one per possible bit length.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-size log-bucket (power-of-two) histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else its bit length (1..=64).
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Folds one sample into the histogram.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Bucket-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The quantile `q` in `[0, 1]` at bucket granularity: the upper
    /// bound of the smallest bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the observed maximum. Returns 0 on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs, in index order —
    /// the sparse form the report JSON serializes.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Cumulative `(upper_bound, cumulative_count)` pairs over the
    /// non-empty buckets — the shape an OpenMetrics histogram exposition
    /// wants (`le`-labelled cumulative series).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((bucket_upper(i), cumulative));
            }
        }
        out
    }

    /// Reconstructs a histogram from its serialized sparse form.
    /// `buckets` entries past [`HIST_BUCKETS`] are rejected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range bucket index.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(usize, u64)],
    ) -> Result<Self, String> {
        let mut h = Self::new();
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        for &(i, n) in buckets {
            if i >= HIST_BUCKETS {
                return Err(format!("histogram bucket index {i} out of range"));
            }
            h.buckets[i] = n;
        }
        Ok(h)
    }

    /// The histogram with every sample-derived value zeroed but the
    /// count kept — the timing-invariant shape `Report::without_timings`
    /// applies to duration-valued histograms (`*_ns` keys).
    pub fn without_values(&self) -> Self {
        let mut h = Self::new();
        h.count = self.count;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 184);
        assert!(!h.is_empty());
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, upper 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, upper 1023
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        assert_eq!(h.quantile(0.99), 1000, "clamped to observed max");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut h = Histogram::new();
        h.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7);
        }
    }

    #[test]
    fn merge_is_bucket_wise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1, 5, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [0, 700] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        whole.merge(&Histogram::new());
        assert_eq!(whole, a);
    }

    #[test]
    fn parts_roundtrip() {
        let mut h = Histogram::new();
        for v in [3, 3, 4, 90000] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &parts).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(1, 1, 1, 1, &[(65, 1)]).is_err());
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 6, 6, 6] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum, vec![(0, 1), (1, 3), (7, 6)]);
    }

    #[test]
    fn without_values_keeps_count_only() {
        let mut h = Histogram::new();
        h.record(123);
        let stripped = h.without_values();
        assert_eq!(stripped.count(), 1);
        assert_eq!(stripped.sum(), 0);
        assert_eq!(stripped.max(), 0);
        assert_eq!(stripped.nonzero_buckets().count(), 0);
    }
}
