//! Crash-safe file emission.

use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file which is then renamed over the target, so a concurrent
/// reader (CI collecting a report, a watcher tailing an artifact
/// directory) never observes a half-written file.
///
/// The temporary name incorporates the process id so two processes
/// writing the same report race on the rename (last writer wins) rather
/// than on the bytes.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut file = std::fs::File::create(&tmp_path)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("gem-obs-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, "{\"a\": 1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}");
        write_atomic(&path, "{\"a\": 2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 2}");
        // No temporary residue.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
