//! The [`Probe`] trait and its standard implementations.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;
use crate::json::push_json_str;
use crate::report::{Report, TimerStat};

/// A sink for instrumentation events.
///
/// All methods have empty default bodies so implementors only override
/// what they observe; [`Probe::enabled`] lets hot paths skip batching
/// work entirely when the probe is a no-op.
///
/// Names are dot-separated paths (`explore.runs`,
/// `restriction.<name>.evals`). They are `&str` rather than `&'static
/// str` because per-restriction metrics are keyed by user-chosen names.
pub trait Probe: Send + Sync {
    /// False when every event is discarded; instrumented code may use
    /// this to skip timestamping and delta bookkeeping.
    fn enabled(&self) -> bool {
        true
    }

    /// Increments the monotonic counter `name` by `delta`.
    fn add(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` (last write wins).
    fn gauge_set(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Raises the gauge `name` to `value` if larger (high-water mark).
    fn gauge_max(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Records one duration under the timer `name`.
    fn time_ns(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Folds one sample into the log-bucket histogram `name`
    /// ([`crate::Histogram`]). By convention names ending in `_ns`
    /// record durations (and are neutralized by
    /// `Report::without_timings`); anything else records sizes, widths,
    /// or depths.
    fn record(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Marks entry into the span `name` (spans nest; exits arrive in
    /// reverse entry order per thread).
    fn span_enter(&self, name: &str) {
        let _ = name;
    }

    /// Marks exit from the span `name` after `nanos` inside it.
    fn span_exit(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// The zero-cost default: discards everything, reports itself disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn enabled(&self) -> bool {
        false
    }
}

/// RAII span: enters on construction, exits (recording elapsed time, and
/// mirroring it into a same-named timer) on drop.
///
/// Construct with [`Span::enter`]; when the probe is disabled no clock
/// is read.
pub struct Span<'a> {
    probe: &'a dyn Probe,
    name: &'a str,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Enters span `name` on `probe`.
    pub fn enter(probe: &'a dyn Probe, name: &'a str) -> Self {
        let start = if probe.enabled() {
            probe.span_enter(name);
            Some(Instant::now())
        } else {
            None
        };
        Self { probe, name, start }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.probe.span_exit(self.name, ns);
            self.probe.time_ns(self.name, ns);
        }
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
    hists: BTreeMap<String, Histogram>,
}

/// In-memory aggregation: counters summed, gauges kept, timers
/// summarized. Thread-safe (a single mutex; hot layers batch their
/// counts so contention is per-run, not per-step).
#[derive(Debug, Default)]
pub struct StatsProbe {
    inner: Mutex<StatsInner>,
}

impl StatsProbe {
    /// An empty stats probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn report(&self) -> Report {
        let inner = self.inner.lock().expect("stats probe poisoned");
        Report {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            timers: inner.timers.clone(),
            hists: inner.hists.clone(),
            meta: BTreeMap::new(),
            config: BTreeMap::new(),
        }
    }

    /// Reads one counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("stats probe poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of one histogram (empty when never recorded).
    pub fn hist(&self, name: &str) -> Histogram {
        let inner = self.inner.lock().expect("stats probe poisoned");
        inner.hists.get(name).cloned().unwrap_or_default()
    }
}

impl Probe for StatsProbe {
    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("stats probe poisoned");
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    fn gauge_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("stats probe poisoned");
        inner.gauges.insert(name.to_owned(), value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("stats probe poisoned");
        match inner.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                inner.gauges.insert(name.to_owned(), value);
            }
        }
    }

    fn time_ns(&self, name: &str, nanos: u64) {
        let mut inner = self.inner.lock().expect("stats probe poisoned");
        inner
            .timers
            .entry(name.to_owned())
            .or_default()
            .record(nanos);
    }

    fn record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("stats probe poisoned");
        inner
            .hists
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    fn span_exit(&self, name: &str, nanos: u64) {
        // Spans double as timers; `Span` already mirrors into `time_ns`,
        // so only count nesting-free span exits arriving directly.
        let _ = (name, nanos);
    }
}

/// Writes one JSONL event per probe call to a writer (typically a file):
/// `{"us":<since-start>,"tid":<thread>,"ev":"counter","k":"explore.runs","v":1}`
/// and `{"us":…,"tid":…,"ev":"enter"/"exit","k":"verify.run","ns":…}`.
///
/// Offsets are microseconds since probe construction. `tid` is the
/// emitting thread's [`crate::thread_ordinal`], so traces merged from a
/// `--jobs N` run partition cleanly by worker. The stream is
/// line-buffered via `BufWriter` and flushed on drop.
pub struct TraceProbe {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    epoch: Instant,
}

impl std::fmt::Debug for TraceProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceProbe").finish_non_exhaustive()
    }
}

impl TraceProbe {
    /// Traces into `writer`.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(Box::new(writer))),
            epoch: Instant::now(),
        }
    }

    /// Creates (truncating) `path` and traces into it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }

    fn line(&self, ev: &str, key: &str, fields: &[(&str, u64)]) {
        let us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let tid = crate::tid::thread_ordinal();
        let mut line = String::with_capacity(64);
        line.push_str(&format!(
            "{{\"us\":{us},\"tid\":{tid},\"ev\":\"{ev}\",\"k\":"
        ));
        push_json_str(&mut line, key);
        for (name, value) in fields {
            line.push_str(&format!(",\"{name}\":{value}"));
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("trace probe poisoned");
        let _ = out.write_all(line.as_bytes());
    }

    /// Flushes buffered events.
    pub fn flush(&self) {
        let mut out = self.out.lock().expect("trace probe poisoned");
        let _ = out.flush();
    }
}

impl Drop for TraceProbe {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Probe for TraceProbe {
    fn add(&self, name: &str, delta: u64) {
        self.line("counter", name, &[("v", delta)]);
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.line("gauge", name, &[("v", value)]);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.line("gauge_max", name, &[("v", value)]);
    }

    fn time_ns(&self, name: &str, nanos: u64) {
        self.line("time", name, &[("ns", nanos)]);
    }

    fn record(&self, name: &str, value: u64) {
        self.line("record", name, &[("v", value)]);
    }

    fn span_enter(&self, name: &str) {
        self.line("enter", name, &[]);
    }

    fn span_exit(&self, name: &str, nanos: u64) {
        self.line("exit", name, &[("ns", nanos)]);
    }
}

/// Duplicates every event to each wrapped probe.
#[derive(Clone)]
pub struct FanoutProbe {
    sinks: Vec<Arc<dyn Probe>>,
}

impl std::fmt::Debug for FanoutProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FanoutProbe({} sinks)", self.sinks.len())
    }
}

impl FanoutProbe {
    /// Fans out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Probe>>) -> Self {
        Self { sinks }
    }
}

impl Probe for FanoutProbe {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn add(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.add(name, delta);
        }
    }

    fn gauge_set(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.gauge_set(name, value);
        }
    }

    fn gauge_max(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.gauge_max(name, value);
        }
    }

    fn time_ns(&self, name: &str, nanos: u64) {
        for s in &self.sinks {
            s.time_ns(name, nanos);
        }
    }

    fn record(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.record(name, value);
        }
    }

    fn span_enter(&self, name: &str) {
        for s in &self.sinks {
            s.span_enter(name);
        }
    }

    fn span_exit(&self, name: &str, nanos: u64) {
        for s in &self.sinks {
            s.span_exit(name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let p = NoopProbe;
        assert!(!p.enabled());
        p.add("x", 1); // must not panic
    }

    #[test]
    fn stats_aggregates_counters_gauges_timers() {
        let p = StatsProbe::new();
        p.add("runs", 2);
        p.add("runs", 3);
        p.gauge_max("depth", 4);
        p.gauge_max("depth", 2);
        p.gauge_set("first_failure", 7);
        p.gauge_set("first_failure", 9);
        p.time_ns("check", 10);
        p.time_ns("check", 30);
        let r = p.report();
        assert_eq!(r.counters["runs"], 5);
        assert_eq!(r.gauges["depth"], 4);
        assert_eq!(r.gauges["first_failure"], 9);
        assert_eq!(r.timers["check"].count, 2);
        assert_eq!(r.timers["check"].total_ns, 40);
        assert_eq!(p.counter("runs"), 5);
        assert_eq!(p.counter("missing"), 0);
    }

    #[test]
    fn stats_record_builds_histograms() {
        let p = StatsProbe::new();
        p.record("apply_ns", 100);
        p.record("apply_ns", 900);
        p.record("width", 3);
        let r = p.report();
        assert_eq!(r.hists["apply_ns"].count(), 2);
        assert_eq!(r.hists["apply_ns"].sum(), 1000);
        assert_eq!(r.hists["width"].max(), 3);
        assert_eq!(p.hist("apply_ns").count(), 2);
        assert!(p.hist("missing").is_empty());
    }

    #[test]
    fn record_fans_out() {
        let a = Arc::new(StatsProbe::new());
        let b = Arc::new(StatsProbe::new());
        let f = FanoutProbe::new(vec![a.clone() as Arc<dyn Probe>, b.clone()]);
        f.record("lag", 5);
        assert_eq!(a.hist("lag").count(), 1);
        assert_eq!(b.hist("lag").count(), 1);
        NoopProbe.record("lag", 5); // must not panic
    }

    #[test]
    fn span_records_timer() {
        let p = StatsProbe::new();
        {
            let _s = Span::enter(&p, "outer");
            let _t = Span::enter(&p, "inner");
        }
        let r = p.report();
        assert_eq!(r.timers["outer"].count, 1);
        assert_eq!(r.timers["inner"].count, 1);
        assert!(r.timers["outer"].total_ns >= r.timers["inner"].total_ns);
    }

    #[test]
    fn span_on_noop_reads_no_clock() {
        let p = NoopProbe;
        let s = Span::enter(&p, "x");
        assert!(s.start.is_none());
    }

    #[test]
    fn trace_writes_jsonl() {
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let p = TraceProbe::new(buf.clone());
        p.add("explore.runs", 1);
        {
            let _s = Span::enter(&p, "verify");
        }
        p.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "counter + enter + exit + time: {text}");
        let tid_field = format!("\"tid\":{}", crate::tid::thread_ordinal());
        assert!(lines.iter().all(|l| l.contains(&tid_field)), "{text}");
        assert!(lines[0].contains("\"ev\":\"counter\""), "{text}");
        assert!(lines[0].contains("\"k\":\"explore.runs\""), "{text}");
        assert!(lines[1].contains("\"ev\":\"enter\""), "{text}");
        assert!(lines[2].contains("\"ev\":\"exit\""), "{text}");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "JSONL: {l}");
        }
    }

    #[test]
    fn fanout_duplicates() {
        let a = Arc::new(StatsProbe::new());
        let b = Arc::new(StatsProbe::new());
        let f = FanoutProbe::new(vec![a.clone(), b.clone()]);
        assert!(f.enabled());
        f.add("n", 2);
        assert_eq!(a.counter("n"), 2);
        assert_eq!(b.counter("n"), 2);
        let noop = FanoutProbe::new(vec![Arc::new(NoopProbe)]);
        assert!(!noop.enabled());
    }
}
