//! Small stable per-thread ordinals.
//!
//! `std::thread::ThreadId` has no public integer form; traces and flight
//! recorder dumps want a compact id that is stable for the lifetime of
//! the thread and dense enough to read. Ordinals are handed out in
//! first-use order from a process-wide counter.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ORDINAL: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The calling thread's ordinal, assigned on first use.
pub fn thread_ordinal() -> u64 {
    ORDINAL.with(|slot| match slot.get() {
        Some(id) => id,
        None => {
            let id = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(id));
            id
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_within_thread_distinct_across_threads() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal());
        let theirs = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, theirs);
    }
}
