//! Small stable per-thread ordinals.
//!
//! `std::thread::ThreadId` has no public integer form; traces and flight
//! recorder dumps want a compact id that is stable for the lifetime of
//! the thread and dense enough to read. Ordinals are handed out in
//! first-use order from a process-wide counter.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ORDINAL: Cell<Option<u64>> = const { Cell::new(None) };
    static LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The calling thread's ordinal, assigned on first use.
pub fn thread_ordinal() -> u64 {
    ORDINAL.with(|slot| match slot.get() {
        Some(id) => id,
        None => {
            let id = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(id));
            id
        }
    })
}

/// Names the calling thread for trace exports (e.g. `worker-3`, the
/// stable pool ordinal). Consumers like [`crate::ChromeTraceProbe`]
/// render the label as the thread's lane name instead of the raw
/// ordinal. Last set wins; the label dies with the thread.
pub fn set_thread_label(label: impl Into<String>) {
    let label = label.into();
    LABEL.with(|slot| *slot.borrow_mut() = Some(label));
}

/// The calling thread's label, if one was set.
pub fn thread_label() -> Option<String> {
    LABEL.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_within_thread_distinct_across_threads() {
        let mine = thread_ordinal();
        assert_eq!(mine, thread_ordinal());
        let theirs = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn labels_are_per_thread() {
        let worker = std::thread::spawn(|| {
            set_thread_label("worker-0");
            thread_label()
        })
        .join()
        .unwrap();
        assert_eq!(worker.as_deref(), Some("worker-0"));
        assert_eq!(thread_label(), None, "label does not leak across threads");
    }
}
