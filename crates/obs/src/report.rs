//! Aggregated run reports with deterministic JSON serialization.

use std::collections::BTreeMap;
use std::fmt;

use crate::hist::Histogram;
use crate::json::{push_json_key, push_json_str};

/// Summary of a timer/span: count and total/min/max durations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TimerStat {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all durations, in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration, in nanoseconds.
    pub min_ns: u64,
    /// Longest recorded duration, in nanoseconds.
    pub max_ns: u64,
}

impl TimerStat {
    /// Folds one duration into the summary.
    pub fn record(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_ns = nanos;
            self.max_ns = nanos;
        } else {
            self.min_ns = self.min_ns.min(nanos);
            self.max_ns = self.max_ns.max(nanos);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(nanos);
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// An aggregated, serializable view of everything a probe saw.
///
/// Key order is the `BTreeMap` order, so [`Report::to_json`] is
/// byte-deterministic for a deterministic workload: two runs of the same
/// sweep differ only in the *values* under `"timers"` and
/// `"wall_time_ns"` — every counter, gauge, and meta entry is identical.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Report {
    /// Monotonic counters (`explore.runs`, `verify.deadlocks`, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-write / high-water gauges (`explore.depth_high_water`, …).
    pub gauges: BTreeMap<String, u64>,
    /// Timer/span summaries. Nondeterministic (like `_ns` hists).
    pub timers: BTreeMap<String, TimerStat>,
    /// Log-bucket histograms ([`Probe::record`](crate::Probe::record)).
    /// Keys ending in `_ns` hold durations and are nondeterministic;
    /// everything else (widths, depths) is deterministic. Serialized
    /// only when non-empty, so histogram-free reports keep their
    /// historical shape.
    pub hists: BTreeMap<String, Histogram>,
    /// Free-form context (command line, problem name, parameters).
    pub meta: BTreeMap<String, String>,
    /// The run's effective configuration (problem id, jobs/dedup/por
    /// flags, bounds) — makes the report self-describing so artifacts
    /// need no filename conventions. Serialized only when non-empty,
    /// so configuration-free reports keep their historical shape.
    pub config: BTreeMap<String, String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: total wall time if the conventional `total` timer was
    /// recorded.
    pub fn wall_time_ns(&self) -> Option<u64> {
        self.timers.get("total").map(|t| t.total_ns)
    }

    /// Serializes to a stable-ordered, human-diffable JSON document
    /// (two-space indent, sorted keys, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  ");
        if !self.config.is_empty() {
            push_json_key(&mut out, "config");
            out.push_str(" {");
            let mut first = true;
            for (k, v) in &self.config {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                push_json_key(&mut out, k);
                out.push(' ');
                push_json_str(&mut out, v);
            }
            out.push_str("\n  },\n  ");
        }
        push_json_key(&mut out, "counters");
        out.push_str(" {");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\n  ");
        push_json_key(&mut out, "gauges");
        out.push_str(" {");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\n  ");
        if !self.hists.is_empty() {
            push_json_key(&mut out, "hists");
            out.push_str(" {");
            let mut first = true;
            for (k, h) in &self.hists {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                push_json_key(&mut out, k);
                out.push_str(&format!(
                    " {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
                let mut first_bucket = true;
                for (i, n) in h.nonzero_buckets() {
                    if !first_bucket {
                        out.push_str(", ");
                    }
                    first_bucket = false;
                    out.push_str(&format!("[{i}, {n}]"));
                }
                out.push_str("]}");
            }
            out.push_str("\n  },\n  ");
        }
        push_json_key(&mut out, "meta");
        out.push_str(" {");
        let mut first = true;
        for (k, v) in &self.meta {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_key(&mut out, k);
            out.push(' ');
            push_json_str(&mut out, v);
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n  ");
        push_json_key(&mut out, "timers");
        out.push_str(" {");
        let mut first = true;
        for (k, t) in &self.timers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            push_json_key(&mut out, k);
            out.push_str(&format!(
                " {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                t.count,
                t.total_ns,
                t.min_ns,
                t.max_ns,
                t.mean_ns()
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a document produced by [`Report::to_json`] back into a
    /// `Report`. Unknown top-level keys are ignored; the derived
    /// `mean_ns` field is recomputed rather than read.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Report, String> {
        use crate::json::{parse, JsonValue};
        let doc = parse(text)?;
        let obj = doc.as_obj().ok_or("report: top level is not an object")?;
        let mut report = Report::new();
        let u64_map = |v: &JsonValue, section: &str| -> Result<BTreeMap<String, u64>, String> {
            let mut map = BTreeMap::new();
            for (k, val) in v
                .as_obj()
                .ok_or(format!("report: {section} is not an object"))?
            {
                let n = val
                    .as_u64()
                    .ok_or(format!("report: {section}.{k} is not a u64"))?;
                map.insert(k.clone(), n);
            }
            Ok(map)
        };
        for (key, value) in obj {
            match key.as_str() {
                "config" => {
                    for (k, v) in value.as_obj().ok_or("report: config is not an object")? {
                        let s = v
                            .as_str()
                            .ok_or(format!("report: config.{k} is not a string"))?;
                        report.config.insert(k.clone(), s.to_owned());
                    }
                }
                "counters" => report.counters = u64_map(value, "counters")?,
                "gauges" => report.gauges = u64_map(value, "gauges")?,
                "meta" => {
                    for (k, v) in value.as_obj().ok_or("report: meta is not an object")? {
                        let s = v
                            .as_str()
                            .ok_or(format!("report: meta.{k} is not a string"))?;
                        report.meta.insert(k.clone(), s.to_owned());
                    }
                }
                "hists" => {
                    for (k, h) in value.as_obj().ok_or("report: hists is not an object")? {
                        let field = |name: &str| -> Result<u64, String> {
                            h.get(name)
                                .and_then(JsonValue::as_u64)
                                .ok_or(format!("report: hists.{k}.{name} missing or not a u64"))
                        };
                        let mut buckets = Vec::new();
                        for pair in h
                            .get("buckets")
                            .and_then(JsonValue::as_arr)
                            .ok_or(format!("report: hists.{k}.buckets missing or not an array"))?
                        {
                            let entry = pair
                                .as_arr()
                                .filter(|p| p.len() == 2)
                                .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
                                .ok_or(format!(
                                    "report: hists.{k}.buckets entry is not an [index, count] pair"
                                ))?;
                            buckets.push((entry.0 as usize, entry.1));
                        }
                        let hist = Histogram::from_parts(
                            field("count")?,
                            field("sum")?,
                            field("min")?,
                            field("max")?,
                            &buckets,
                        )
                        .map_err(|e| format!("report: hists.{k}: {e}"))?;
                        report.hists.insert(k.clone(), hist);
                    }
                }
                "timers" => {
                    for (k, t) in value.as_obj().ok_or("report: timers is not an object")? {
                        let field = |name: &str| -> Result<u64, String> {
                            t.get(name)
                                .and_then(JsonValue::as_u64)
                                .ok_or(format!("report: timers.{k}.{name} missing or not a u64"))
                        };
                        report.timers.insert(
                            k.clone(),
                            TimerStat {
                                count: field("count")?,
                                total_ns: field("total_ns")?,
                                min_ns: field("min_ns")?,
                                max_ns: field("max_ns")?,
                            },
                        );
                    }
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// The report with every timer value zeroed — byte-identical across
    /// runs of a deterministic workload; used by tests asserting report
    /// determinism "modulo timing fields". Duration-valued histograms
    /// (keys ending `_ns`) keep their counts but lose their samples;
    /// size/width/depth histograms are deterministic and kept whole.
    pub fn without_timings(&self) -> Report {
        let mut r = self.clone();
        for stat in r.timers.values_mut() {
            *stat = TimerStat {
                count: stat.count,
                ..TimerStat::default()
            };
        }
        for (name, hist) in r.hists.iter_mut() {
            if name.ends_with("_ns") {
                *hist = hist.without_values();
            }
        }
        r
    }
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        push_json_key(out, k);
        out.push_str(&format!(" {v}"));
    }
    if !first {
        out.push_str("\n  ");
    }
}

impl fmt::Display for Report {
    /// Human-readable aligned table (the `--stats` output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.timers.keys())
            .chain(self.hists.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(8);
        if !self.meta.is_empty() {
            for (k, v) in &self.meta {
                writeln!(f, "# {k}: {v}")?;
            }
        }
        if !self.config.is_empty() {
            for (k, v) in &self.config {
                writeln!(f, "# config {k}: {v}")?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "  {k:width$}  {v:>12}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "  {k:width$}  {v:>12}")?;
            }
        }
        if !self.hists.is_empty() {
            writeln!(f, "hists:")?;
            for (k, h) in &self.hists {
                writeln!(
                    f,
                    "  {k:width$}  x{:<8} p50/p90/p99 {}/{}/{} max {}",
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max(),
                )?;
            }
        }
        if !self.timers.is_empty() {
            writeln!(f, "timers:")?;
            for (k, t) in &self.timers {
                writeln!(
                    f,
                    "  {k:width$}  {:>12}  x{:<8} mean {}",
                    format_ns(t.total_ns),
                    t.count,
                    format_ns(t.mean_ns()),
                )?;
            }
        }
        Ok(())
    }
}

/// Renders nanoseconds with a readable unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        r.counters.insert("explore.runs".into(), 6);
        r.counters.insert("explore.steps".into(), 24);
        r.gauges.insert("explore.depth_high_water".into(), 4);
        r.meta.insert("problem".into(), "rw".into());
        let mut t = TimerStat::default();
        t.record(100);
        t.record(300);
        r.timers.insert("total".into(), t);
        r
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let r = sample();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "serialization is a pure function");
        assert!(a.contains("\"explore.runs\": 6"), "{a}");
        assert!(a.contains("\"problem\": \"rw\""), "{a}");
        assert!(a.contains("\"total_ns\": 400"), "{a}");
        assert!(a.ends_with("}\n"));
        // Keys appear in sorted order.
        let runs = a.find("explore.runs").unwrap();
        let steps = a.find("explore.steps").unwrap();
        assert!(runs < steps);
    }

    #[test]
    fn without_timings_is_timing_invariant() {
        let mut a = sample();
        let mut b = sample();
        a.timers.get_mut("total").unwrap().record(999);
        b.timers.get_mut("total").unwrap().record(1);
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.without_timings().to_json(), b.without_timings().to_json());
    }

    #[test]
    fn json_roundtrips_through_from_json() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), r.to_json());
        assert!(Report::from_json("{\"counters\": {\"x\": \"y\"}}").is_err());
    }

    #[test]
    fn config_section_roundtrips_and_is_elided_when_empty() {
        let plain = sample();
        assert!(
            !plain.to_json().contains("\"config\""),
            "empty config keeps the historical shape"
        );
        let mut r = sample();
        r.config.insert("problem".into(), "rw".into());
        r.config.insert("dedup".into(), "true".into());
        let json = r.to_json();
        assert!(json.contains("\"config\""), "{json}");
        assert!(
            json.find("\"config\"").unwrap() < json.find("\"counters\"").unwrap(),
            "config leads the document: {json}"
        );
        assert!(json.contains("\"dedup\""), "{json}");
        let parsed = Report::from_json(&json).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), json);
        // Old readers (pre-config) ignore the section; new readers
        // tolerate its absence.
        assert!(Report::from_json(&plain.to_json())
            .unwrap()
            .config
            .is_empty());
    }

    #[test]
    fn hists_section_roundtrips_and_is_elided_when_empty() {
        let plain = sample();
        assert!(
            !plain.to_json().contains("\"hists\""),
            "empty hists keeps the historical shape"
        );
        let mut r = sample();
        let mut lag = Histogram::new();
        for v in [10, 10, 900] {
            lag.record(v);
        }
        r.hists.insert("worker.0.commit_lag_ns".into(), lag);
        let mut width = Histogram::new();
        width.record(2);
        r.hists.insert("explore.step.enabled_width".into(), width);
        let json = r.to_json();
        assert!(json.contains("\"hists\""), "{json}");
        assert!(json.contains("\"p50\": 15"), "bucket upper bound: {json}");
        assert!(json.contains("\"p99\": 900"), "clamped to max: {json}");
        assert!(json.contains("\"buckets\": [[4, 2], [10, 1]]"), "{json}");
        let parsed = Report::from_json(&json).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), json);
        // Old readers ignore the section; new readers tolerate absence.
        assert!(Report::from_json(&plain.to_json())
            .unwrap()
            .hists
            .is_empty());
        assert!(Report::from_json("{\"hists\": {\"x\": {\"count\": 1}}}").is_err());
    }

    #[test]
    fn without_timings_neutralizes_only_duration_hists() {
        let mut a = sample();
        let mut b = sample();
        for (r, ns) in [(&mut a, 100), (&mut b, 70_000)] {
            let mut h = Histogram::new();
            h.record(ns);
            r.hists.insert("explore.step.apply_ns".into(), h);
            let mut w = Histogram::new();
            w.record(3);
            r.hists.insert("explore.step.enabled_width".into(), w);
        }
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.without_timings().to_json(), b.without_timings().to_json());
        let stripped = a.without_timings();
        assert_eq!(stripped.hists["explore.step.apply_ns"].count(), 1);
        assert_eq!(stripped.hists["explore.step.apply_ns"].sum(), 0);
        assert_eq!(stripped.hists["explore.step.enabled_width"].max(), 3);
    }

    #[test]
    fn timer_stat_aggregates() {
        let mut t = TimerStat::default();
        t.record(5);
        t.record(1);
        t.record(9);
        assert_eq!(t.count, 3);
        assert_eq!(t.total_ns, 15);
        assert_eq!(t.min_ns, 1);
        assert_eq!(t.max_ns, 9);
        assert_eq!(t.mean_ns(), 5);
    }

    #[test]
    fn display_renders_table() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("explore.runs"), "{s}");
        assert!(s.contains("# problem: rw"), "{s}");
        assert!(s.contains("timers:"), "{s}");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.500us");
        assert_eq!(format_ns(2_000_000), "2.000ms");
        assert_eq!(format_ns(3_000_000_000), "3.000s");
    }
}
