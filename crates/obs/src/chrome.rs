//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! [`ChromeTraceProbe`] collects timer samples and counter updates with
//! wall-clock timestamps; [`chrome_trace_json`] serialises them in the
//! Trace Event Format — a `{"traceEvents": [...]}` document of complete
//! (`"ph":"X"`) duration events and (`"ph":"C"`) counter events — which
//! both `chrome://tracing` and <https://ui.perfetto.dev> open directly.
//!
//! Serialisation is deliberately rigid: fields appear in a fixed order
//! (`name`, `cat`, `ph`, `ts`, `dur`, `pid`, `tid`, `args`), one event
//! per line, so the export of a fixed event list is byte-stable and can
//! be golden-file tested (`tests/observability.rs`).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::push_json_str;
use crate::probe::Probe;
use crate::tid::{thread_label, thread_ordinal};

/// One event in a Chrome trace: a completed duration (`dur_us > 0` or
/// `counter == None`) or a counter sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name (the probe key, e.g. `phase.check`).
    pub name: String,
    /// Category — the key's first dot-segment (`phase`, `explore`, …).
    pub cat: String,
    /// Start timestamp in microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds; `0` for instantaneous samples.
    pub dur_us: u64,
    /// Emitting thread's [`thread_ordinal`].
    pub tid: u64,
    /// `Some(value)` renders a counter (`"ph":"C"`) event instead of a
    /// duration.
    pub counter: Option<u64>,
}

/// Serialises `events` in Chrome Trace Event Format with a fixed field
/// order — a pure function of its input, so goldens are stable.
pub fn chrome_trace_json(events: &[ChromeEvent]) -> String {
    chrome_trace_json_with_labels(events, &BTreeMap::new())
}

/// [`chrome_trace_json`] plus `"ph": "M"` thread-name metadata events
/// for the labelled tids, so worker lanes render as `worker-<k>` (the
/// stable pool ordinal) instead of raw thread ordinals. With no labels
/// the output is byte-identical to [`chrome_trace_json`].
pub fn chrome_trace_json_with_labels(
    events: &[ChromeEvent],
    labels: &BTreeMap<u64, String>,
) -> String {
    let mut out = String::with_capacity(events.len() * 96 + labels.len() * 80 + 64);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    for (tid, label) in labels {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\": \"thread_name\", \"cat\": \"__metadata\", \"ph\": \"M\", \
             \"ts\": 0, \"pid\": 1, \"tid\": {tid}, \"args\": {{\"name\": "
        ));
        push_json_str(&mut out, label);
        out.push_str("}}");
    }
    for ev in events.iter() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  {\"name\": ");
        push_json_str(&mut out, &ev.name);
        out.push_str(", \"cat\": ");
        push_json_str(&mut out, &ev.cat);
        match ev.counter {
            None => {
                out.push_str(&format!(
                    ", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                    ev.ts_us, ev.dur_us, ev.tid
                ));
            }
            Some(v) => {
                out.push_str(&format!(
                    ", \"ph\": \"C\", \"ts\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"value\": {v}}}}}",
                    ev.ts_us, ev.tid
                ));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

fn category_of(name: &str) -> String {
    name.split('.').next().unwrap_or(name).to_owned()
}

/// A [`Probe`] that materialises every timer sample as a complete
/// duration event (placed at `now − duration`) and every counter update
/// as a running-total counter event, for export via
/// [`chrome_trace_json`]. Span enters/exits are ignored — `Span` already
/// mirrors each exit into `time_ns`, so durations arrive exactly once.
///
/// The buffer is bounded (default one million events); past the cap new
/// events are dropped and counted, so a pathological sweep degrades to a
/// truncated trace instead of unbounded memory.
pub struct ChromeTraceProbe {
    epoch: Instant,
    max_events: usize,
    inner: Mutex<ChromeInner>,
}

#[derive(Default)]
struct ChromeInner {
    events: Vec<ChromeEvent>,
    counter_totals: BTreeMap<String, u64>,
    /// tid -> lane label, captured from [`thread_label`] the first time
    /// a labelled thread emits an event.
    labels: BTreeMap<u64, String>,
    dropped: u64,
}

impl ChromeInner {
    fn note_label(&mut self, tid: u64) {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.labels.entry(tid) {
            if let Some(label) = thread_label() {
                slot.insert(label);
            }
        }
    }
}

impl std::fmt::Debug for ChromeTraceProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceProbe")
            .field("max_events", &self.max_events)
            .finish_non_exhaustive()
    }
}

impl Default for ChromeTraceProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceProbe {
    /// A collector with the default event cap.
    pub fn new() -> Self {
        Self::with_max_events(1 << 20)
    }

    /// A collector keeping at most `max_events` events.
    pub fn with_max_events(max_events: usize) -> Self {
        Self {
            epoch: Instant::now(),
            max_events: max_events.max(1),
            inner: Mutex::new(ChromeInner::default()),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, ev: ChromeEvent) {
        let mut inner = self.inner.lock().expect("chrome trace poisoned");
        inner.note_label(ev.tid);
        if inner.events.len() >= self.max_events {
            inner.dropped += 1;
            return;
        }
        inner.events.push(ev);
    }

    /// Snapshot of collected events, in arrival order.
    pub fn events(&self) -> Vec<ChromeEvent> {
        self.inner
            .lock()
            .expect("chrome trace poisoned")
            .events
            .clone()
    }

    /// Events discarded because the buffer cap was hit.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("chrome trace poisoned").dropped
    }

    /// The lane labels captured so far (`tid -> label`).
    pub fn labels(&self) -> BTreeMap<u64, String> {
        self.inner
            .lock()
            .expect("chrome trace poisoned")
            .labels
            .clone()
    }

    /// Serialises the collected events with thread-name metadata for
    /// labelled lanes ([`chrome_trace_json_with_labels`]).
    pub fn to_json(&self) -> String {
        let (events, labels) = {
            let inner = self.inner.lock().expect("chrome trace poisoned");
            (inner.events.clone(), inner.labels.clone())
        };
        chrome_trace_json_with_labels(&events, &labels)
    }

    /// Writes the trace to `path` atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic write.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        crate::write_atomic(path, &self.to_json())
    }
}

impl Probe for ChromeTraceProbe {
    fn add(&self, name: &str, delta: u64) {
        let ts_us = self.now_us();
        let mut inner = self.inner.lock().expect("chrome trace poisoned");
        inner.note_label(thread_ordinal());
        let total = {
            let slot = inner.counter_totals.entry(name.to_owned()).or_insert(0);
            *slot = slot.saturating_add(delta);
            *slot
        };
        if inner.events.len() >= self.max_events {
            inner.dropped += 1;
            return;
        }
        inner.events.push(ChromeEvent {
            name: name.to_owned(),
            cat: category_of(name),
            ts_us,
            dur_us: 0,
            tid: thread_ordinal(),
            counter: Some(total),
        });
    }

    fn time_ns(&self, name: &str, nanos: u64) {
        let dur_us = nanos / 1_000;
        let now = self.now_us();
        self.push(ChromeEvent {
            name: name.to_owned(),
            cat: category_of(name),
            ts_us: now.saturating_sub(dur_us),
            dur_us,
            tid: thread_ordinal(),
            counter: None,
        });
    }

    fn record(&self, name: &str, value: u64) {
        // Chrome traces have no histogram event; chart the running total
        // of the samples as a counter track instead (and capture the
        // emitting thread's lane label on the way).
        self.add(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialisation_has_fixed_field_order() {
        let events = vec![
            ChromeEvent {
                name: "phase.check".into(),
                cat: "phase".into(),
                ts_us: 10,
                dur_us: 5,
                tid: 1,
                counter: None,
            },
            ChromeEvent {
                name: "explore.runs".into(),
                cat: "explore".into(),
                ts_us: 12,
                dur_us: 0,
                tid: 1,
                counter: Some(3),
            },
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(
            json,
            "{\"traceEvents\": [\n  \
             {\"name\": \"phase.check\", \"cat\": \"phase\", \"ph\": \"X\", \
             \"ts\": 10, \"dur\": 5, \"pid\": 1, \"tid\": 1},\n  \
             {\"name\": \"explore.runs\", \"cat\": \"explore\", \"ph\": \"C\", \
             \"ts\": 12, \"pid\": 1, \"tid\": 1, \"args\": {\"value\": 3}}\n]}\n"
        );
    }

    #[test]
    fn probe_collects_timers_and_counter_totals() {
        let p = ChromeTraceProbe::new();
        p.time_ns("phase.check", 3_000);
        p.add("explore.runs", 1);
        p.add("explore.runs", 2);
        let events = p.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "phase.check");
        assert_eq!(events[0].dur_us, 3);
        assert_eq!(events[0].counter, None);
        assert_eq!(events[1].counter, Some(1), "running total");
        assert_eq!(events[2].counter, Some(3), "running total");
        assert_eq!(events[2].cat, "explore");
        assert_eq!(p.dropped(), 0);
    }

    #[test]
    fn labelled_threads_render_thread_name_metadata() {
        let p = std::sync::Arc::new(ChromeTraceProbe::new());
        let worker = p.clone();
        let tid = std::thread::spawn(move || {
            crate::tid::set_thread_label("worker-0");
            worker.time_ns("phase.explore", 2_000);
            thread_ordinal()
        })
        .join()
        .unwrap();
        assert_eq!(p.labels().get(&tid).map(String::as_str), Some("worker-0"));
        let json = p.to_json();
        assert!(json.contains("\"ph\": \"M\""), "{json}");
        assert!(json.contains("\"name\": \"thread_name\""), "{json}");
        assert!(json.contains("\"name\": \"worker-0\""), "{json}");
        assert!(
            json.contains(&format!(
                "\"tid\": {tid}, \"args\": {{\"name\": \"worker-0\"}}"
            )),
            "{json}"
        );
        crate::json::parse(&json).expect("valid JSON");
        // Without labels the serialisation is unchanged (golden-stable).
        assert_eq!(
            chrome_trace_json(&p.events()),
            chrome_trace_json_with_labels(&p.events(), &BTreeMap::new())
        );
    }

    #[test]
    fn cap_drops_and_counts() {
        let p = ChromeTraceProbe::with_max_events(2);
        for _ in 0..5 {
            p.time_ns("x", 1);
        }
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.dropped(), 3);
    }

    #[test]
    fn span_exits_are_not_double_counted() {
        use crate::probe::Span;
        let p = ChromeTraceProbe::new();
        {
            let _s = Span::enter(&p, "verify");
        }
        assert_eq!(p.events().len(), 1, "one duration event per span");
    }
}
