//! Minimal JSON emission. The workspace has no serde; reports only need
//! objects, strings, and unsigned integers, emitted with stable key
//! order by construction (callers iterate `BTreeMap`s).

/// Appends `s` as a JSON string literal (with escapes) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` to `out`.
pub(crate) fn push_json_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
