//! Minimal JSON emission and parsing. The workspace has no serde;
//! reports and forensic artifacts only need objects, arrays, strings,
//! booleans, and numbers. Emission keeps stable key order by
//! construction (callers iterate `BTreeMap`s); parsing preserves object
//! key order as encountered.

/// Appends `s` as a JSON string literal (with escapes) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` to `out`.
pub fn push_json_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push(':');
}

/// A parsed JSON value.
///
/// Objects are kept as ordered `(key, value)` pairs rather than a map:
/// artifact readers mostly look keys up once, and preserving encounter
/// order makes diagnostics reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n)
                if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 =>
            {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our artifacts;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_roundtrip_through_parser() {
        let original = "weird \"chars\" \\ and\nnewlines\tplus \u{1} ctrl";
        let mut doc = String::new();
        push_json_str(&mut doc, original);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }
}
