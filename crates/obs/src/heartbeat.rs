//! Progress heartbeat for long sweeps.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::probe::Probe;

/// Prints a one-line progress report to stderr at a bounded rate.
///
/// The probe watches increments of a designated *run counter*
/// (`explore.runs` by convention); every `check_every` increments it
/// consults the clock, and if at least `interval` has elapsed since the
/// last beat it prints accumulated runs/steps and the elapsed time. With
/// the default 5-second interval, short sweeps stay silent and
/// multi-minute exhaustive sweeps report a few times a minute.
#[derive(Debug)]
pub struct HeartbeatProbe {
    run_counter: &'static str,
    step_counter: &'static str,
    interval: Duration,
    check_every: u64,
    state: Mutex<HeartbeatState>,
}

#[derive(Debug)]
struct HeartbeatState {
    runs: u64,
    steps: u64,
    since_check: u64,
    started: Instant,
    last_beat: Instant,
}

impl HeartbeatProbe {
    /// A heartbeat on the conventional `explore.runs` / `explore.steps`
    /// counters, printing at most once per `interval`.
    pub fn new(interval: Duration) -> Self {
        let now = Instant::now();
        Self {
            run_counter: "explore.runs",
            step_counter: "explore.steps",
            interval,
            check_every: 1000,
            state: Mutex::new(HeartbeatState {
                runs: 0,
                steps: 0,
                since_check: 0,
                started: now,
                last_beat: now,
            }),
        }
    }

    /// Consults the clock every `n` run increments (default 1000);
    /// lower it for workloads whose runs are individually slow.
    #[must_use]
    pub fn check_every(mut self, n: u64) -> Self {
        self.check_every = n.max(1);
        self
    }

    fn beat(state: &mut HeartbeatState) {
        let elapsed = state.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            state.runs as f64 / elapsed
        } else {
            0.0
        };
        eprintln!(
            "[gem] {} run(s), {} step(s), {elapsed:.1}s elapsed ({rate:.0} runs/s)",
            state.runs, state.steps
        );
        state.last_beat = Instant::now();
    }
}

impl Probe for HeartbeatProbe {
    fn add(&self, name: &str, delta: u64) {
        if name == self.step_counter {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.steps += delta;
            return;
        }
        if name != self.run_counter {
            return;
        }
        let mut state = self.state.lock().expect("heartbeat poisoned");
        state.runs += delta;
        state.since_check += delta;
        if state.since_check >= self.check_every {
            state.since_check = 0;
            if state.last_beat.elapsed() >= self.interval {
                Self::beat(&mut state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_runs_and_steps_without_printing_early() {
        // A long interval: the heartbeat only accumulates.
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).check_every(10);
        for _ in 0..25 {
            hb.add("explore.runs", 1);
            hb.add("explore.steps", 3);
        }
        hb.add("unrelated", 99);
        let state = hb.state.lock().unwrap();
        assert_eq!(state.runs, 25);
        assert_eq!(state.steps, 75);
        // 25 runs with check_every=10: clock checked twice, never beat.
        assert_eq!(state.since_check, 5);
    }

    #[test]
    fn zero_interval_beats_on_check() {
        let hb = HeartbeatProbe::new(Duration::ZERO).check_every(5);
        for _ in 0..5 {
            hb.add("explore.runs", 1);
        }
        let state = hb.state.lock().unwrap();
        assert_eq!(state.since_check, 0, "check fired");
    }
}
