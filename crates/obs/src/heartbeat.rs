//! Progress heartbeat for long sweeps.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::probe::Probe;

/// Prints a one-line progress report (to stderr by default) at a
/// bounded rate.
///
/// The probe watches increments of a designated *run counter*
/// (`explore.runs` by convention); every `check_every` increments it
/// consults the clock, and if at least `interval` has elapsed since the
/// last beat it prints accumulated runs/steps and the elapsed time. With
/// the default 5-second interval, short sweeps stay silent and
/// multi-minute exhaustive sweeps report a few times a minute.
///
/// Call [`HeartbeatProbe::finish`] at end-of-sweep: it always flushes a
/// final summary line (even when the rate limiter would suppress it),
/// including the computation-dedup hit-rate when dedup counters
/// (`*.dedup.hits` / `*.dedup.misses`) were observed and the sleep-set
/// reduction summary when `explore.sleep_skipped` was nonzero.
pub struct HeartbeatProbe {
    run_counter: &'static str,
    step_counter: &'static str,
    interval: Duration,
    check_every: u64,
    state: Mutex<HeartbeatState>,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for HeartbeatProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatProbe")
            .field("run_counter", &self.run_counter)
            .field("interval", &self.interval)
            .field("check_every", &self.check_every)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct HeartbeatState {
    runs: u64,
    steps: u64,
    dedup_hits: u64,
    dedup_misses: u64,
    sleep_skipped: u64,
    por_runs: u64,
    incr_leaf_clean: u64,
    est_total_runs: u64,
    since_check: u64,
    started: Instant,
    last_beat: Instant,
}

impl HeartbeatProbe {
    /// A heartbeat on the conventional `explore.runs` / `explore.steps`
    /// counters, printing at most once per `interval`.
    pub fn new(interval: Duration) -> Self {
        let now = Instant::now();
        Self {
            run_counter: "explore.runs",
            step_counter: "explore.steps",
            interval,
            check_every: 1000,
            state: Mutex::new(HeartbeatState {
                runs: 0,
                steps: 0,
                dedup_hits: 0,
                dedup_misses: 0,
                sleep_skipped: 0,
                por_runs: 0,
                incr_leaf_clean: 0,
                est_total_runs: 0,
                since_check: 0,
                started: now,
                last_beat: now,
            }),
            out: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// Consults the clock every `n` run increments (default 1000);
    /// lower it for workloads whose runs are individually slow.
    #[must_use]
    pub fn check_every(mut self, n: u64) -> Self {
        self.check_every = n.max(1);
        self
    }

    /// Redirects heartbeat lines from stderr into `writer` (used by
    /// tests to assert on output).
    #[must_use]
    pub fn writer(self, writer: impl Write + Send + 'static) -> Self {
        *self.out.lock().expect("heartbeat poisoned") = Box::new(writer);
        self
    }

    fn emit(&self, state: &HeartbeatState, done: bool) {
        let elapsed = state.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            state.runs as f64 / elapsed
        } else {
            0.0
        };
        let prefix = if done { "[gem] done:" } else { "[gem]" };
        let mut line = format!(
            "{prefix} {} run(s), {} step(s), {elapsed:.1}s elapsed ({rate:.0} runs/s)",
            state.runs, state.steps
        );
        // A pre-sweep Knuth estimate (`estimate.total_runs` gauge) turns
        // the raw run count into progress: % explored and an ETA at the
        // current rate. Suppressed on the final line — actuals say it
        // better — and capped at 99% so the estimate never claims a
        // finish it cannot know.
        if !done && state.est_total_runs > 0 && state.runs > 0 {
            let pct = (state.runs as f64 * 100.0 / state.est_total_runs as f64).min(99.0);
            line.push_str(&format!(", ~{pct:.0}% explored (est)"));
            if rate > 0.0 && state.est_total_runs > state.runs {
                let eta = (state.est_total_runs - state.runs) as f64 / rate;
                line.push_str(&format!(", ETA ~{eta:.0}s"));
            }
        }
        let dedup_total = state.dedup_hits + state.dedup_misses;
        if done && dedup_total > 0 {
            line.push_str(&format!(
                ", dedup hit-rate {:.0}% ({}/{dedup_total})",
                state.dedup_hits as f64 * 100.0 / dedup_total as f64,
                state.dedup_hits
            ));
        }
        // Incremental checking's fast path mirrors dedup's: the share of
        // leaves proven clean along the DFS (skipping seal/project/check
        // entirely), over the runs the sweep completed.
        if done && state.incr_leaf_clean > 0 && state.runs > 0 {
            line.push_str(&format!(
                ", incr clean-leaf rate {:.0}% ({}/{})",
                state.incr_leaf_clean as f64 * 100.0 / state.runs as f64,
                state.incr_leaf_clean,
                state.runs
            ));
        }
        if done && state.sleep_skipped > 0 {
            line.push_str(&format!(
                ", POR: {} representative(s), {} branch(es) slept",
                state.por_runs, state.sleep_skipped
            ));
        }
        let mut out = self.out.lock().expect("heartbeat poisoned");
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Flushes the final summary line unconditionally (rate limiter
    /// bypassed). Silent only when nothing was ever counted, so
    /// heartbeat-enabled commands that don't sweep stay quiet.
    pub fn finish(&self) {
        let mut state = self.state.lock().expect("heartbeat poisoned");
        if state.runs == 0 && state.steps == 0 {
            return;
        }
        self.emit(&state, true);
        state.last_beat = Instant::now();
    }
}

impl Probe for HeartbeatProbe {
    fn gauge_set(&self, name: &str, value: u64) {
        if name == "estimate.total_runs" {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.est_total_runs = value;
        }
    }

    fn add(&self, name: &str, delta: u64) {
        if name == self.step_counter {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.steps += delta;
            return;
        }
        if name.ends_with(".dedup.hits") {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.dedup_hits += delta;
            return;
        }
        if name.ends_with(".dedup.misses") {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.dedup_misses += delta;
            return;
        }
        if name == "explore.sleep_skipped" {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.sleep_skipped += delta;
            return;
        }
        if name == "explore.por_runs" {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.por_runs += delta;
            return;
        }
        if name == "logic.incr.leaf_clean" {
            let mut state = self.state.lock().expect("heartbeat poisoned");
            state.incr_leaf_clean += delta;
            return;
        }
        if name != self.run_counter {
            return;
        }
        let mut state = self.state.lock().expect("heartbeat poisoned");
        state.runs += delta;
        state.since_check += delta;
        if state.since_check >= self.check_every {
            state.since_check = 0;
            if state.last_beat.elapsed() >= self.interval {
                self.emit(&state, false);
                state.last_beat = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn counts_runs_and_steps_without_printing_early() {
        // A long interval: the heartbeat only accumulates.
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600))
            .check_every(10)
            .writer(buf.clone());
        for _ in 0..25 {
            hb.add("explore.runs", 1);
            hb.add("explore.steps", 3);
        }
        hb.add("unrelated", 99);
        {
            let state = hb.state.lock().unwrap();
            assert_eq!(state.runs, 25);
            assert_eq!(state.steps, 75);
            // 25 runs with check_every=10: clock checked twice, never beat.
            assert_eq!(state.since_check, 5);
        }
        assert!(buf.text().is_empty(), "rate limiter suppresses output");
    }

    #[test]
    fn zero_interval_beats_on_check() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::ZERO)
            .check_every(5)
            .writer(buf.clone());
        for _ in 0..5 {
            hb.add("explore.runs", 1);
        }
        let state = hb.state.lock().unwrap();
        assert_eq!(state.since_check, 0, "check fired");
        drop(state);
        assert!(buf.text().contains("5 run(s)"), "{}", buf.text());
    }

    #[test]
    fn finish_flushes_despite_rate_limiter() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        for _ in 0..3 {
            hb.add("explore.runs", 1);
            hb.add("explore.steps", 4);
        }
        assert!(buf.text().is_empty(), "suppressed before finish");
        hb.finish();
        let text = buf.text();
        assert!(text.contains("[gem] done: 3 run(s), 12 step(s)"), "{text}");
        assert!(!text.contains("dedup"), "no dedup counters seen: {text}");
    }

    #[test]
    fn finish_reports_dedup_hit_rate() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        hb.add("explore.runs", 8);
        hb.add("verify.dedup.hits", 6);
        hb.add("verify.dedup.misses", 2);
        hb.finish();
        let text = buf.text();
        assert!(text.contains("dedup hit-rate 75% (6/8)"), "{text}");
    }

    #[test]
    fn finish_reports_incr_clean_leaf_rate() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        hb.add("explore.runs", 8);
        hb.add("logic.incr.leaf_clean", 6);
        hb.finish();
        let text = buf.text();
        assert!(text.contains("incr clean-leaf rate 75% (6/8)"), "{text}");
        // Both fast paths report side by side when both are active.
        let buf2 = SharedBuf::default();
        let hb2 = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf2.clone());
        hb2.add("explore.runs", 4);
        hb2.add("verify.dedup.hits", 1);
        hb2.add("verify.dedup.misses", 3);
        hb2.add("logic.incr.leaf_clean", 4);
        hb2.finish();
        let text2 = buf2.text();
        assert!(text2.contains("dedup hit-rate 25% (1/4)"), "{text2}");
        assert!(text2.contains("incr clean-leaf rate 100% (4/4)"), "{text2}");
    }

    #[test]
    fn finish_omits_incr_rate_when_nothing_proved_clean() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        hb.add("explore.runs", 4);
        hb.add("logic.incr.leaf_clean", 0);
        hb.finish();
        assert!(!buf.text().contains("incr clean-leaf"), "{}", buf.text());
    }

    #[test]
    fn finish_reports_sleep_set_reduction() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        hb.add("explore.runs", 4);
        hb.add("explore.por_runs", 4);
        hb.add("explore.sleep_skipped", 11);
        hb.finish();
        let text = buf.text();
        assert!(
            text.contains("POR: 4 representative(s), 11 branch(es) slept"),
            "{text}"
        );
    }

    #[test]
    fn finish_omits_por_when_nothing_was_slept() {
        // Zero-valued POR counters are emitted on every probed sweep;
        // the summary must stay quiet about them.
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::from_secs(3600)).writer(buf.clone());
        hb.add("explore.runs", 4);
        hb.add("explore.por_runs", 0);
        hb.add("explore.sleep_skipped", 0);
        hb.finish();
        let text = buf.text();
        assert!(!text.contains("POR"), "{text}");
    }

    #[test]
    fn estimate_gauge_adds_progress_and_eta() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::ZERO)
            .check_every(5)
            .writer(buf.clone());
        hb.gauge_set("estimate.total_runs", 100);
        for _ in 0..5 {
            hb.add("explore.runs", 1);
        }
        let text = buf.text();
        assert!(text.contains("~5% explored (est)"), "{text}");
        assert!(text.contains("ETA ~"), "{text}");
        // The final summary reports actuals, not the estimate.
        hb.finish();
        let last = buf.text();
        let done_line = last.lines().last().unwrap();
        assert!(done_line.starts_with("[gem] done:"), "{done_line}");
        assert!(!done_line.contains("explored (est)"), "{done_line}");
    }

    #[test]
    fn finish_is_silent_when_nothing_happened() {
        let buf = SharedBuf::default();
        let hb = HeartbeatProbe::new(Duration::ZERO).writer(buf.clone());
        hb.finish();
        assert!(buf.text().is_empty(), "{}", buf.text());
    }
}
