//! Flight recorder: a bounded per-thread ring of recent probe events,
//! dumped to a crash artifact when the process panics mid-sweep.
//!
//! A sweep that dies at run 40 000 under `--jobs 8` is otherwise
//! undiagnosable: stats are aggregated away and a full trace of 40k runs
//! is too expensive to keep on by default. [`RecorderProbe`] keeps only
//! the last *N* events **per thread** plus each thread's current span
//! stack, so the crash artifact shows what every worker was doing at the
//! moment of death.
//!
//! ## Contention model
//!
//! Each thread records into its own ring; the ring is found through a
//! thread-local cache, so the shared registry mutex is touched only on a
//! thread's *first* event. The per-ring mutex is uncontended in steady
//! state (only the owning thread locks it; a dump locks rings one at a
//! time), so the hot path is: one thread-local read, one uncontended
//! lock, one `VecDeque` push. The crate forbids `unsafe`, which rules
//! out a true atomic ring buffer; an uncontended `Mutex` lock is a
//! single CAS and close enough for a recorder that is off (`NoopProbe`)
//! unless `--artifacts` asks for forensics.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use crate::json::{push_json_key, push_json_str};
use crate::probe::Probe;
use crate::tid::thread_ordinal;

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread cache mapping recorder id -> this thread's ring.
    static RING_CACHE: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// One recent probe event, as kept in a thread's ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Global sequence number (per recorder), for cross-thread ordering.
    pub seq: u64,
    /// Event kind: `count`, `gauge`, `gauge_max`, `time`, `enter`, `exit`.
    pub kind: &'static str,
    /// The counter/gauge/timer/span name.
    pub key: String,
    /// Delta, value, or nanoseconds (0 for `enter`).
    pub value: u64,
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<RecordedEvent>,
    spans: Vec<String>,
}

#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    state: Mutex<RingState>,
}

/// Everything one thread had in flight when a dump was taken.
#[derive(Clone, Debug)]
pub struct ThreadDump {
    /// The thread's [`thread_ordinal`].
    pub tid: u64,
    /// Currently open spans, outermost first.
    pub spans: Vec<String>,
    /// The last events recorded on this thread, oldest first.
    pub events: Vec<RecordedEvent>,
}

/// A probe that keeps the last `capacity` events per thread.
///
/// Pair with [`install_crash_sink`] to get a `crash.json` artifact when
/// a panic escapes the sweep.
pub struct RecorderProbe {
    id: u64,
    capacity: usize,
    seq: AtomicU64,
    registry: Mutex<Vec<Arc<ThreadRing>>>,
}

impl std::fmt::Debug for RecorderProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderProbe")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl RecorderProbe {
    /// A recorder keeping the most recent `capacity` events per thread
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            registry: Mutex::new(Vec::new()),
        }
    }

    fn ring(&self) -> Arc<ThreadRing> {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(id, _)| *id == self.id) {
                return ring.clone();
            }
            let ring = Arc::new(ThreadRing {
                tid: thread_ordinal(),
                state: Mutex::new(RingState::default()),
            });
            self.registry
                .lock()
                .expect("recorder registry poisoned")
                .push(ring.clone());
            cache.push((self.id, ring.clone()));
            ring
        })
    }

    fn record(&self, kind: &'static str, key: &str, value: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ring = self.ring();
        let mut state = ring.state.lock().expect("recorder ring poisoned");
        if state.events.len() == self.capacity {
            state.events.pop_front();
        }
        state.events.push_back(RecordedEvent {
            seq,
            kind,
            key: key.to_owned(),
            value,
        });
        match kind {
            "enter" => state.spans.push(key.to_owned()),
            "exit" if state.spans.last().map(String::as_str) == Some(key) => {
                state.spans.pop();
            }
            _ => {}
        }
    }

    /// Snapshot of every thread's ring and span stack, sorted by thread
    /// ordinal. Callable from any thread (including a panic hook).
    pub fn dump(&self) -> Vec<ThreadDump> {
        let registry = self.registry.lock().expect("recorder registry poisoned");
        let mut dumps: Vec<ThreadDump> = registry
            .iter()
            .map(|ring| {
                let state = ring.state.lock().expect("recorder ring poisoned");
                ThreadDump {
                    tid: ring.tid,
                    spans: state.spans.clone(),
                    events: state.events.iter().cloned().collect(),
                }
            })
            .collect();
        dumps.sort_by_key(|d| d.tid);
        dumps
    }

    /// The dump as a JSON document, optionally annotated with the panic
    /// message/location that triggered it.
    pub fn dump_json(&self, panic_note: Option<(&str, &str)>) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  ");
        push_json_key(&mut out, "kind");
        out.push_str(" \"flight_recorder\",\n  ");
        if let Some((message, location)) = panic_note {
            push_json_key(&mut out, "panic");
            out.push_str(" {");
            push_json_key(&mut out, "message");
            out.push(' ');
            push_json_str(&mut out, message);
            out.push_str(", ");
            push_json_key(&mut out, "location");
            out.push(' ');
            push_json_str(&mut out, location);
            out.push_str("},\n  ");
        }
        push_json_key(&mut out, "capacity_per_thread");
        out.push_str(&format!(" {},\n  ", self.capacity));
        push_json_key(&mut out, "threads");
        out.push_str(" [");
        let dumps = self.dump();
        let mut first_thread = true;
        for d in &dumps {
            if !first_thread {
                out.push(',');
            }
            first_thread = false;
            out.push_str("\n    {");
            push_json_key(&mut out, "tid");
            out.push_str(&format!(" {}, ", d.tid));
            push_json_key(&mut out, "span_stack");
            out.push_str(" [");
            for (i, s) in d.spans.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_json_str(&mut out, s);
            }
            out.push_str("], ");
            push_json_key(&mut out, "events");
            out.push_str(" [");
            for (i, e) in d.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                push_json_key(&mut out, "seq");
                out.push_str(&format!(" {}, ", e.seq));
                push_json_key(&mut out, "kind");
                out.push(' ');
                push_json_str(&mut out, e.kind);
                out.push_str(", ");
                push_json_key(&mut out, "k");
                out.push(' ');
                push_json_str(&mut out, &e.key);
                out.push_str(", ");
                push_json_key(&mut out, "v");
                out.push_str(&format!(" {}}}", e.value));
            }
            if !d.events.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !dumps.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl Probe for RecorderProbe {
    fn add(&self, name: &str, delta: u64) {
        self.record("count", name, delta);
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.record("gauge", name, value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.record("gauge_max", name, value);
    }

    fn time_ns(&self, name: &str, nanos: u64) {
        self.record("time", name, nanos);
    }

    fn span_enter(&self, name: &str) {
        self.record("enter", name, 0);
    }

    fn span_exit(&self, name: &str, nanos: u64) {
        self.record("exit", name, nanos);
    }
}

/// The recorder + target path the process-wide panic hook writes to.
static CRASH_SINK: Mutex<Option<(Arc<RecorderProbe>, PathBuf)>> = Mutex::new(None);
static HOOK_INSTALL: Once = Once::new();

/// Arms the process-wide panic hook to dump `recorder` to `path`
/// (atomically, as JSON) when a panic occurs. The hook chains to the
/// previously installed hook, so normal panic reporting is unaffected.
///
/// The hook itself is installed once per process; calling this again
/// retargets it at a different recorder/path (last call wins).
pub fn install_crash_sink(recorder: Arc<RecorderProbe>, path: PathBuf) {
    *CRASH_SINK.lock().expect("crash sink poisoned") = Some((recorder, path));
    HOOK_INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Ignore a poisoned sink: a panic while holding the sink
            // lock must not abort via a double panic.
            if let Ok(sink) = CRASH_SINK.lock() {
                if let Some((recorder, path)) = sink.as_ref() {
                    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                        (*s).to_owned()
                    } else if let Some(s) = info.payload().downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "<non-string panic payload>".to_owned()
                    };
                    let location = info
                        .location()
                        .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
                        .unwrap_or_else(|| "<unknown>".to_owned());
                    let json = recorder.dump_json(Some((&message, &location)));
                    let _ = crate::fsio::write_atomic(path, &json);
                }
            }
            previous(info);
        }));
    });
}

/// Disarms the crash sink (the hook stays installed but writes nothing).
pub fn clear_crash_sink() {
    *CRASH_SINK.lock().expect("crash sink poisoned") = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Span;

    #[test]
    fn ring_keeps_last_n_and_span_stack() {
        let rec = RecorderProbe::new(3);
        for i in 0..10 {
            rec.add("explore.runs", i);
        }
        rec.span_enter("verify.run");
        rec.span_enter("spec.check");
        let dumps = rec.dump();
        let mine = dumps
            .iter()
            .find(|d| d.tid == thread_ordinal())
            .expect("own thread present");
        assert_eq!(mine.events.len(), 3, "capacity bound");
        assert_eq!(mine.spans, vec!["verify.run", "spec.check"]);
        // Oldest-first and contiguous at the tail of the stream.
        let seqs: Vec<u64> = mine.events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        rec.span_exit("spec.check", 5);
        let dumps = rec.dump();
        let mine = dumps.iter().find(|d| d.tid == thread_ordinal()).unwrap();
        assert_eq!(mine.spans, vec!["verify.run"]);
    }

    #[test]
    fn records_per_thread() {
        let rec = Arc::new(RecorderProbe::new(8));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                let _s = Span::enter(rec.as_ref(), "worker");
                rec.add("explore.steps", 1);
                thread_ordinal()
            }));
        }
        let tids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let dumps = rec.dump();
        for tid in tids {
            let d = dumps.iter().find(|d| d.tid == tid).expect("worker ring");
            assert!(d.events.iter().any(|e| e.key == "explore.steps"));
            assert!(d.spans.is_empty(), "span exited before join");
        }
    }

    #[test]
    fn dump_json_is_parseable() {
        let rec = RecorderProbe::new(4);
        rec.add("a.b", 2);
        rec.span_enter("s");
        let json = rec.dump_json(Some(("boom", "src/lib.rs:1:1")));
        let v = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("panic").unwrap().get("message").unwrap().as_str(),
            Some("boom")
        );
        let threads = v.get("threads").unwrap().as_arr().unwrap();
        assert!(!threads.is_empty());
        let t0 = threads
            .iter()
            .find(|t| {
                t.get("events")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .any(|e| e.get("k").unwrap().as_str() == Some("a.b"))
            })
            .expect("recording thread present");
        let spans = t0.get("span_stack").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].as_str(), Some("s"));
    }
}
