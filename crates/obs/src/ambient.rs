//! Thread-local ambient probe.
//!
//! Deep layers (formula evaluation, transitive-closure construction,
//! history materialization) sit below every public API; threading a
//! probe argument through them would churn dozens of signatures. They
//! record into the *ambient* probe instead: a thread-local slot a caller
//! installs around a sweep (see `gem-verify`). When nothing is
//! installed anywhere, the fast path is a single relaxed atomic load —
//! and instrumented layers batch their counts, so even the slow path is
//! per-call, not per-item.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::probe::Probe;

/// Count of installed guards across all threads; lets the fast path skip
/// the thread-local lookup entirely when no probe exists anywhere.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Vec<Arc<dyn Probe>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls on drop. Not `Send`: the probe must be uninstalled on the
/// thread that installed it.
pub struct AmbientGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Installs `probe` as this thread's ambient probe until the returned
/// guard drops. Nested installs shadow (innermost wins), mirroring span
/// nesting.
pub fn install(probe: Arc<dyn Probe>) -> AmbientGuard {
    CURRENT.with(|c| c.borrow_mut().push(probe));
    INSTALLED.fetch_add(1, Ordering::Relaxed);
    AmbientGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        INSTALLED.fetch_sub(1, Ordering::Relaxed);
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// True if some thread has an ambient probe installed (cheap pre-check).
#[inline]
pub fn active() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// The probe currently installed on *this* thread, if any. Worker pools
/// capture this on the coordinating thread and re-[`install`] it on each
/// worker, so deep-layer emissions fan into the same sink regardless of
/// which thread runs the work.
pub fn snapshot() -> Option<Arc<dyn Probe>> {
    if !active() {
        return None;
    }
    CURRENT.with(|c| c.borrow().last().cloned())
}

#[inline]
fn with_current(f: impl FnOnce(&dyn Probe)) {
    if !active() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(p) = c.borrow().last() {
            f(p.as_ref());
        }
    });
}

/// Increments counter `name` on the ambient probe, if any.
#[inline]
pub fn add(name: &str, delta: u64) {
    with_current(|p| p.add(name, delta));
}

/// Raises gauge `name` on the ambient probe, if any.
#[inline]
pub fn gauge_max(name: &str, value: u64) {
    with_current(|p| p.gauge_max(name, value));
}

/// Sets gauge `name` on the ambient probe, if any.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    with_current(|p| p.gauge_set(name, value));
}

/// Records a duration on the ambient probe, if any.
#[inline]
pub fn time_ns(name: &str, nanos: u64) {
    with_current(|p| p.time_ns(name, nanos));
}

/// Folds one sample into histogram `name` on the ambient probe, if any.
#[inline]
pub fn record(name: &str, value: u64) {
    with_current(|p| p.record(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::StatsProbe;

    #[test]
    fn records_only_while_installed() {
        add("before", 1); // discarded: nothing installed
        let stats = Arc::new(StatsProbe::new());
        {
            let _g = install(stats.clone());
            assert!(active());
            add("during", 2);
            gauge_max("depth", 5);
            time_ns("t", 100);
            record("h", 9);
        }
        add("after", 3); // discarded again
        let r = stats.report();
        assert_eq!(r.counters.get("before"), None);
        assert_eq!(r.counters["during"], 2);
        assert_eq!(r.counters.get("after"), None);
        assert_eq!(r.gauges["depth"], 5);
        assert_eq!(r.timers["t"].count, 1);
        assert_eq!(r.hists["h"].count(), 1);
    }

    #[test]
    fn snapshot_sees_innermost_install() {
        assert!(snapshot().is_none());
        let outer = Arc::new(StatsProbe::new());
        let _g = install(outer.clone());
        let snap = snapshot().expect("installed");
        snap.add("via-snapshot", 7);
        assert_eq!(outer.counter("via-snapshot"), 7);
    }

    #[test]
    fn nested_installs_shadow() {
        let outer = Arc::new(StatsProbe::new());
        let inner = Arc::new(StatsProbe::new());
        let _g1 = install(outer.clone());
        {
            let _g2 = install(inner.clone());
            add("n", 1);
        }
        add("n", 1);
        assert_eq!(inner.counter("n"), 1);
        assert_eq!(outer.counter("n"), 1);
    }
}
