//! Search-space estimators fed by sampled runs.
//!
//! Exhaustive sweeps give exact counts only *after* they finish; these
//! estimators answer "how big is this instance?" from a handful of
//! random schedules *before* (or while) the sweep runs:
//!
//! * [`KnuthEstimator`] — Knuth's weighted-backtrack estimator of the
//!   run-tree leaf count. One probe walks a uniformly random
//!   root-to-leaf path and reports the product of the branching factors
//!   it saw; the expectation of that product over random paths is
//!   exactly the number of leaves (maximal runs), so the sample mean is
//!   an unbiased estimate. `tests/proptest_invariants.rs` pins the
//!   unbiasedness on fully-enumerable trees.
//! * [`CollapseEstimator`] — a Chapman capture-recapture estimate of the
//!   number of *distinct computations* (distinct `canonical_key`s) among
//!   the runs. Sampled keys are split into two "occasions"; the overlap
//!   between occasions estimates the population size the way ringed
//!   birds estimate a flock: `N̂ = (n₁+1)(n₂+1)/(m+1) − 1`. Dividing the
//!   estimated run count by the estimated computation count gives the
//!   *collapse ratio* — the signal that decides whether `--dedup` can
//!   possibly pay for its hashing.
//!
//! Both estimators are pure accumulators: exploration hands them samples
//! and they never touch a clock or a probe, so they cannot perturb the
//! sweep they describe.

use std::collections::HashSet;

/// Knuth weighted-backtrack estimator of a tree's leaf count.
///
/// Feed it one `record(product)` per sampled root-to-leaf walk, where
/// `product` is the product of the branching factors (number of enabled
/// actions) at every node along the walk. The sample mean estimates the
/// number of leaves without bias; the spread across samples indicates
/// how unbalanced the tree is.
#[derive(Clone, Debug, Default)]
pub struct KnuthEstimator {
    samples: Vec<f64>,
}

impl KnuthEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one probe: the product of branching factors along a
    /// uniformly random root-to-leaf path.
    pub fn record(&mut self, product: f64) {
        self.samples.push(product);
    }

    /// Number of probes recorded so far.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// The estimated leaf (run) count: the sample mean. `None` before
    /// the first probe.
    pub fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// [`KnuthEstimator::estimate`] rounded to a whole run count
    /// (minimum 1 once any probe was recorded — a tree that yielded a
    /// sample has at least one leaf).
    pub fn estimate_runs(&self) -> Option<u64> {
        self.estimate().map(|e| (e.round() as u64).max(1))
    }
}

/// Chapman's (bias-corrected Lincoln–Petersen) capture-recapture
/// estimate of a population size from two sampling occasions.
///
/// `n1` and `n2` are the occasion sizes (counted with multiplicity) and
/// `m` the number of occasion-2 captures already seen in occasion 1.
/// Returns `N̂ = (n1+1)(n2+1)/(m+1) − 1`, an (almost) unbiased estimate
/// of the number of distinct individuals when captures are uniform.
pub fn chapman_estimate(n1: u64, n2: u64, m: u64) -> f64 {
    ((n1 + 1) as f64) * ((n2 + 1) as f64) / ((m + 1) as f64) - 1.0
}

/// Capture-recapture estimator of the number of distinct computations
/// (distinct canonical keys) in a run population.
///
/// Record one fingerprint per sampled run. At estimate time the sample
/// sequence is split in half: the first half is the *marking* occasion
/// (its distinct fingerprints are the marked individuals), the second
/// half the *recapture* occasion; the recapture rate feeds
/// [`chapman_estimate`]. The fingerprint is any collision-poor digest
/// of the canonical key — the caller hashes the exact key down to a
/// `u64` (see [`fingerprint_words`]).
#[derive(Clone, Debug, Default)]
pub struct CollapseEstimator {
    samples: Vec<u64>,
}

impl CollapseEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampled run's computation fingerprint.
    pub fn record(&mut self, fingerprint: u64) {
        self.samples.push(fingerprint);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Number of distinct fingerprints actually seen — a hard lower
    /// bound on the population.
    pub fn distinct_seen(&self) -> u64 {
        self.samples.iter().collect::<HashSet<_>>().len() as u64
    }

    /// The Chapman estimate of the number of distinct computations,
    /// clamped below by [`CollapseEstimator::distinct_seen`] (an
    /// estimate can never undercut what was observed). `None` until both
    /// occasions have at least one sample (two samples total).
    pub fn estimate(&self) -> Option<u64> {
        let split = self.samples.len() / 2;
        if split == 0 {
            return None;
        }
        let marked: HashSet<&u64> = self.samples[..split].iter().collect();
        let recaptures = &self.samples[split..];
        let m = recaptures.iter().filter(|fp| marked.contains(fp)).count() as u64;
        let est = chapman_estimate(marked.len() as u64, recaptures.len() as u64, m);
        Some((est.round() as u64).max(self.distinct_seen()))
    }
}

/// Digests a canonical key (or any word sequence) into a single `u64`
/// fingerprint via an FNV-1a fold — stable across platforms and runs,
/// collision-poor at sample-population scale.
pub fn fingerprint_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for shift in [0u32, 32] {
            h ^= u64::from((w >> shift) as u32);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A tiny deterministic RNG (SplitMix64) for sampling probes where
/// pulling in a full RNG crate is not worth it. Not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knuth_is_exact_on_uniform_trees() {
        // A complete k-ary tree of depth d: every root-to-leaf walk sees
        // the same branching product k^d, so one probe is already exact.
        let mut est = KnuthEstimator::new();
        est.record(3.0 * 3.0); // k=3, d=2 → 9 leaves
        assert_eq!(est.estimate_runs(), Some(9));
        assert_eq!(est.samples(), 1);
    }

    #[test]
    fn knuth_mean_over_skewed_tree() {
        // Root with 2 children: left is a leaf, right has 3 leaf
        // children → 4 leaves. Probes: left path product 2 (prob 1/2),
        // right paths product 6 (prob 1/2 total). E = 2*0.5 + 6*0.5 = 4.
        let mut est = KnuthEstimator::new();
        est.record(2.0);
        est.record(6.0);
        assert_eq!(est.estimate(), Some(4.0));
    }

    #[test]
    fn knuth_empty_is_none() {
        assert_eq!(KnuthEstimator::new().estimate(), None);
        assert_eq!(KnuthEstimator::new().estimate_runs(), None);
    }

    #[test]
    fn chapman_matches_hand_computation() {
        // n1=4, n2=4, m=3: (5*5)/4 - 1 = 5.25
        assert!((chapman_estimate(4, 4, 3) - 5.25).abs() < 1e-9);
        // No overlap: estimate blows up toward n1*n2 scale.
        assert!(chapman_estimate(10, 10, 0) > 100.0);
    }

    #[test]
    fn collapse_estimator_on_small_population() {
        // Population of 3 distinct keys sampled uniformly; with heavy
        // overlap the estimate lands on the true count.
        let mut est = CollapseEstimator::new();
        for fp in [1u64, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3] {
            est.record(fp);
        }
        assert_eq!(est.distinct_seen(), 3);
        let n = est.estimate().unwrap();
        assert!((3..=4).contains(&n), "estimate {n} for population 3");
    }

    #[test]
    fn collapse_estimate_never_undercuts_observed() {
        let mut est = CollapseEstimator::new();
        for fp in 0..10u64 {
            est.record(fp); // all distinct, zero recapture
        }
        assert!(est.estimate().unwrap() >= est.distinct_seen());
    }

    #[test]
    fn collapse_needs_both_occasions() {
        let mut est = CollapseEstimator::new();
        assert_eq!(est.estimate(), None);
        est.record(7);
        assert_eq!(est.estimate(), None, "only occasion 1 sampled");
        est.record(7);
        assert!(est.estimate().is_some());
    }

    #[test]
    fn fingerprint_is_stable_and_separating() {
        let a = fingerprint_words(&[1, 2, 3]);
        assert_eq!(a, fingerprint_words(&[1, 2, 3]));
        assert_ne!(a, fingerprint_words(&[1, 2, 4]));
        assert_ne!(a, fingerprint_words(&[1, 2]));
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.below(7);
            assert_eq!(x, b.below(7));
            assert!(x < 7);
        }
    }
}
