//! OpenMetrics text exposition of a snapshot series, plus a linter.
//!
//! [`render_openmetrics`] turns the [`crate::series`] snapshot ring into
//! an OpenMetrics text *endpoint-file*: the same bytes a `/metrics`
//! scrape endpoint would serve, written to disk so dashboards and CI can
//! consume sweep telemetry without a live process. Every sample carries
//! an explicit timestamp (seconds since the series began), so one file
//! holds the whole time-series, not just the final totals.
//!
//! Dot-path probe names map to metric families: `explore.runs` becomes
//! `gem_explore_runs` (counters expose `_total` samples), and the
//! per-worker `worker.<k>.*` keys fold into one family per suffix with a
//! `{worker="k"}` label so fleets of workers chart as one series family.
//!
//! [`lint_openmetrics`] is the format's own acceptance test (used by the
//! CI metrics-smoke leg and `gem metrics-lint`): `# TYPE`/`# HELP` pairs
//! must precede samples, counter samples must end `_total` and be
//! monotone per series across snapshots, timestamps must be
//! non-decreasing, and the file must end with `# EOF`.

use std::collections::{BTreeMap, BTreeSet};

use crate::series::SeriesSnapshot;

/// Mapped metric identity: family name plus an optional worker label.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    family: String,
    worker: Option<String>,
}

/// Sanitizes one dot-path into an OpenMetrics family name; pulls the
/// ordinal out of `worker.<k>.<suffix>` keys into a label.
fn metric_id(name: &str) -> MetricId {
    let sanitize = |s: &str| -> String {
        let mut out = String::with_capacity(s.len() + 4);
        out.push_str("gem_");
        for c in s.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c);
            } else {
                out.push('_');
            }
        }
        out
    };
    if let Some(rest) = name.strip_prefix("worker.") {
        if let Some((ordinal, suffix)) = rest.split_once('.') {
            if !suffix.is_empty() && ordinal.bytes().all(|b| b.is_ascii_digit()) {
                return MetricId {
                    family: sanitize(&format!("worker.{suffix}")),
                    worker: Some(ordinal.to_owned()),
                };
            }
        }
    }
    MetricId {
        family: sanitize(name),
        worker: None,
    }
}

/// Renders `at_ms` as an exposition timestamp (seconds, millisecond
/// precision).
fn timestamp(at_ms: u64) -> String {
    format!("{}.{:03}", at_ms / 1000, at_ms % 1000)
}

/// Renders the snapshot series as an OpenMetrics text exposition.
/// Deterministic: a pure function of the snapshots.
pub fn render_openmetrics(snaps: &[SeriesSnapshot]) -> String {
    // family -> original key -> worker label, split by section.
    let mut counter_families: BTreeMap<String, BTreeMap<String, MetricId>> = BTreeMap::new();
    let mut gauge_families: BTreeMap<String, BTreeMap<String, MetricId>> = BTreeMap::new();
    for snap in snaps {
        for name in snap.counters.keys() {
            let id = metric_id(name);
            counter_families
                .entry(id.family.clone())
                .or_default()
                .insert(name.clone(), id);
        }
        for name in snap.gauges.keys() {
            let id = metric_id(name);
            gauge_families
                .entry(id.family.clone())
                .or_default()
                .insert(name.clone(), id);
        }
    }
    let mut out = String::with_capacity(4096);
    for (family, members) in &counter_families {
        out.push_str(&format!("# TYPE {family} counter\n"));
        out.push_str(&format!(
            "# HELP {family} Cumulative sweep counter ({}).\n",
            members.keys().next().map(String::as_str).unwrap_or("")
        ));
        for (name, id) in members {
            let labels = id
                .worker
                .as_ref()
                .map(|w| format!("{{worker=\"{w}\"}}"))
                .unwrap_or_default();
            // Cumulative totals: a key missing from an early snapshot
            // simply had not been incremented yet, so it reads 0 — the
            // monotone-from-zero shape the linter checks.
            for snap in snaps {
                let v = snap.counters.get(name).copied().unwrap_or(0);
                out.push_str(&format!(
                    "{family}_total{labels} {v} {}\n",
                    timestamp(snap.at_ms)
                ));
            }
        }
    }
    for (family, members) in &gauge_families {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        out.push_str(&format!(
            "# HELP {family} Sweep gauge ({}).\n",
            members.keys().next().map(String::as_str).unwrap_or("")
        ));
        for (name, id) in members {
            let labels = id
                .worker
                .as_ref()
                .map(|w| format!("{{worker=\"{w}\"}}"))
                .unwrap_or_default();
            // Gauges only exist once set; no zero-backfill.
            for snap in snaps {
                if let Some(v) = snap.gauges.get(name) {
                    out.push_str(&format!("{family}{labels} {v} {}\n", timestamp(snap.at_ms)));
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// What [`lint_openmetrics`] measured about a well-formed exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenMetricsSummary {
    /// Declared metric families (`# TYPE` lines).
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Distinct sample timestamps — the number of snapshots exported.
    pub snapshots: usize,
}

/// Checks an OpenMetrics text exposition: `# TYPE`/`# HELP` declared
/// before a family's samples, counter samples named `_total` with
/// per-series monotone values and non-decreasing timestamps, and a
/// final `# EOF`.
///
/// # Errors
///
/// Returns `"line <n>: <problem>"` for the first violation.
pub fn lint_openmetrics(text: &str) -> Result<OpenMetricsSummary, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut last_sample: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut timestamps: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            return Err(format!("line {n}: blank line in exposition"));
        }
        if saw_eof {
            return Err(format!("line {n}: content after # EOF"));
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if comment == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let family = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if family.is_empty() || !matches!(kind, "counter" | "gauge") {
                    return Err(format!("line {n}: malformed TYPE: {line:?}"));
                }
                if types.insert(family.to_owned(), kind.to_owned()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for {family}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let family = rest.split(' ').next().unwrap_or("");
                if family.is_empty() {
                    return Err(format!("line {n}: malformed HELP: {line:?}"));
                }
                helps.insert(family.to_owned());
            } else {
                return Err(format!("line {n}: unknown comment: {line:?}"));
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() {
            return Err(format!("line {n}: sample with no metric name"));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
            let close = r
                .find('}')
                .ok_or(format!("line {n}: unterminated label set"))?;
            (&r[..close], r[close + 1..].trim_start())
        } else {
            ("", rest.trim_start())
        };
        let mut fields = rest.split_whitespace();
        let value: f64 = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(format!("line {n}: sample with no numeric value"))?;
        let ts_text = fields.next().unwrap_or("");
        let ts: f64 = if ts_text.is_empty() {
            0.0
        } else {
            ts_text
                .parse()
                .map_err(|_| format!("line {n}: malformed timestamp {ts_text:?}"))?
        };
        if fields.next().is_some() {
            return Err(format!("line {n}: trailing fields on sample"));
        }
        // Resolve the family: counters sample as `<family>_total`.
        let family = match name.strip_suffix("_total") {
            Some(base) if types.get(base).map(String::as_str) == Some("counter") => base,
            _ => name,
        };
        let kind = types
            .get(family)
            .ok_or(format!("line {n}: sample for undeclared family {name}"))?;
        if !helps.contains(family) {
            return Err(format!("line {n}: family {family} has TYPE but no HELP"));
        }
        if kind == "counter" && !name.ends_with("_total") {
            return Err(format!(
                "line {n}: counter sample {name} must end in _total"
            ));
        }
        let series = format!("{name}{{{labels}}}");
        if let Some((prev_value, prev_ts)) = last_sample.get(&series) {
            if ts < *prev_ts {
                return Err(format!("line {n}: timestamp regressed on {series}"));
            }
            if kind == "counter" && value < *prev_value {
                return Err(format!(
                    "line {n}: counter {series} regressed ({prev_value} -> {value})"
                ));
            }
        }
        last_sample.insert(series, (value, ts));
        if !ts_text.is_empty() {
            timestamps.insert(ts_text.to_owned());
        }
        samples += 1;
    }
    if !saw_eof {
        return Err("exposition does not end with # EOF".to_owned());
    }
    Ok(OpenMetricsSummary {
        families: types.len(),
        samples,
        snapshots: timestamps.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snaps() -> Vec<SeriesSnapshot> {
        vec![
            SeriesSnapshot {
                at_ms: 0,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
            },
            SeriesSnapshot {
                at_ms: 1500,
                counters: BTreeMap::from([
                    ("explore.runs".to_owned(), 7),
                    ("worker.0.steps".to_owned(), 12),
                    ("worker.1.steps".to_owned(), 9),
                ]),
                gauges: BTreeMap::from([("estimate.total_runs".to_owned(), 40)]),
            },
        ]
    }

    #[test]
    fn renders_families_labels_and_timestamps() {
        let text = render_openmetrics(&snaps());
        assert!(text.contains("# TYPE gem_explore_runs counter"), "{text}");
        assert!(text.contains("# HELP gem_explore_runs "), "{text}");
        assert!(text.contains("gem_explore_runs_total 0 0.000"), "{text}");
        assert!(text.contains("gem_explore_runs_total 7 1.500"), "{text}");
        assert!(
            text.contains("gem_worker_steps_total{worker=\"0\"} 12 1.500"),
            "{text}"
        );
        assert!(
            text.contains("gem_worker_steps_total{worker=\"1\"} 9 1.500"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE gem_estimate_total_runs gauge"),
            "{text}"
        );
        assert!(text.contains("gem_estimate_total_runs 40 1.500"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        // One TYPE line per family, even with several worker members.
        assert_eq!(text.matches("# TYPE gem_worker_steps ").count(), 1);
    }

    #[test]
    fn rendered_output_passes_the_lint() {
        let summary = lint_openmetrics(&render_openmetrics(&snaps())).unwrap();
        assert_eq!(summary.snapshots, 2);
        assert!(summary.families >= 3);
        assert!(summary.samples >= 7);
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        let reject = |text: &str, why: &str| {
            let e = lint_openmetrics(text).unwrap_err();
            assert!(e.contains(why), "{text:?}: {e}");
        };
        reject("gem_x_total 1 0.000\n# EOF\n", "undeclared family");
        reject(
            "# TYPE gem_x counter\ngem_x_total 1 0.000\n# EOF\n",
            "no HELP",
        );
        reject(
            "# TYPE gem_x counter\n# HELP gem_x x.\ngem_x 1 0.000\n# EOF\n",
            "must end in _total",
        );
        reject(
            "# TYPE gem_x counter\n# HELP gem_x x.\n\
             gem_x_total 5 0.000\ngem_x_total 3 1.000\n# EOF\n",
            "regressed",
        );
        reject(
            "# TYPE gem_x counter\n# HELP gem_x x.\n\
             gem_x_total 1 1.000\ngem_x_total 2 0.500\n# EOF\n",
            "timestamp regressed",
        );
        reject("# TYPE gem_x counter\n# HELP gem_x x.\n", "# EOF");
        reject("# EOF\nleftovers 1\n", "after # EOF");
    }

    #[test]
    fn lint_accepts_distinct_label_sets_independently() {
        let text = "# TYPE gem_w counter\n# HELP gem_w w.\n\
                    gem_w_total{worker=\"0\"} 9 0.000\n\
                    gem_w_total{worker=\"1\"} 2 0.000\n\
                    gem_w_total{worker=\"0\"} 9 1.000\n# EOF\n";
        let summary = lint_openmetrics(text).unwrap();
        assert_eq!(summary.families, 1);
        assert_eq!(summary.samples, 3);
        assert_eq!(summary.snapshots, 2);
    }

    #[test]
    fn metric_id_mapping() {
        assert_eq!(
            metric_id("explore.step.apply_ns"),
            MetricId {
                family: "gem_explore_step_apply_ns".to_owned(),
                worker: None
            }
        );
        assert_eq!(
            metric_id("worker.12.busy_ns"),
            MetricId {
                family: "gem_worker_busy_ns".to_owned(),
                worker: Some("12".to_owned())
            }
        );
        // Non-numeric second segment stays a plain family.
        assert_eq!(metric_id("worker.pool.size").worker, None);
    }
}
