//! Phase attribution and reduction cost/benefit verdicts.
//!
//! `verify_system` times each pipeline phase into `phase.*` timers
//! (exploration residual, incremental leaf checking, computation
//! sealing, canonical-key hashing, dedup cache lookup, restriction
//! checking). [`PhaseProfile`] folds a
//! [`Report`] into a table whose top-level rows partition the `verify`
//! span — they sum to (approximately) wall time by construction, because
//! `phase.explore` is computed as the sweep residual — and [`explain`]
//! turns the same counters into cost/benefit verdicts: was `--dedup`
//! worth its hashing? what did the independence oracle grant? what did
//! sleep sets actually skip?

use crate::report::Report;

/// Timer keys that partition the `verify` span. Order is presentation
/// order (pipeline order, not alphabetical).
pub const TOP_PHASES: [&str; 6] = [
    "phase.explore",
    "phase.check_incr",
    "phase.seal",
    "phase.canonical_key",
    "phase.dedup_lookup",
    "phase.check",
];

/// Sub-phases: timers nested inside a top-level phase, displayed
/// indented and excluded from the partition sum.
pub const SUB_PHASES: [(&str, &str); 1] = [("phase.closure", "phase.seal")];

/// One row of the phase table.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Timer key (`phase.check`, …).
    pub name: String,
    /// Total nanoseconds attributed to the phase.
    pub total_ns: u64,
    /// Number of samples folded into the total.
    pub count: u64,
    /// Share of wall time, in percent.
    pub pct_of_wall: f64,
    /// True for sub-phases nested inside another row (not summed).
    pub nested: bool,
}

/// A per-phase decomposition of one sweep's wall time.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseProfile {
    /// The wall-clock reference: the `verify` span when present, else
    /// the `total` span.
    pub wall_ns: u64,
    /// Which timer supplied `wall_ns` (`"verify"` or `"total"`).
    pub wall_source: &'static str,
    /// Phase rows in pipeline order (sub-phases follow their parent).
    pub rows: Vec<PhaseRow>,
    /// Sum of top-level (non-nested) rows.
    pub accounted_ns: u64,
}

impl PhaseProfile {
    /// Extracts the profile from a report. `None` when the report has
    /// neither a `verify` nor a `total` span, or no `phase.*` timers at
    /// all (nothing to attribute).
    pub fn from_report(report: &Report) -> Option<PhaseProfile> {
        let (wall_source, wall) = if let Some(t) = report.timers.get("verify") {
            ("verify", t.total_ns)
        } else {
            ("total", report.timers.get("total")?.total_ns)
        };
        if wall == 0 {
            return None;
        }
        let pct = |ns: u64| ns as f64 * 100.0 / wall as f64;
        let mut rows = Vec::new();
        let mut accounted = 0u64;
        for name in TOP_PHASES {
            let Some(t) = report.timers.get(name) else {
                continue;
            };
            accounted += t.total_ns;
            rows.push(PhaseRow {
                name: name.to_owned(),
                total_ns: t.total_ns,
                count: t.count,
                pct_of_wall: pct(t.total_ns),
                nested: false,
            });
            for (sub, parent) in SUB_PHASES {
                if parent != name {
                    continue;
                }
                if let Some(s) = report.timers.get(sub) {
                    rows.push(PhaseRow {
                        name: sub.to_owned(),
                        total_ns: s.total_ns,
                        count: s.count,
                        pct_of_wall: pct(s.total_ns),
                        nested: true,
                    });
                }
            }
        }
        if rows.is_empty() {
            return None;
        }
        Some(PhaseProfile {
            wall_ns: wall,
            wall_source,
            rows,
            accounted_ns: accounted,
        })
    }

    /// Renders the aligned table (stderr-style human output).
    pub fn render(&self) -> String {
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len() + if r.nested { 2 } else { 0 })
            .max()
            .unwrap_or(8)
            .max("accounted".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:width$}  {:>12}  {:>10}  {:>8}\n",
            "phase", "total", "samples", "% wall"
        ));
        for r in &self.rows {
            let label = if r.nested {
                format!("  {}", r.name)
            } else {
                r.name.clone()
            };
            let marker = if r.nested { " (within parent)" } else { "" };
            out.push_str(&format!(
                "{label:width$}  {:>12}  {:>10}  {:>7.1}%{marker}\n",
                format_ns(r.total_ns),
                r.count,
                r.pct_of_wall
            ));
        }
        out.push_str(&format!(
            "{:width$}  {:>12}  {:>10}  {:>7.1}%\n",
            "accounted",
            format_ns(self.accounted_ns),
            "",
            self.accounted_ns as f64 * 100.0 / self.wall_ns as f64
        ));
        out.push_str(&format!(
            "{:width$}  {:>12}\n",
            format!("wall ({})", self.wall_source),
            format_ns(self.wall_ns)
        ));
        out
    }
}

/// Cost/benefit verdict lines for the reductions that were (or could
/// be) applied, derived purely from the report's counters and timers:
///
/// * **dedup measured** — when `verify.dedup.*` counters exist: hashing
///   plus lookup cost versus checking time saved (`hits ×` mean check).
/// * **dedup predicted** — when dedup was off but the sampling
///   estimators ran: predicted hit-rate from the collapse ratio, costed
///   with the sampled per-run key/check times.
/// * **incremental check** — when `logic.incr.*` counters exist: how
///   many leaves the prefix-sharing checker proved clean (skipping the
///   seal/check pipeline entirely), replay/reuse volume, and its cost.
/// * **POR** — sleep-set skip attribution and independence-oracle
///   grant rate.
pub fn explain(report: &Report) -> Vec<String> {
    let mut out = Vec::new();
    let c = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    let t_total = |name: &str| report.timers.get(name).map(|t| t.total_ns).unwrap_or(0);
    let t_mean = |name: &str| report.timers.get(name).map(|t| t.mean_ns()).unwrap_or(0);
    let wall = report
        .timers
        .get("verify")
        .or_else(|| report.timers.get("total"))
        .map(|t| t.total_ns)
        .unwrap_or(0);
    let pct_of_wall = |ns: u64| {
        if wall == 0 {
            0.0
        } else {
            ns as f64 * 100.0 / wall as f64
        }
    };

    let hits = c("verify.dedup.hits");
    let misses = c("verify.dedup.misses");
    if hits + misses > 0 {
        // Dedup ran: measured verdict. Cost is everything dedup added
        // (hashing + lookups); benefit is the checks the hits skipped,
        // priced at the mean cost of the checks that did run.
        let cost = t_total("phase.canonical_key") + t_total("phase.dedup_lookup");
        let saved = hits.saturating_mul(t_mean("phase.check"));
        let total = hits + misses;
        let verdict = if saved > cost { "WIN" } else { "LOSS" };
        out.push(format!(
            "dedup measured {verdict}: hit-rate {:.0}% ({hits}/{total}), \
             hash+lookup cost {} ({:.0}% of wall), est. checking saved {}",
            hits as f64 * 100.0 / total as f64,
            format_ns(cost),
            pct_of_wall(cost),
            format_ns(saved),
        ));
    } else if report.gauges.contains_key("estimate.distinct_computations") {
        // Dedup off, but the sampler measured the collapse ratio and
        // per-run key/check costs — predict.
        let est_runs = report
            .gauges
            .get("estimate.total_runs")
            .copied()
            .unwrap_or(0);
        let est_distinct = report.gauges["estimate.distinct_computations"].max(1);
        if est_runs > 0 {
            let hit_rate = 1.0 - (est_distinct.min(est_runs) as f64 / est_runs as f64);
            let key_ns = t_mean("estimate.canonical_key");
            let check_ns = t_mean("estimate.check");
            let cost = (est_runs as f64) * (key_ns as f64);
            let saved = (est_runs as f64) * hit_rate * (check_ns as f64);
            let verdict = if saved > cost { "WIN" } else { "LOSS" };
            out.push(format!(
                "dedup predicted {verdict}: est. {est_runs} run(s) collapse to \
                 ~{est_distinct} computation(s) (hit-rate {:.0}%), est. hashing \
                 cost {} vs. checking saved {}",
                hit_rate * 100.0,
                format_ns(cost as u64),
                format_ns(saved as u64),
            ));
        }
    }

    let inc_clean = c("logic.incr.leaf_clean");
    let inc_fallback = c("logic.incr.leaf_fallback");
    if inc_clean + inc_fallback > 0 {
        let total = inc_clean + inc_fallback;
        let cost = t_total("phase.check_incr");
        let mut line = format!(
            "incremental check: {inc_clean}/{total} leaf(s) proven clean \
             ({:.0}%), {} event(s) replayed, {} reused, cost {} ({:.0}% of wall)",
            inc_clean as f64 * 100.0 / total as f64,
            c("logic.incr.events_replayed"),
            c("logic.incr.events_reused"),
            format_ns(cost),
            pct_of_wall(cost),
        );
        if inc_fallback > 0 {
            line.push_str(&format!("; {inc_fallback} fell back to batch checking"));
        }
        out.push(line);
    } else if c("logic.incr.restrictions.fallback") > 0 {
        out.push(format!(
            "incremental check disabled: {} restriction(s) outside the supported fragment",
            c("logic.incr.restrictions.fallback")
        ));
    }

    let grants = c("explore.oracle.grants");
    let denials = c("explore.oracle.denials");
    let slept = c("explore.sleep_skipped");
    let por_runs = c("explore.por_runs");
    if grants + denials > 0 || slept > 0 {
        let queries = grants + denials;
        let mut line = format!("POR: {por_runs} representative run(s), {slept} branch(es) slept");
        if queries > 0 {
            line.push_str(&format!(
                "; independence oracle granted {:.0}% of {queries} quer{}",
                grants as f64 * 100.0 / queries as f64,
                if queries == 1 { "y" } else { "ies" }
            ));
        }
        if slept == 0 {
            line.push_str(" — no reduction on this instance");
        }
        out.push(line);
    }
    out
}

/// Renders nanoseconds with a readable unit (mirrors the report table).
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TimerStat;

    fn timer(count: u64, total_ns: u64) -> TimerStat {
        TimerStat {
            count,
            total_ns,
            min_ns: 0,
            max_ns: total_ns,
        }
    }

    fn phased_report() -> Report {
        let mut r = Report::new();
        r.timers.insert("verify".into(), timer(1, 1_000_000));
        r.timers.insert("phase.explore".into(), timer(1, 400_000));
        r.timers.insert("phase.seal".into(), timer(10, 200_000));
        r.timers.insert("phase.closure".into(), timer(10, 50_000));
        r.timers
            .insert("phase.canonical_key".into(), timer(10, 100_000));
        r.timers
            .insert("phase.dedup_lookup".into(), timer(10, 20_000));
        r.timers.insert("phase.check".into(), timer(4, 250_000));
        r
    }

    #[test]
    fn profile_partitions_wall() {
        let p = PhaseProfile::from_report(&phased_report()).unwrap();
        assert_eq!(p.wall_ns, 1_000_000);
        assert_eq!(p.wall_source, "verify");
        // Top-level rows sum, sub-phase excluded from the sum.
        assert_eq!(p.accounted_ns, 970_000);
        let closure = p.rows.iter().find(|r| r.name == "phase.closure").unwrap();
        assert!(closure.nested);
        // Sub-phase renders right after its parent.
        let seal_ix = p.rows.iter().position(|r| r.name == "phase.seal").unwrap();
        assert_eq!(p.rows[seal_ix + 1].name, "phase.closure");
        let table = p.render();
        assert!(table.contains("phase.check"), "{table}");
        assert!(table.contains("wall (verify)"), "{table}");
        assert!(table.contains("accounted"), "{table}");
    }

    #[test]
    fn profile_none_without_wall_or_phases() {
        assert!(PhaseProfile::from_report(&Report::new()).is_none());
        let mut r = Report::new();
        r.timers.insert("verify".into(), timer(1, 10));
        assert!(PhaseProfile::from_report(&r).is_none(), "no phase timers");
    }

    #[test]
    fn explain_measured_dedup_win_and_loss() {
        // WIN: many hits, cheap hashing, expensive checks.
        let mut r = phased_report();
        r.counters.insert("verify.dedup.hits".into(), 788);
        r.counters.insert("verify.dedup.misses".into(), 24);
        r.timers.insert("phase.check".into(), timer(24, 240_000));
        let lines = explain(&r);
        assert!(
            lines.iter().any(|l| l.contains("dedup measured WIN")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("hit-rate 97%")),
            "{lines:?}"
        );

        // LOSS: low hit-rate, hashing dwarfs the skipped checks.
        let mut r = phased_report();
        r.counters.insert("verify.dedup.hits".into(), 10);
        r.counters.insert("verify.dedup.misses".into(), 990);
        r.timers
            .insert("phase.canonical_key".into(), timer(1000, 500_000));
        r.timers.insert("phase.check".into(), timer(990, 99_000));
        let lines = explain(&r);
        assert!(
            lines.iter().any(|l| l.contains("dedup measured LOSS")),
            "{lines:?}"
        );
    }

    #[test]
    fn explain_predicted_dedup_from_estimates() {
        let mut r = phased_report();
        r.gauges.insert("estimate.total_runs".into(), 800);
        r.gauges.insert("estimate.distinct_computations".into(), 25);
        r.timers
            .insert("estimate.canonical_key".into(), timer(16, 16_000));
        r.timers
            .insert("estimate.check".into(), timer(16, 1_600_000));
        let lines = explain(&r);
        assert!(
            lines.iter().any(|l| l.contains("dedup predicted WIN")),
            "{lines:?}"
        );
    }

    #[test]
    fn explain_por_attribution() {
        let mut r = Report::new();
        r.counters.insert("explore.oracle.grants".into(), 75);
        r.counters.insert("explore.oracle.denials".into(), 25);
        r.counters.insert("explore.sleep_skipped".into(), 40);
        r.counters.insert("explore.por_runs".into(), 24);
        let lines = explain(&r);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].contains("24 representative run(s)"),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("40 branch(es) slept"), "{}", lines[0]);
        assert!(
            lines[0].contains("granted 75% of 100 queries"),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn explain_incremental_check_verdicts() {
        let mut r = phased_report();
        r.counters.insert("logic.incr.leaf_clean".into(), 22);
        r.counters.insert("logic.incr.leaf_fallback".into(), 2);
        r.counters.insert("logic.incr.events_replayed".into(), 685);
        r.counters.insert("logic.incr.events_reused".into(), 259);
        r.timers
            .insert("phase.check_incr".into(), timer(24, 50_000));
        let lines = explain(&r);
        let line = lines
            .iter()
            .find(|l| l.starts_with("incremental check:"))
            .expect("incremental verdict");
        assert!(line.contains("22/24 leaf(s) proven clean (92%)"), "{line}");
        assert!(line.contains("685 event(s) replayed, 259 reused"), "{line}");
        assert!(line.contains("2 fell back to batch checking"), "{line}");

        // Globally unsupported spec: no per-leaf counters, but the
        // construction-time fallback tally still explains the absence.
        let mut r = phased_report();
        r.counters
            .insert("logic.incr.restrictions.fallback".into(), 3);
        let lines = explain(&r);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("incremental check disabled: 3 restriction(s)")),
            "{lines:?}"
        );
    }

    #[test]
    fn explain_empty_report_is_silent() {
        assert!(explain(&Report::new()).is_empty());
    }
}
