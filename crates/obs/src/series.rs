//! Periodic counter/gauge snapshots into a bounded ring.
//!
//! A [`SeriesProbe`] rides a probe fanout and keeps running counter and
//! gauge totals; on a fixed cadence (checked every N counter batches,
//! mirroring the heartbeat's clock discipline so hot paths never pay a
//! syscall per event) it pushes a [`SeriesSnapshot`] of the cumulative
//! totals into a bounded ring. The ring serializes to a `metrics.json`
//! time-series and feeds the OpenMetrics exposition in
//! [`crate::openmetrics`]. Snapshots hold *cumulative* totals, not
//! deltas, so counters are monotone across snapshots — the property the
//! OpenMetrics lint checks.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::probe::Probe;

/// How many counter batches go by between clock checks. Counter calls
/// are already batched per-run by the hot layers, so this bounds clock
/// reads to one per `CHECK_EVERY` runs-or-so.
const CHECK_EVERY: u64 = 256;

/// Default ring capacity: at the default 1s cadence, over an hour of
/// sweep history before old snapshots fall off the front.
const DEFAULT_CAP: usize = 4096;

/// One point-in-time view of the cumulative counter and gauge totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Milliseconds since the series began (snapshot 0 is at 0).
    pub at_ms: u64,
    /// Cumulative counter totals at this instant.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at this instant.
    pub gauges: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct SeriesInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    since_check: u64,
    last_snap: Instant,
    snaps: VecDeque<SeriesSnapshot>,
    dropped: u64,
}

/// A probe that samples cumulative counter/gauge totals on a fixed
/// cadence into a bounded ring. Construction takes the baseline
/// (all-zero) snapshot and [`SeriesProbe::finish`] takes the final one,
/// so even a sweep faster than the cadence yields two snapshots.
#[derive(Debug)]
pub struct SeriesProbe {
    inner: Mutex<SeriesInner>,
    interval: Duration,
    cap: usize,
    started: Instant,
}

impl SeriesProbe {
    /// A series sampling every `interval` with the default ring size.
    pub fn new(interval: Duration) -> Self {
        Self::with_capacity(interval, DEFAULT_CAP)
    }

    /// A series sampling every `interval`, keeping at most `cap`
    /// snapshots (oldest dropped first; capacity at least 2 so the
    /// baseline and final snapshots always survive).
    pub fn with_capacity(interval: Duration, cap: usize) -> Self {
        let started = Instant::now();
        let baseline = SeriesSnapshot {
            at_ms: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        };
        let mut snaps = VecDeque::new();
        snaps.push_back(baseline);
        Self {
            inner: Mutex::new(SeriesInner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                since_check: 0,
                last_snap: started,
                snaps,
                dropped: 0,
            }),
            interval,
            cap: cap.max(2),
            started,
        }
    }

    fn snap_locked(&self, inner: &mut SeriesInner, now: Instant) {
        let snap = SeriesSnapshot {
            at_ms: u64::try_from(now.duration_since(self.started).as_millis()).unwrap_or(u64::MAX),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
        };
        inner.last_snap = now;
        inner.snaps.push_back(snap);
        while inner.snaps.len() > self.cap {
            inner.snaps.pop_front();
            inner.dropped += 1;
        }
    }

    fn maybe_snap(&self, inner: &mut SeriesInner) {
        inner.since_check += 1;
        if inner.since_check < CHECK_EVERY {
            return;
        }
        inner.since_check = 0;
        let now = Instant::now();
        if now.duration_since(inner.last_snap) >= self.interval {
            self.snap_locked(inner, now);
        }
    }

    /// Takes the final snapshot unconditionally. Call once when the
    /// sweep completes, before exporting.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().expect("series probe poisoned");
        let now = Instant::now();
        self.snap_locked(&mut inner, now);
    }

    /// The snapshots taken so far, oldest first.
    pub fn snapshots(&self) -> Vec<SeriesSnapshot> {
        let inner = self.inner.lock().expect("series probe poisoned");
        inner.snaps.iter().cloned().collect()
    }

    /// How many old snapshots fell off the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("series probe poisoned").dropped
    }

    /// The cadence snapshots are taken at.
    pub fn interval(&self) -> Duration {
        self.interval
    }
}

impl Probe for SeriesProbe {
    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("series probe poisoned");
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
        self.maybe_snap(&mut inner);
    }

    fn gauge_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("series probe poisoned");
        inner.gauges.insert(name.to_owned(), value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("series probe poisoned");
        match inner.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                inner.gauges.insert(name.to_owned(), value);
            }
        }
    }
}

/// Serializes snapshots as a deterministic `metrics.json` time-series
/// document (sorted keys, two-space indent, trailing newline).
pub fn series_json(interval: Duration, snaps: &[SeriesSnapshot]) -> String {
    use crate::json::push_json_key;
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"interval_ms\": {},\n  \"snapshots\": [",
        interval.as_millis()
    ));
    let mut first_snap = true;
    for snap in snaps {
        if !first_snap {
            out.push(',');
        }
        first_snap = false;
        out.push_str(&format!("\n    {{\"at_ms\": {}, ", snap.at_ms));
        for (section, map) in [("counters", &snap.counters), ("gauges", &snap.gauges)] {
            push_json_key(&mut out, section);
            out.push_str(" {");
            let mut first = true;
            for (k, v) in map {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                push_json_key(&mut out, k);
                out.push_str(&format!(" {v}"));
            }
            out.push('}');
            if section == "counters" {
                out.push_str(", ");
            }
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_finish_bracket_the_series() {
        let s = SeriesProbe::new(Duration::from_secs(3600));
        s.add("explore.runs", 5);
        s.add("explore.runs", 2);
        s.gauge_set("estimate.total_runs", 100);
        s.gauge_max("depth", 4);
        s.gauge_max("depth", 2);
        s.finish();
        let snaps = s.snapshots();
        assert_eq!(snaps.len(), 2, "baseline + final");
        assert!(snaps[0].counters.is_empty());
        assert_eq!(snaps[1].counters["explore.runs"], 7);
        assert_eq!(snaps[1].gauges["estimate.total_runs"], 100);
        assert_eq!(snaps[1].gauges["depth"], 4);
        assert!(snaps[1].at_ms >= snaps[0].at_ms);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn zero_interval_snaps_on_cadence_checks() {
        let s = SeriesProbe::new(Duration::ZERO);
        for _ in 0..(CHECK_EVERY * 3) {
            s.add("n", 1);
        }
        s.finish();
        let snaps = s.snapshots();
        assert!(snaps.len() >= 4, "baseline + 3 cadence + final");
        // Cumulative totals are monotone across snapshots.
        let mut last = 0;
        for snap in &snaps {
            let v = snap.counters.get("n").copied().unwrap_or(0);
            assert!(v >= last);
            last = v;
        }
        assert_eq!(last, CHECK_EVERY * 3);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let s = SeriesProbe::with_capacity(Duration::ZERO, 3);
        for _ in 0..(CHECK_EVERY * 10) {
            s.add("n", 1);
        }
        s.finish();
        let snaps = s.snapshots();
        assert_eq!(snaps.len(), 3);
        assert!(s.dropped() > 0);
        assert_eq!(
            snaps.last().unwrap().counters["n"],
            CHECK_EVERY * 10,
            "the final snapshot survives the ring"
        );
    }

    #[test]
    fn series_json_is_deterministic() {
        let snaps = vec![
            SeriesSnapshot {
                at_ms: 0,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
            },
            SeriesSnapshot {
                at_ms: 1000,
                counters: BTreeMap::from([("explore.runs".to_owned(), 7)]),
                gauges: BTreeMap::from([("depth".to_owned(), 4)]),
            },
        ];
        let json = series_json(Duration::from_secs(1), &snaps);
        assert_eq!(json, series_json(Duration::from_secs(1), &snaps));
        assert!(json.contains("\"interval_ms\": 1000"), "{json}");
        assert!(json.contains("\"at_ms\": 1000"), "{json}");
        assert!(json.contains("\"explore.runs\": 7"), "{json}");
        let parsed = crate::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("snapshots")
                .and_then(crate::json::JsonValue::as_arr)
                .map(<[crate::json::JsonValue]>::len),
            Some(2)
        );
    }
}
