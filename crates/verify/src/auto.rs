//! `--auto` strategy selection: sample the instance, estimate, choose.
//!
//! The reduction machinery is a win only when its per-run overhead is
//! repaid: `--dedup` pays a confirmation-key serialisation per run and
//! wins only when many runs collapse to few computations; `--por` prunes
//! whole subtrees but only when the independence oracle actually grants
//! commutations. BENCH_verify.json shows both flags *regressing* on the
//! wrong instances (bounded_monitor_dedup 3.4× slower than plain), so a
//! fixed default cannot be right.
//!
//! [`sample_evidence`] runs a few hundred [`Explorer::sample_run`] Knuth
//! probes — deterministic, probe-silent, and cheap relative to a sweep —
//! and distils them into a [`StrategyEvidence`]: estimated run count
//! (Knuth), estimated distinct-computation count (Chapman
//! capture-recapture over builder fingerprints), measured per-run key
//! and check costs, and the oracle's grant rate on sampled enabled
//! pairs. [`choose`] turns that evidence into a [`Strategy`] with a
//! human-readable reason; the CLI records both in `--stats-json` under
//! `config.strategy` so a decision is always auditable.

use std::time::Instant;

use gem_core::Computation;
use gem_lang::{Explorer, System};
use gem_obs::{CollapseEstimator, KnuthEstimator};

use crate::dedup::confirm_key;

/// Default number of Knuth probes for [`sample_evidence`].
pub const AUTO_SAMPLES: usize = 128;

/// Default number of sampled computations to run the (expensive) full
/// check on when measuring `check_ns`.
pub const AUTO_CHECKS: usize = 6;

/// How many sampled schedules to replay when probing the independence
/// oracle's grant rate.
const ORACLE_SEEDS: usize = 4;

/// Cap on total oracle queries across the replayed schedules, so wide
/// instances don't spend the sweep's budget on quadratic pair probing.
const ORACLE_QUERY_CAP: u64 = 2_000;

/// Dedup must beat its own overhead by this factor before `choose`
/// prefers it — estimator noise on a marginal instance should fall back
/// to `Plain`, never flip a known-good default into a regression.
pub const WIN_MARGIN: f64 = 2.0;

/// What the sampler learned about an instance — the chooser's entire
/// input, recorded verbatim in `--stats-json` so decisions replay.
#[derive(Clone, Debug, PartialEq)]
pub struct StrategyEvidence {
    /// Number of Knuth probes taken.
    pub samples: usize,
    /// Knuth estimate of the number of maximal runs.
    pub est_runs: f64,
    /// Chapman capture-recapture estimate of distinct computations.
    pub est_distinct: u64,
    /// `est_runs / est_distinct` — how many runs collapse onto each
    /// computation (1.0 means dedup can never win).
    pub collapse_ratio: f64,
    /// Independence-oracle grants among sampled enabled action pairs.
    pub oracle_grants: u64,
    /// Independence-oracle queries issued while probing.
    pub oracle_queries: u64,
    /// Mean per-run confirmation-key cost (ns), measured on samples.
    pub key_ns: u64,
    /// Mean per-run projection+check cost (ns), measured on samples.
    pub check_ns: u64,
    /// True if any probe hit the depth bound (estimates then undershoot).
    pub depth_limited: bool,
    /// True when the spec is in the incremental checker's fragment
    /// ([`crate::IncrChecker::global_fallback`] is false): per-run batch
    /// checks then cost ~nothing for clean leaves, which voids dedup's
    /// saving. [`sample_evidence`] cannot know this (it never sees the
    /// spec), so it reports `false`; callers with the spec in hand set it
    /// before [`choose`].
    pub incr_supported: bool,
}

/// The exploration strategy `choose` picks for one instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// No reduction: enumerate and check every run.
    Plain,
    /// Computation deduplication (`--dedup`).
    Dedup,
    /// Sleep-set partial-order reduction (`--por`).
    Por,
}

impl Strategy {
    /// Stable lower-case name, as recorded in `--stats-json`.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Plain => "plain",
            Strategy::Dedup => "dedup",
            Strategy::Por => "por",
        }
    }
}

/// A strategy choice together with the evidence and reasoning behind it.
#[derive(Clone, Debug)]
pub struct StrategyDecision {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// The sampled evidence the choice was made on.
    pub evidence: StrategyEvidence,
    /// One-line human-readable justification (shown by `--explain`).
    pub reason: String,
}

/// Picks a strategy from sampled evidence.
///
/// POR wins whenever the oracle grants at all: a granted commutation
/// prunes an entire subtree, which dominates any per-run accounting
/// (BENCH: mutex_with_data `--por` beats even `--por --dedup`). With no
/// grants, dedup is a pure time trade: it saves the full check on every
/// duplicate run and pays the confirmation key on *every* run, so it is
/// chosen only when the estimated saving clears [`WIN_MARGIN`]×
/// overhead — and never when `incr_supported` says incremental checking
/// already skips those batch checks. Otherwise plain enumeration — the
/// reductions must *win*, not break even.
pub fn choose(evidence: StrategyEvidence) -> StrategyDecision {
    if evidence.oracle_grants > 0 {
        let reason = format!(
            "oracle granted {}/{} sampled pairs: sleep-set POR prunes subtrees",
            evidence.oracle_grants, evidence.oracle_queries
        );
        return StrategyDecision {
            strategy: Strategy::Por,
            evidence,
            reason,
        };
    }
    // Dedup's entire benefit is the batch check it skips on duplicate
    // runs. With incremental checking covering the spec, clean leaves
    // skip that check anyway — keying every run would be pure overhead.
    if evidence.incr_supported {
        let reason = format!(
            "no oracle grants; incremental checking covers the spec \
             (collapse {:.1}× moot: clean leaves skip batch checks already)",
            evidence.collapse_ratio
        );
        return StrategyDecision {
            strategy: Strategy::Plain,
            evidence,
            reason,
        };
    }
    let dup_runs = (evidence.est_runs - evidence.est_distinct as f64).max(0.0);
    let saved = dup_runs * evidence.check_ns as f64;
    let paid = evidence.est_runs * evidence.key_ns as f64;
    if saved > paid * WIN_MARGIN {
        let reason = format!(
            "no oracle grants; ~{:.0} duplicate run(s) of {:.0} estimated \
             (collapse {:.1}×) repay keying {}× over",
            dup_runs, evidence.est_runs, evidence.collapse_ratio, WIN_MARGIN,
        );
        StrategyDecision {
            strategy: Strategy::Dedup,
            evidence,
            reason,
        }
    } else {
        let reason = format!(
            "no oracle grants; collapse {:.1}× too low to repay per-run keying",
            evidence.collapse_ratio
        );
        StrategyDecision {
            strategy: Strategy::Plain,
            evidence,
            reason,
        }
    }
}

/// Samples `samples` random schedules of `sys` and distils them into a
/// [`StrategyEvidence`].
///
/// Uses [`Explorer::sample_run`] (deterministic in the seed, emits
/// nothing on any probe), so sampling before a sweep never perturbs the
/// sweep's own report. `extract` seals a terminal state's computation;
/// `check` is the full per-computation verification work, run on at most
/// `checks` samples to price `check_ns`. The oracle grant rate is probed
/// by replaying a few sampled schedules and querying
/// [`System::independent`] on enabled pairs before each step, capped at
/// [`ORACLE_QUERY_CAP`] total queries.
pub fn sample_evidence<S: System>(
    explorer: &Explorer,
    sys: &S,
    extract: impl Fn(&S::State) -> Computation,
    check: impl Fn(&Computation),
    samples: usize,
    checks: usize,
) -> StrategyEvidence {
    let mut knuth = KnuthEstimator::new();
    let mut collapse = CollapseEstimator::new();
    // Random walks oversample likely paths: resampling the *same* run
    // repeats its fingerprint without any two runs actually sealing the
    // same computation, which would fabricate collapse evidence (the
    // bounded_monitor trap: every run distinct, dedup pure overhead).
    // Only the first sighting of each distinct path feeds the collapse
    // estimator; a path is identified by hashing its action sequence.
    let mut seen_paths = std::collections::HashSet::new();
    let mut key_ns_total = 0u128;
    let mut check_ns_total = 0u128;
    let mut checks_done = 0u32;
    let mut depth_limited = false;

    for seed in 0..samples as u64 {
        let sample = explorer.sample_run(sys, seed);
        knuth.record(sample.tree_product);
        depth_limited |= sample.depth_limited;
        let comp = extract(&sample.state);
        let started = Instant::now();
        let _key = confirm_key(&comp);
        key_ns_total += started.elapsed().as_nanos();
        let path_id = gem_obs::fingerprint_words(
            &sample
                .path
                .iter()
                .map(|a| {
                    gem_obs::fingerprint_words(
                        &format!("{a:?}").bytes().map(u64::from).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        if seen_paths.insert(path_id) {
            collapse.record(comp.fingerprint());
        }
        if (checks_done as usize) < checks {
            let started = Instant::now();
            check(&comp);
            check_ns_total += started.elapsed().as_nanos();
            checks_done += 1;
        }
    }

    let mut oracle_grants = 0u64;
    let mut oracle_queries = 0u64;
    'probe: for seed in 0..ORACLE_SEEDS.min(samples) as u64 {
        let sample = explorer.sample_run(sys, seed);
        let mut state = sys.initial();
        for action in &sample.path {
            let actions = sys.enabled(&state);
            for i in 0..actions.len() {
                for j in (i + 1)..actions.len() {
                    if oracle_queries >= ORACLE_QUERY_CAP {
                        break 'probe;
                    }
                    oracle_queries += 1;
                    if sys.independent(&state, &actions[i], &actions[j]) {
                        oracle_grants += 1;
                    }
                }
            }
            sys.apply(&mut state, action);
        }
    }

    let est_runs = knuth.estimate().unwrap_or(1.0);
    // Chapman capture-recapture extrapolates from the *overlap* between
    // sample halves; with zero observed duplicates the overlap is empty
    // yet the formula still yields a finite distinct-count, which would
    // credit dedup with collapse nobody ever saw. No two distinct paths
    // sharing a fingerprint ⇒ no evidence of collapse ⇒ report
    // distinct = runs, and `choose` falls through to plain.
    let est_distinct = if collapse.distinct_seen() >= seen_paths.len() as u64 {
        est_runs.round().max(1.0) as u64
    } else {
        collapse
            .estimate()
            .unwrap_or_else(|| collapse.distinct_seen().max(1))
    };
    let mean = |total: u128, n: u64| -> u64 {
        if n == 0 {
            0
        } else {
            u64::try_from(total / u128::from(n)).unwrap_or(u64::MAX)
        }
    };
    StrategyEvidence {
        samples,
        est_runs,
        est_distinct,
        collapse_ratio: est_runs / est_distinct.max(1) as f64,
        oracle_grants,
        oracle_queries,
        key_ns: mean(key_ns_total, samples as u64),
        check_ns: mean(check_ns_total, u64::from(checks_done)),
        depth_limited,
        incr_supported: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(
        est_runs: f64,
        est_distinct: u64,
        oracle_grants: u64,
        key_ns: u64,
        check_ns: u64,
    ) -> StrategyEvidence {
        StrategyEvidence {
            samples: 128,
            est_runs,
            est_distinct,
            collapse_ratio: est_runs / est_distinct.max(1) as f64,
            oracle_grants,
            oracle_queries: 100,
            key_ns,
            check_ns,
            depth_limited: false,
            incr_supported: false,
        }
    }

    #[test]
    fn any_oracle_grant_picks_por() {
        // Even with a dedup-hostile profile, a granted commutation means
        // whole subtrees vanish — POR dominates per-run accounting.
        let d = choose(evidence(1000.0, 1000, 1, 10_000, 10));
        assert_eq!(d.strategy, Strategy::Por);
        assert!(d.reason.contains("POR"));
    }

    #[test]
    fn high_collapse_cheap_keys_picks_dedup() {
        // 10_000 runs collapsing onto 10 computations, checks 100× the
        // key cost: saved ≈ 9_990 × 100_000 ≫ paid ≈ 10_000 × 1_000.
        let d = choose(evidence(10_000.0, 10, 0, 1_000, 100_000));
        assert_eq!(d.strategy, Strategy::Dedup);
        assert!(d.reason.contains("duplicate"));
    }

    #[test]
    fn no_collapse_picks_plain() {
        // Every run distinct (the bounded_monitor profile): dedup pays
        // keying on every run and saves nothing.
        let d = choose(evidence(1_000.0, 1_000, 0, 10_000, 100_000));
        assert_eq!(d.strategy, Strategy::Plain);
        assert!(d.reason.contains("collapse"));
    }

    #[test]
    fn marginal_collapse_stays_plain_under_win_margin() {
        // Saved barely exceeds paid but not by WIN_MARGIN: stay plain so
        // estimator noise can't flip a good default into a regression.
        // saved = 500 × 3_000 = 1.5e6; paid = 1_000 × 1_000 = 1e6.
        let d = choose(evidence(1_000.0, 500, 0, 1_000, 3_000));
        assert_eq!(d.strategy, Strategy::Plain);
        // Doubling the check cost clears the margin.
        let d = choose(evidence(1_000.0, 500, 0, 1_000, 6_000));
        assert_eq!(d.strategy, Strategy::Dedup);
    }

    #[test]
    fn incr_support_vetoes_dedup_but_not_por() {
        // The dedup-WIN profile from high_collapse_cheap_keys_picks_dedup
        // flips to plain once incremental checking covers the spec: the
        // skipped batch checks dedup would save are already skipped.
        let mut e = evidence(10_000.0, 10, 0, 1_000, 100_000);
        e.incr_supported = true;
        let d = choose(e);
        assert_eq!(d.strategy, Strategy::Plain);
        assert!(d.reason.contains("incremental"), "{}", d.reason);
        // POR prunes exploration itself, which incremental checking does
        // not touch — grants still win.
        let mut e = evidence(10_000.0, 10, 5, 1_000, 100_000);
        e.incr_supported = true;
        assert_eq!(choose(e).strategy, Strategy::Por);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Plain.name(), "plain");
        assert_eq!(Strategy::Dedup.name(), "dedup");
        assert_eq!(Strategy::Por.name(), "por");
    }
}
